#include "phasespace/preimage.hpp"

#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phasespace/functional_graph.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::phasespace {
namespace {

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return (s < a || a == kSaturated || b == kSaturated) ? kSaturated : s;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kSaturated || b == kSaturated) return kSaturated;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

/// W x W saturating-u64 matrix, row-major.
using Matrix = std::vector<std::uint64_t>;

Matrix multiply(const Matrix& a, const Matrix& b, std::uint32_t w) {
  Matrix out(static_cast<std::size_t>(w) * w, 0);
  for (std::uint32_t i = 0; i < w; ++i) {
    for (std::uint32_t k = 0; k < w; ++k) {
      const std::uint64_t aik = a[i * w + k];
      if (aik == 0) continue;
      for (std::uint32_t j = 0; j < w; ++j) {
        out[i * w + j] =
            sat_add(out[i * w + j], sat_mul(aik, b[k * w + j]));
      }
    }
  }
  return out;
}

/// Boolean W x W matrix as per-row bitmasks (W <= 64).
using BoolMatrix = std::vector<std::uint64_t>;

BoolMatrix bool_multiply(const BoolMatrix& a, const BoolMatrix& b,
                         std::uint32_t w) {
  BoolMatrix out(w, 0);
  for (std::uint32_t i = 0; i < w; ++i) {
    std::uint64_t row = 0;
    std::uint64_t bits = a[i];
    while (bits != 0) {
      const auto k = static_cast<std::uint32_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      row |= b[k];
    }
    out[i] = row;
  }
  return out;
}

}  // namespace

RingPreimageSolver::RingPreimageSolver(const rules::Rule& rule,
                                       std::uint32_t radius,
                                       core::Memory memory)
    : radius_(radius),
      window_bits_(2 * radius),
      window_count_(1u << (2 * radius)) {
  if (radius == 0 || radius > 3) {
    throw tca::InvalidArgumentError(
        "RingPreimageSolver: radius must be in [1,3]");
  }
  const std::uint32_t full_bits = 2 * radius + 1;
  const std::size_t full_count = std::size_t{1} << full_bits;
  table_.resize(full_count);
  std::vector<rules::State> inputs;
  for (std::size_t window = 0; window < full_count; ++window) {
    inputs.clear();
    for (std::uint32_t j = 0; j < full_bits; ++j) {
      // Bit order: MSB-first, spatially left-to-right; skip the middle
      // (self) cell for memoryless automata.
      if (memory == core::Memory::kWithout && j == radius) continue;
      inputs.push_back(static_cast<rules::State>(
          (window >> (full_bits - 1 - j)) & 1u));
    }
    table_[window] = rules::eval(rule, inputs);
  }
}

std::uint64_t RingPreimageSolver::count(
    const core::Configuration& target) const {
  const std::size_t n = target.size();
  if (n < 2 * std::size_t{radius_} + 1) {
    throw tca::InvalidArgumentError("RingPreimageSolver: ring too small");
  }
  const std::uint32_t w = window_count_;
  // Per-output transfer matrices: M_b[win][win'] = 1 iff win' extends win
  // and the full window maps to b.
  Matrix m[2] = {Matrix(static_cast<std::size_t>(w) * w, 0),
                 Matrix(static_cast<std::size_t>(w) * w, 0)};
  for (std::uint32_t win = 0; win < w; ++win) {
    for (std::uint32_t bit = 0; bit < 2; ++bit) {
      const std::uint32_t full = (win << 1) | bit;
      const std::uint32_t next = full & (w - 1);
      m[table_[full]][win * w + next] = 1;
    }
  }
  // Product in target order; start from M_{y_0} and fold the rest in.
  Matrix product = m[target.get(0)];
  for (std::size_t i = 1; i < n; ++i) {
    product = multiply(product, m[target.get(i)], w);
  }
  std::uint64_t trace = 0;
  for (std::uint32_t i = 0; i < w; ++i) {
    trace = sat_add(trace, product[i * w + i]);
  }
  return trace;
}

std::vector<core::Configuration> RingPreimageSolver::enumerate(
    const core::Configuration& target, std::size_t limit) const {
  const std::size_t n = target.size();
  if (n < 2 * std::size_t{radius_} + 1) {
    throw tca::InvalidArgumentError("RingPreimageSolver: ring too small");
  }
  const std::uint32_t w = window_count_;

  // Boolean step matrices.
  BoolMatrix step[2] = {BoolMatrix(w, 0), BoolMatrix(w, 0)};
  for (std::uint32_t win = 0; win < w; ++win) {
    for (std::uint32_t bit = 0; bit < 2; ++bit) {
      const std::uint32_t full = (win << 1) | bit;
      const std::uint32_t next = full & (w - 1);
      step[table_[full]][win] |= std::uint64_t{1} << next;
    }
  }

  // Suffix reachability: reach[i][win] = endpoint windows reachable from
  // `win` by consuming target[i..n).
  std::vector<BoolMatrix> reach(n + 1);
  reach[n] = BoolMatrix(w, 0);
  for (std::uint32_t i = 0; i < w; ++i) reach[n][i] = std::uint64_t{1} << i;
  for (std::size_t i = n; i-- > 0;) {
    reach[i] = bool_multiply(step[target.get(i)], reach[i + 1], w);
  }

  std::vector<core::Configuration> results;
  std::vector<rules::State> cells(n, 0);
  for (std::uint32_t w0 = 0; w0 < w && results.size() < limit; ++w0) {
    if ((reach[0][w0] & (std::uint64_t{1} << w0)) == 0) continue;
    // Seed the initial window cells: bit j (MSB-first) is cell
    // (n - radius + j) mod n.
    for (std::uint32_t j = 0; j < window_bits_; ++j) {
      cells[(n - radius_ + j) % n] = static_cast<rules::State>(
          (w0 >> (window_bits_ - 1 - j)) & 1u);
    }
    // Iterative DFS over appended bits.
    struct Frame {
      std::uint32_t window;
      std::uint8_t next_bit;  // 0, 1, or 2 = exhausted
    };
    std::vector<Frame> stack{{w0, 0}};
    while (!stack.empty() && results.size() < limit) {
      Frame& frame = stack.back();
      const std::size_t i = stack.size() - 1;  // position being extended
      if (i == n) {
        // Complete walk; closure is guaranteed by the reach pruning, but
        // assert it anyway.
        if (frame.window == w0) {
          core::Configuration c(n);
          for (std::size_t idx = 0; idx < n; ++idx) {
            c.set(idx, cells[idx]);
          }
          results.push_back(std::move(c));
        }
        stack.pop_back();
        continue;
      }
      if (frame.next_bit >= 2) {
        stack.pop_back();
        continue;
      }
      const std::uint32_t bit = frame.next_bit++;
      const std::uint32_t full = (frame.window << 1) | bit;
      if (table_[full] != target.get(i)) continue;
      const std::uint32_t next = full & (w - 1);
      if ((reach[i + 1][next] & (std::uint64_t{1} << w0)) == 0) continue;
      cells[(i + radius_) % n] = static_cast<rules::State>(bit);
      stack.push_back(Frame{next, 0});
    }
  }
  return results;
}

std::uint64_t RingPreimageSolver::count_fixed_points_impl(
    std::size_t n) const {
  if (n < 2 * std::size_t{radius_} + 1) {
    throw tca::InvalidArgumentError("count_fixed_points_ring: ring too small");
  }
  const std::uint32_t w = window_count_;
  // A configuration is fixed iff at every position the rule output equals
  // the window's middle cell (bit position `radius_` from the MSB of the
  // 2r+1-bit full window, i.e. bit index radius_ from the LSB).
  Matrix m(static_cast<std::size_t>(w) * w, 0);
  for (std::uint32_t win = 0; win < w; ++win) {
    for (std::uint32_t bit = 0; bit < 2; ++bit) {
      const std::uint32_t full = (win << 1) | bit;
      const std::uint32_t middle = (full >> radius_) & 1u;
      if (table_[full] != middle) continue;
      const std::uint32_t next = full & (w - 1);
      m[win * w + next] = 1;
    }
  }
  Matrix product = m;
  for (std::size_t i = 1; i < n; ++i) product = multiply(product, m, w);
  std::uint64_t trace = 0;
  for (std::uint32_t i = 0; i < w; ++i) {
    trace = sat_add(trace, product[i * w + i]);
  }
  return trace;
}

std::uint64_t count_fixed_points_ring(const RingPreimageSolver& solver,
                                      std::size_t n) {
  return solver.count_fixed_points_impl(n);
}

std::uint64_t RingPreimageSolver::count_period_two_impl(std::size_t n) const {
  if (radius_ > 2) {
    throw tca::InvalidArgumentError(
        "count_period_two_states_ring: radius <= 2 only");
  }
  if (n < 2 * std::size_t{radius_} + 1) {
    throw tca::InvalidArgumentError("count_period_two_states_ring: ring too "
                                "small");
  }
  const std::uint32_t w = window_count_;
  const std::uint32_t ww = w * w;  // paired (x-window, y-window) alphabet
  Matrix m(static_cast<std::size_t>(ww) * ww, 0);
  for (std::uint32_t wx = 0; wx < w; ++wx) {
    for (std::uint32_t wy = 0; wy < w; ++wy) {
      for (std::uint32_t bx = 0; bx < 2; ++bx) {
        for (std::uint32_t by = 0; by < 2; ++by) {
          const std::uint32_t fullx = (wx << 1) | bx;
          const std::uint32_t fully = (wy << 1) | by;
          // Mutual constraints at this position: F(x)_i = y_i, F(y)_i =
          // x_i, with the middle cell at bit index radius_.
          if (table_[fullx] != ((fully >> radius_) & 1u)) continue;
          if (table_[fully] != ((fullx >> radius_) & 1u)) continue;
          const std::uint32_t from = wx * w + wy;
          const std::uint32_t to = (fullx & (w - 1)) * w + (fully & (w - 1));
          m[static_cast<std::size_t>(from) * ww + to] = 1;
        }
      }
    }
  }
  Matrix product = m;
  for (std::size_t i = 1; i < n; ++i) product = multiply(product, m, ww);
  std::uint64_t trace = 0;
  for (std::uint32_t i = 0; i < ww; ++i) {
    trace = sat_add(trace, product[static_cast<std::size_t>(i) * ww + i]);
  }
  return trace;
}

std::uint64_t count_period_two_states_ring(const RingPreimageSolver& solver,
                                           std::size_t n) {
  return solver.count_period_two_impl(n);
}

std::uint64_t count_gardens_of_eden_ring(const RingPreimageSolver& solver,
                                         std::size_t n) {
  runtime::RunControl unlimited;
  return count_gardens_of_eden_ring(solver, n, unlimited).gardens;
}

GoeCensus count_gardens_of_eden_ring(const RingPreimageSolver& solver,
                                     std::size_t n,
                                     runtime::RunControl& control) {
  TCA_SPAN("goe_census");
  tca::require_explicit_bits(n, 24, "count_gardens_of_eden_ring");
  GoeCensus out;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    if (control.note_states() != runtime::StopReason::kNone) break;
    const auto target = core::Configuration::from_bits(bits, n);
    if (solver.count(target) == 0) ++out.gardens;
    ++out.scanned;
  }
  const auto status = control.status();
  out.stop_reason = status.stop_reason;
  out.truncated = status.truncated();
  static obs::Counter& scanned = obs::counter("phasespace.goe.scanned");
  static obs::Counter& gardens = obs::counter("phasespace.goe.gardens");
  scanned.add(out.scanned);
  gardens.add(out.gardens);
  return out;
}

std::uint64_t count_gardens_of_eden_explicit(const core::Automaton& a) {
  runtime::RunControl unlimited;
  return count_gardens_of_eden_explicit(a, unlimited).gardens;
}

GoeCensus count_gardens_of_eden_explicit(const core::Automaton& a,
                                         runtime::RunControl& control) {
  return count_gardens_of_eden_explicit(a, control,
                                        runtime::EngineRung::kWideSimd);
}

GoeCensus count_gardens_of_eden_explicit(const core::Automaton& a,
                                         runtime::RunControl& control,
                                         runtime::EngineRung rung) {
  TCA_SPAN("goe_census_explicit");
  const auto bits = static_cast<std::uint32_t>(a.size());
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "count_gardens_of_eden_explicit");
  const std::uint64_t count = std::uint64_t{1} << bits;
  const std::uint64_t words = (count + 63) >> 6;
  GoeCensus out;
  // The reached bitmap is the census' only allocation; charge it up front.
  if (control.note_bytes(words * sizeof(std::uint64_t)) !=
      runtime::StopReason::kNone) {
    const auto status = control.status();
    out.stop_reason = status.stop_reason;
    out.truncated = true;
    return out;
  }
  runtime::fault::check_alloc(words * sizeof(std::uint64_t));
  std::vector<std::uint64_t> reached(words, 0);

  BatchCodeStepper stepper(a, rung);
  if (rung == runtime::EngineRung::kWideSimd ||
      rung == runtime::EngineRung::kBatch64) {
    // Only the batch rungs can DECLINE an automaton; the packed and
    // scalar rungs are scalar by design, not by de-optimization.
    note_batch_fallback(stepper, a, "count_gardens_of_eden_explicit");
  }
  StateCode block[1024];
  for (std::uint64_t s = 0; s < count;) {
    const auto chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(1024, count - s));
    if (control.note_states(chunk) != runtime::StopReason::kNone) break;
    stepper.step_range(s, chunk, block);
    for (std::size_t j = 0; j < chunk; ++j) {
      reached[block[j] >> 6] |= std::uint64_t{1} << (block[j] & 63);
    }
    s += chunk;
    out.scanned = s;
  }
  const auto status = control.status();
  out.stop_reason = status.stop_reason;
  out.truncated = status.truncated() || out.scanned != count;
  if (!out.truncated) {
    std::uint64_t hit = 0;
    for (const std::uint64_t w : reached) hit += std::popcount(w);
    out.gardens = count - hit;
  }
  static obs::Counter& scanned = obs::counter("phasespace.goe.scanned");
  static obs::Counter& gardens = obs::counter("phasespace.goe.gardens");
  scanned.add(out.scanned);
  gardens.add(out.gardens);
  return out;
}

GoeCensus count_gardens_of_eden(const SuccessorStore& store,
                                runtime::RunControl& control) {
  TCA_SPAN("goe_census_store");
  tca::require_explicit_bits(store.bits(), max_explicit_bits(store.kind()),
                             "count_gardens_of_eden");
  const std::uint64_t count = store.num_entries();
  const std::uint64_t words = (count + 63) >> 6;
  GoeCensus out;
  // The reached bitmap is the census' only allocation; charge it up front.
  if (control.note_bytes(words * sizeof(std::uint64_t)) !=
      runtime::StopReason::kNone) {
    const auto status = control.status();
    out.stop_reason = status.stop_reason;
    out.truncated = true;
    return out;
  }
  runtime::fault::check_alloc(words * sizeof(std::uint64_t));
  std::vector<std::uint64_t> reached(words, 0);

  // Streamed read-back in bounded blocks: the table was already built, so
  // this pass costs reads, not steps — the disk backend serves it with
  // pread and never grows the resident set past bitmap + block.
  StateCode block[4096];
  for (std::uint64_t s = 0; s < count;) {
    const auto chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(4096, count - s));
    if (control.note_states(chunk) != runtime::StopReason::kNone) break;
    store.read_range(s, chunk, block);
    for (std::size_t j = 0; j < chunk; ++j) {
      reached[block[j] >> 6] |= std::uint64_t{1} << (block[j] & 63);
    }
    s += chunk;
    out.scanned = s;
  }
  const auto status = control.status();
  out.stop_reason = status.stop_reason;
  out.truncated = status.truncated() || out.scanned != count;
  if (!out.truncated) {
    std::uint64_t hit = 0;
    for (const std::uint64_t w : reached) hit += std::popcount(w);
    out.gardens = count - hit;
  }
  static obs::Counter& scanned = obs::counter("phasespace.goe.scanned");
  static obs::Counter& gardens = obs::counter("phasespace.goe.gardens");
  scanned.add(out.scanned);
  gardens.add(out.gardens);
  return out;
}

}  // namespace tca::phasespace
