#pragma once
// Nondeterministic sequential phase spaces (DESIGN.md S4).
//
// A sequential CA with a FREE choice of which node updates next is a
// nondeterministic transition system: from state x there is one transition
// per node v, to x with cell v replaced by its update. This digraph is the
// union of ALL possible sequential interleavings — exactly the object the
// paper draws in Fig. 1(b) and quantifies over in Lemma 1(ii)/Theorem 1
// ("irrespective of the sequential node update order").
//
// Key facts extracted here:
//  * a PROPER CYCLE (a directed cycle through >= 2 distinct states) exists
//    iff some strongly connected component has >= 2 states — if no such
//    component exists, NO update sequence whatsoever can ever revisit a
//    left state, proving cycle-freeness for all orders at once;
//  * FIXED POINTS are states where every choice self-loops;
//  * PSEUDO-FIXED POINTS (the paper's term for Fig. 1(b)) are non-fixed
//    states where at least one choice self-loops;
//  * reachability (which parallel behaviours sequential interleavings can
//    or cannot reproduce).

#include <cstdint>
#include <vector>

#include "core/automaton.hpp"
#include "phasespace/functional_graph.hpp"

namespace tca::phasespace {

/// Explicit one-edge-per-node-choice transition table on n-bit states.
class ChoiceDigraph {
 public:
  /// Builds the full table: succ(s, v) for all states s and nodes v.
  /// Requires bits <= 22 (table size = 2^bits * n entries).
  explicit ChoiceDigraph(const core::Automaton& a);

  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }
  [[nodiscard]] StateCode num_states() const noexcept {
    return StateCode{1} << bits_;
  }
  [[nodiscard]] std::uint32_t num_choices() const noexcept { return choices_; }

  /// Successor of state s when node v updates.
  [[nodiscard]] StateCode succ(StateCode s, std::uint32_t v) const {
    return succ_[s * choices_ + v];
  }

 private:
  std::uint32_t bits_ = 0;
  std::uint32_t choices_ = 0;
  std::vector<StateCode> succ_;
};

/// Analysis of the full nondeterministic sequential phase space.
struct ChoiceAnalysis {
  std::vector<std::uint32_t> scc_id;     ///< per state
  std::uint64_t num_sccs = 0;
  std::uint64_t num_proper_cycle_states = 0;  ///< states in SCCs of size >= 2
  std::uint64_t num_fixed_points = 0;
  std::uint64_t num_pseudo_fixed_points = 0;
  std::vector<StateCode> fixed_points;
  std::vector<StateCode> pseudo_fixed_points;

  /// True iff some update sequence can revisit a previously-left state —
  /// i.e. the sequential phase space has a proper temporal cycle.
  [[nodiscard]] bool has_proper_cycle() const {
    return num_proper_cycle_states > 0;
  }
};

/// Runs SCC + fixed-point classification over the whole digraph.
[[nodiscard]] ChoiceAnalysis analyze(const ChoiceDigraph& g);

/// States reachable from `start` by any sequence of node-update choices
/// (BFS; includes `start`).
[[nodiscard]] std::vector<std::uint8_t> reachable_from(const ChoiceDigraph& g,
                                                       StateCode start);

/// All states from which `target` is reachable (reverse reachability).
[[nodiscard]] std::vector<std::uint8_t> can_reach(const ChoiceDigraph& g,
                                                  StateCode target);

}  // namespace tca::phasespace
