#include "phasespace/classify.hpp"

#include <algorithm>

namespace tca::phasespace {

std::vector<std::uint32_t> in_degrees(const SuccessorStore& store) {
  // Streamed, not random access: one sequential pass works identically on
  // the flat, packed and disk backends (the disk backend serves it with
  // bounded pread blocks, no mmap growth).
  std::vector<std::uint32_t> indeg(store.num_entries(), 0);
  store.for_each_range(
      [&indeg](StateCode, std::size_t count, const StateCode* block) {
        for (std::size_t j = 0; j < count; ++j) ++indeg[block[j]];
      });
  return indeg;
}

std::vector<std::uint32_t> in_degrees(const FunctionalGraph& fg) {
  return in_degrees(fg.store());
}

Classification classify(const FunctionalGraph& fg) {
  const StateCode count = fg.num_states();
  Classification out;
  out.kind.assign(count, StateKind::kTransient);
  out.attractor.assign(count, 0);

  // Pass 1: find all cycles. Standard functional-graph coloring: walk from
  // every unresolved state marking the path with a per-walk tag; if the walk
  // hits its own tag, the segment from the first hit onward is a cycle.
  constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
  std::vector<std::uint32_t> walk_tag(count, kUnset);
  std::vector<std::uint32_t> walk_pos(count, 0);
  std::vector<std::uint8_t> resolved(count, 0);
  std::vector<StateCode> path;

  for (StateCode start = 0; start < count; ++start) {
    if (resolved[start]) continue;
    path.clear();
    StateCode s = start;
    const auto tag = static_cast<std::uint32_t>(start & 0xFFFFFFFFu);
    while (!resolved[s] && walk_tag[s] != tag) {
      walk_tag[s] = tag;
      walk_pos[s] = static_cast<std::uint32_t>(path.size());
      path.push_back(s);
      s = fg.succ(s);
    }
    if (!resolved[s]) {
      // Found a brand-new cycle starting at path[walk_pos[s]].
      const std::uint32_t first = walk_pos[s];
      const auto period = static_cast<std::uint64_t>(path.size() - first);
      StateCode rep = path[first];
      for (std::size_t i = first; i < path.size(); ++i) {
        rep = std::min(rep, path[i]);
      }
      const auto attractor_id =
          static_cast<std::uint32_t>(out.attractors.size());
      out.attractors.push_back(Attractor{period, rep, 0});
      for (std::size_t i = first; i < path.size(); ++i) {
        out.kind[path[i]] =
            period == 1 ? StateKind::kFixedPoint : StateKind::kCycle;
        out.attractor[path[i]] = attractor_id;
        resolved[path[i]] = 1;
      }
      path.resize(first);  // the prefix is transient, resolved below
    }
    // Everything left on `path` is transient and drains wherever `s` drains.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      out.attractor[*it] = out.attractor[fg.succ(*it)];
      out.kind[*it] = StateKind::kTransient;
      resolved[*it] = 1;
    }
  }

  // Sort attractors by representative for stable output, remapping ids.
  std::vector<std::uint32_t> perm(out.attractors.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return out.attractors[a].representative <
           out.attractors[b].representative;
  });
  std::vector<std::uint32_t> inverse(perm.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  std::vector<Attractor> sorted;
  sorted.reserve(out.attractors.size());
  for (std::uint32_t i : perm) sorted.push_back(out.attractors[i]);
  out.attractors = std::move(sorted);
  for (StateCode s = 0; s < count; ++s) {
    out.attractor[s] = inverse[out.attractor[s]];
  }

  // Pass 2: statistics. Transient depth via memoized chase.
  std::vector<std::uint64_t> depth(count, 0);
  std::vector<std::uint8_t> depth_done(count, 0);
  for (StateCode s = 0; s < count; ++s) {
    if (out.kind[s] != StateKind::kTransient) depth_done[s] = 1;
  }
  for (StateCode s = 0; s < count; ++s) {
    if (depth_done[s]) continue;
    path.clear();
    StateCode t = s;
    while (!depth_done[t]) {
      path.push_back(t);
      t = fg.succ(t);
    }
    std::uint64_t d = depth[t];
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      depth[*it] = ++d;
      depth_done[*it] = 1;
    }
  }

  for (StateCode s = 0; s < count; ++s) {
    ++out.attractors[out.attractor[s]].basin_size;
    switch (out.kind[s]) {
      case StateKind::kFixedPoint:
        ++out.num_fixed_points;
        break;
      case StateKind::kCycle:
        ++out.num_cycle_states;
        break;
      case StateKind::kTransient:
        ++out.num_transient_states;
        out.max_transient = std::max(out.max_transient, depth[s]);
        break;
    }
  }
  for (const Attractor& a : out.attractors) {
    ++out.cycle_length_histogram[a.period];
  }

  const auto indeg = in_degrees(fg);
  for (StateCode s = 0; s < count; ++s) {
    if (indeg[s] == 0) ++out.num_gardens_of_eden;
  }
  return out;
}

}  // namespace tca::phasespace
