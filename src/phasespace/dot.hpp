#pragma once
// Graphviz DOT export of phase spaces (DESIGN.md S4) — regenerates the
// paper's Fig. 1 drawings. Deterministic phase spaces get plain edges;
// choice digraphs label each edge with the updating node (1-based, matching
// the paper's figure).

#include <string>

#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/functional_graph.hpp"

namespace tca::phasespace {

/// Binary label of a state code, cell 0 first ("01" for code 2 at 2 bits).
[[nodiscard]] std::string state_label(StateCode s, std::uint32_t bits);

/// DOT digraph of a deterministic phase space. Fixed points are drawn as
/// doubled circles, proper cycle states shaded.
[[nodiscard]] std::string to_dot(const FunctionalGraph& fg,
                                 const std::string& name = "phase_space");

/// DOT digraph of a nondeterministic sequential phase space; each edge is
/// labelled with the 1-based updating node. Self-loop edges are included
/// (they are what makes pseudo-fixed points visible).
[[nodiscard]] std::string to_dot(const ChoiceDigraph& g,
                                 const std::string& name = "sca_phase_space");

/// Compact text rendering of a deterministic phase space: one line per
/// state, "<state> -> <succ>   [kind]". Used by the experiment binaries so
/// the paper's figure is reproducible without Graphviz.
[[nodiscard]] std::string to_text(const FunctionalGraph& fg);

/// Compact text rendering of a choice digraph: one line per state with all
/// per-node successors, annotated FP / pseudo-FP.
[[nodiscard]] std::string to_text(const ChoiceDigraph& g);

}  // namespace tca::phasespace
