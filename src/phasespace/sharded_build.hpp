#pragma once
// Sharded, NUMA-aware phase-space construction
// (docs/performance.md "successor storage hierarchy").
//
// build_synchronous_parallel (functional_graph.cpp) hands contiguous
// chunks to the fork-join ThreadPool and writes a flat 8-byte-per-state
// table. This builder replaces both halves for large n:
//
//  * the 2^n code range is cut into fixed shards (multiples of
//    successor_store.hpp's kPutAlign, so shards never share a packed
//    word or a disk byte) and the shards are partitioned into one
//    contiguous region per WORKER GROUP — one group per NUMA node when
//    /sys/devices/system/node exposes several (probed at startup,
//    graceful single-group fallback otherwise). Workers claim shards
//    from their own group's cursor and, once it drains, STEAL from the
//    other groups — so the common case is node-local memory traffic and
//    the tail case is no idle cores. Claim/steal tallies land in the
//    "phasespace.shard.{claimed,stolen}" counters.
//
//  * each worker streams its shard through a thread-local
//    BatchCodeStepper (the dispatched SIMD tier; plans, slices and
//    fallback buffers are per-thread state) into a thread-local staging
//    buffer, then put_range()s the finished shard into the shared
//    SuccessorStore — flat, packed (n-bit succinct), or disk (spilled
//    extents with FNV digests), chosen per build.
//
// The result is deterministic: shard -> range is a fixed function of
// (bits, shard_states), every shard is computed by exactly one worker
// with the same engine, and put_range targets disjoint ranges — so the
// table is bit-identical for ANY worker count, group layout, or steal
// interleaving (pinned by sharded_build_test and the
// store-backend-agree oracle).
//
// Budget/truncation contract (matches build_synchronous_parallel): the
// store's resident/spill footprint is charged up front, states are
// charged per 1024-block; a tripped control stops claiming and the
// build reports counts only (shards complete out of order, so no
// contiguous prefix exists). On the DISK backend a truncated build
// still finalizes its manifest, so a follow-up build with resume=true
// skips every digest-valid shard already on disk.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/successor_store.hpp"
#include "runtime/budget.hpp"
#include "runtime/supervisor.hpp"

namespace tca::phasespace {

/// One worker group: the CPUs of one NUMA node (or the whole machine
/// when the topology is flat / unprobeable).
struct WorkerGroup {
  std::uint32_t node = 0;          ///< NUMA node id (0 on fallback)
  std::vector<unsigned> cpus;      ///< CPUs owned by the node
};

/// Machine topology as the sharder sees it.
struct NumaTopology {
  std::vector<WorkerGroup> groups;  ///< >= 1, sorted by node id
  bool from_sysfs = false;          ///< false => single-group fallback
  [[nodiscard]] unsigned total_cpus() const noexcept {
    unsigned n = 0;
    for (const WorkerGroup& g : groups) {
      n += static_cast<unsigned>(g.cpus.size());
    }
    return n;
  }
};

/// Probes /sys/devices/system/node/node*/cpulist. Any read/parse
/// failure, or a machine with one node, degrades to a single group of
/// hardware_concurrency() CPUs — never throws.
[[nodiscard]] NumaTopology probe_numa_topology();

struct ShardedBuildOptions {
  /// Storage backend the build writes into.
  StoreKind store = StoreKind::kPacked;
  /// Worker threads (0 = one per probed CPU). Clamped to >= 1; the
  /// calling thread is worker 0.
  unsigned workers = 0;
  /// States per shard. Rounded UP to a multiple of kPutAlign (512) so
  /// shards never share a packed word or disk byte; the final shard is
  /// the ragged remainder. Small values are for tests.
  StateCode shard_states = StateCode{1} << 16;
  /// Directory for StoreKind::kDisk (required then, ignored otherwise).
  std::string disk_dir;
  /// kDisk only: revalidate extents already on disk (digest check
  /// against the manifest) and skip rebuilding shards they cover.
  bool resume = false;
  /// Best-effort pthread affinity of each worker to its group's CPUs.
  /// Off by default: pinning helps throughput on multi-node hosts but
  /// is wrong for shared CI runners.
  bool pin_threads = false;
  /// Engine rung the per-worker steppers run at (the degradation
  /// ladder's knob; kWideSimd = dispatched best tier).
  runtime::EngineRung rung = runtime::EngineRung::kWideSimd;
};

/// Build-level tallies (also published as counters).
struct ShardStats {
  std::uint64_t shards_total = 0;
  std::uint64_t shards_claimed = 0;   ///< claimed from the worker's group
  std::uint64_t shards_stolen = 0;    ///< claimed from a foreign group
  std::uint64_t resumed_states = 0;   ///< kDisk resume: states not rebuilt
  std::uint32_t worker_groups = 0;
  std::uint32_t workers = 0;
};

/// Outcome of a sharded build: the usual FunctionalGraphBuild contract
/// (graph engaged iff complete; truncation reports counts only) plus the
/// store itself (engaged iff complete — the streaming-census surface)
/// and the shard tallies.
struct ShardedBuild {
  FunctionalGraphBuild build;
  std::shared_ptr<SuccessorStore> store;
  ShardStats stats;

  [[nodiscard]] bool complete() const noexcept { return build.complete(); }
};

/// Sharded synchronous phase space: succ[s] = F(s) for all 2^n states,
/// bit-identical to FunctionalGraph::synchronous on every backend.
[[nodiscard]] ShardedBuild build_synchronous_sharded(
    const core::Automaton& a, const ShardedBuildOptions& options,
    runtime::RunControl& control);

/// Sharded sweep (SCA) phase space: one full sweep of `order` per code,
/// bit-identical to FunctionalGraph::sweep.
[[nodiscard]] ShardedBuild build_sweep_sharded(
    const core::Automaton& a, std::vector<core::NodeId> order,
    const ShardedBuildOptions& options, runtime::RunControl& control);

/// Supervised wrapper (docs/robustness.md): runs the sharded synchronous
/// build under a runtime::Supervisor, walking the engine-degradation
/// ladder on pressure exactly like supervised_synchronous does for the
/// serial builder. kDisk builds set resume=true on retry attempts so a
/// failed attempt's completed shards are not recomputed.
struct SupervisedShardedBuild {
  ShardedBuild build;
  runtime::SupervisorReport report;
};
[[nodiscard]] SupervisedShardedBuild supervised_synchronous_sharded(
    const core::Automaton& a, ShardedBuildOptions options,
    const runtime::SupervisorOptions& supervisor);

}  // namespace tca::phasespace
