#pragma once
// Classification of deterministic phase spaces (DESIGN.md S4).
//
// Implements the paper's Definition 3 taxonomy over an explicit
// FunctionalGraph: every state is a fixed point (FP), a proper cycle
// configuration (CC, period >= 2), or a transient configuration (TC).
// Additionally computes what the discussion around Fig. 1 and the Section 4
// "rare cycles" remark need: in-degrees, Gardens of Eden (unreachable
// states, in-degree 0), per-attractor basin sizes, and maximum transient
// ("tail") lengths.

#include <cstdint>
#include <map>
#include <vector>

#include "phasespace/functional_graph.hpp"

namespace tca::phasespace {

/// Definition 3 state kinds.
enum class StateKind : std::uint8_t {
  kFixedPoint,  ///< period-1 cycle: F(x) = x
  kCycle,       ///< on a cycle of period >= 2
  kTransient,   ///< never revisited once left
};

/// One attractor (terminal cycle) of the functional graph.
struct Attractor {
  std::uint64_t period = 0;      ///< 1 = fixed point
  StateCode representative = 0;  ///< smallest state code on the cycle
  std::uint64_t basin_size = 0;  ///< states draining here, cycle included
};

/// Full classification of a deterministic phase space.
struct Classification {
  std::vector<StateKind> kind;           ///< per state
  std::vector<std::uint32_t> attractor;  ///< per state: index into attractors
  std::vector<Attractor> attractors;     ///< sorted by representative
  std::uint64_t num_fixed_points = 0;
  std::uint64_t num_cycle_states = 0;  ///< states on proper cycles (p >= 2)
  std::uint64_t num_transient_states = 0;
  std::uint64_t num_gardens_of_eden = 0;  ///< in-degree-0 states
  std::uint64_t max_transient = 0;  ///< longest tail into any attractor
  /// cycle length -> number of distinct cycles of that length
  /// (period 1 entries are fixed points).
  std::map<std::uint64_t, std::uint64_t> cycle_length_histogram;

  /// True if the phase space has any proper cycle (period >= 2) — the
  /// property separating parallel from sequential threshold CA.
  [[nodiscard]] bool has_proper_cycle() const {
    return num_cycle_states > 0;
  }
  /// Largest period over all attractors (0 if no states).
  [[nodiscard]] std::uint64_t max_period() const {
    return cycle_length_histogram.empty()
               ? 0
               : cycle_length_histogram.rbegin()->first;
  }
};

/// Classifies every state of the functional graph. O(num_states) time.
/// Works on every storage backend: the cycle/transient walks go through
/// FunctionalGraph::succ (random access — flat index, packed decode, or
/// disk mmap) and the in-degree pass streams via the store.
[[nodiscard]] Classification classify(const FunctionalGraph& fg);

/// In-degree of each state (preimage counts under F).
[[nodiscard]] std::vector<std::uint32_t> in_degrees(const FunctionalGraph& fg);

/// Store-generic in-degrees: one sequential streamed pass over any
/// SuccessorStore backend (the surface the service tier and the disk
/// censuses use; the FunctionalGraph overload delegates here).
[[nodiscard]] std::vector<std::uint32_t> in_degrees(
    const SuccessorStore& store);

}  // namespace tca::phasespace
