#include "phasespace/sharded_build.hpp"

// tca-lint: relaxed-ok(claim cursors, steal tallies and the abandon flag
// are control-flow only — a stale read costs at most one wasted claim
// probe or one extra shard before stopping. Every byte of phase-space
// data is published to the caller by the thread-join barrier, and errors
// travel under error_mu; no reader relies on these atomics for ordering.
// The full argument lives in docs/memory_model.md.)

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#include "core/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::phasespace {
namespace {

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids; empty on garbage.
std::vector<unsigned> parse_cpulist(const std::string& text) {
  std::vector<unsigned> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    std::string_view item(text.data() + pos, end - pos);
    while (!item.empty() && (item.back() == '\n' || item.back() == ' ')) {
      item.remove_suffix(1);
    }
    if (!item.empty()) {
      const std::size_t dash = item.find('-');
      const auto parse = [](std::string_view s, unsigned& out) {
        out = 0;
        if (s.empty()) return false;
        for (const char c : s) {
          if (c < '0' || c > '9') return false;
          out = out * 10 + static_cast<unsigned>(c - '0');
        }
        return true;
      };
      unsigned lo = 0;
      unsigned hi = 0;
      if (dash == std::string_view::npos) {
        if (!parse(item, lo)) return {};
        hi = lo;
      } else if (!parse(item.substr(0, dash), lo) ||
                 !parse(item.substr(dash + 1), hi) || hi < lo) {
        return {};
      }
      for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
    }
    pos = end + 1;
  }
  return cpus;
}

NumaTopology fallback_topology() {
  NumaTopology topo;
  WorkerGroup g;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned c = 0; c < hw; ++c) g.cpus.push_back(c);
  topo.groups.push_back(std::move(g));
  return topo;
}

/// Batched counter publication, mirroring publish_build_tallies.
void publish_shard_tallies(const ShardStats& stats,
                           std::uint64_t states_built) {
  static obs::Counter& builds = obs::counter("phasespace.build.runs");
  static obs::Counter& states = obs::counter("phasespace.build.states");
  static obs::Counter& claimed = obs::counter("phasespace.shard.claimed");
  static obs::Counter& stolen = obs::counter("phasespace.shard.stolen");
  static obs::Counter& resumed = obs::counter("phasespace.shard.resumed_states");
  builds.add();
  states.add(states_built);
  claimed.add(stats.shards_claimed);
  stolen.add(stats.shards_stolen);
  resumed.add(stats.resumed_states);
}

/// RAM the backend will pin (charged to the byte budget BEFORE any
/// allocation, like build_synchronous_parallel charges its whole table).
std::uint64_t estimated_store_bytes(StoreKind kind, std::uint32_t bits,
                                    StateCode count) {
  switch (kind) {
    case StoreKind::kFlat:
      return count * sizeof(StateCode);
    case StoreKind::kPacked:
      return (((static_cast<std::uint64_t>(count) * bits + 63) >> 6) + 1) *
             sizeof(std::uint64_t);
    case StoreKind::kDisk:
      return 0;  // spills; staging is charged separately per worker
  }
  return count * sizeof(StateCode);
}

/// Best-effort pin of the calling thread to `cpus`; failures are logged
/// once per build, never fatal (shared runners refuse affinity calls).
bool pin_to_cpus(const std::vector<unsigned>& cpus) {
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const unsigned c : cpus) {
    if (c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

struct ShardPlan {
  StateCode shard_states = 0;
  std::uint64_t shards_total = 0;
  StateCode count = 0;

  [[nodiscard]] StateCode shard_first(std::uint64_t shard) const noexcept {
    return shard * shard_states;
  }
  [[nodiscard]] std::size_t shard_count(std::uint64_t shard) const noexcept {
    return static_cast<std::size_t>(
        std::min<StateCode>(shard_states, count - shard_first(shard)));
  }
};

ShardedBuild build_sharded(const core::Automaton& a, bool sweep_mode,
                           std::vector<core::NodeId> order,
                           const ShardedBuildOptions& options,
                           runtime::RunControl& control,
                           const char* context) {
  TCA_SPAN("phase_space_build_sharded");
  const auto bits = static_cast<std::uint32_t>(a.size());
  tca::require_explicit_bits(bits, max_explicit_bits(options.store), context);
  const StateCode count = StateCode{1} << bits;

  ShardedBuild out;

  // --- plan: shards, groups, workers ------------------------------------
  ShardPlan plan;
  plan.count = count;
  plan.shard_states = std::max<StateCode>(1, options.shard_states);
  if (options.store == StoreKind::kDisk) {
    // Disk extents must own disjoint whole bytes (see DiskStore).
    plan.shard_states =
        (plan.shard_states + kPutAlign - 1) / kPutAlign * kPutAlign;
  }
  plan.shards_total = (count + plan.shard_states - 1) / plan.shard_states;

  const NumaTopology topo = probe_numa_topology();
  const auto num_groups = static_cast<std::uint32_t>(topo.groups.size());
  unsigned workers = options.workers != 0 ? options.workers
                                          : std::max(1u, topo.total_cpus());
  workers = std::max(1u, workers);

  out.stats.shards_total = plan.shards_total;
  out.stats.worker_groups = num_groups;
  out.stats.workers = workers;

  // Worker w belongs to group w % G; shard regions are sized
  // proportionally to each group's worker head-count so nobody starts
  // with an empty plate (workerless groups get empty regions and are
  // only reached by stealing — i.e. never, since they hold nothing).
  std::vector<std::uint32_t> group_workers(num_groups, 0);
  for (unsigned w = 0; w < workers; ++w) ++group_workers[w % num_groups];
  std::vector<std::uint64_t> region_begin(num_groups, 0);
  std::vector<std::uint64_t> region_end(num_groups, 0);
  {
    std::uint64_t next = 0;
    std::uint64_t assigned_workers = 0;
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      region_begin[g] = next;
      assigned_workers += group_workers[g];
      // Cumulative proportional split: exact coverage, no rounding gaps.
      const std::uint64_t end =
          plan.shards_total * assigned_workers / workers;
      region_end[g] = end;
      next = end;
    }
    region_end[num_groups - 1] = plan.shards_total;
  }

  // --- budget: charge the store + staging footprint up front ------------
  const std::uint64_t staging_bytes =
      static_cast<std::uint64_t>(workers) *
      std::min<StateCode>(plan.shard_states, count) * sizeof(StateCode);
  const std::uint64_t charge =
      estimated_store_bytes(options.store, bits, count) + staging_bytes;
  if (control.note_bytes(charge) != runtime::StopReason::kNone) {
    out.build.status = control.status();
    publish_shard_tallies(out.stats, 0);
    return out;
  }
  runtime::fault::check_alloc(charge);

  std::shared_ptr<SuccessorStore> store =
      make_store(options.store, bits, options.disk_dir);

  // --- kDisk resume: skip shards whose extents revalidate ---------------
  std::vector<std::uint8_t> shard_done(
      static_cast<std::size_t>(plan.shards_total), 0);
  if (options.store == StoreKind::kDisk && options.resume) {
    auto* disk = static_cast<DiskStore*>(store.get());
    for (const DiskStore::Extent& e : disk->resume()) {
      // Only extents that exactly tile a shard are reusable (extent
      // granularity IS shard granularity for every sharded build with
      // the same shard_states).
      if (e.first % plan.shard_states != 0) continue;
      const std::uint64_t shard = e.first / plan.shard_states;
      if (shard >= plan.shards_total ||
          e.count != plan.shard_count(shard)) {
        continue;
      }
      if (shard_done[static_cast<std::size_t>(shard)] == 0) {
        shard_done[static_cast<std::size_t>(shard)] = 1;
        out.stats.resumed_states += e.count;
      }
    }
  }

  // --- the work-stealing drain ------------------------------------------
  // One claim cursor per group. fetch_add may overshoot region_end by up
  // to one per contending worker; claims are validated against the end,
  // so overshoot only wastes the increment.
  std::vector<std::atomic<std::uint64_t>> cursors(num_groups);
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    cursors[g].store(region_begin[g], std::memory_order_relaxed);
  }
  std::atomic<bool> abandon{false};
  std::atomic<std::uint64_t> total_claimed{0};
  std::atomic<std::uint64_t> total_stolen{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  runtime::RunControl* ctl = &control;
  SuccessorStore* store_raw = store.get();
  const ShardPlan* plan_ptr = &plan;
  const std::uint8_t* done = shard_done.data();

  const auto worker_body = [&, ctl, store_raw, plan_ptr,
                            done](unsigned worker_id) TCA_HOT_PATH {
    const std::uint32_t home = worker_id % num_groups;
    if (options.pin_threads && worker_id != 0) {
      // Worker 0 is the calling thread; leave its affinity alone.
      pin_to_cpus(topo.groups[home].cpus);
    }
    try {
      // Thread-local engine + staging: plans, slices and fallback
      // buffers are per-thread state (same policy as the pool builder).
      BatchCodeStepper stepper =
          sweep_mode ? BatchCodeStepper(a, order)
                     : BatchCodeStepper(a, options.rung);
      if (worker_id == 0 &&
          (sweep_mode || options.rung == runtime::EngineRung::kWideSimd ||
           options.rung == runtime::EngineRung::kBatch64)) {
        // The batch decision is surfaced once per build, not per worker
        // (all workers make the same decision from the same automaton).
        // Forced-scalar rungs are deliberate, not a fallback — same policy
        // as build_synchronous_at_rung.
        note_batch_fallback(stepper, a, context);
      }
      std::vector<StateCode> staging(static_cast<std::size_t>(
          std::min<StateCode>(plan_ptr->shard_states, plan_ptr->count)));
      std::uint64_t claimed = 0;
      std::uint64_t stolen = 0;
      while (!abandon.load(std::memory_order_relaxed)) {
        // Claim: home group first, then sweep the others (steal).
        std::uint64_t shard = ~std::uint64_t{0};
        bool is_steal = false;
        for (std::uint32_t off = 0; off < num_groups; ++off) {
          const std::uint32_t g = (home + off) % num_groups;
          while (cursors[g].load(std::memory_order_relaxed) < region_end[g]) {
            const std::uint64_t got =
                cursors[g].fetch_add(1, std::memory_order_relaxed);
            if (got < region_end[g]) {
              shard = got;
              is_steal = off != 0;
              break;
            }
          }
          if (shard != ~std::uint64_t{0}) break;
        }
        if (shard == ~std::uint64_t{0}) break;  // everything drained
        if (done[shard] != 0) continue;         // resumed from disk
        const StateCode first = plan_ptr->shard_first(shard);
        const std::size_t n_states = plan_ptr->shard_count(shard);
        // Stream the shard in 1024-blocks so budgets/cancellation trip
        // mid-shard, not per-shard; a tripped shard is NOT stored (the
        // store keeps whole shards only — that is what makes disk
        // extents exact and resumable).
        bool whole = true;
        for (std::size_t done_states = 0; done_states < n_states;) {
          const auto block =
              std::min<std::size_t>(1024, n_states - done_states);
          if (ctl->note_states(block) != runtime::StopReason::kNone) {
            whole = false;
            abandon.store(true, std::memory_order_relaxed);
            break;
          }
          stepper.step_range(first + done_states, block,
                             staging.data() + done_states);
          done_states += block;
        }
        if (!whole) break;
        store_raw->put_range(first, n_states, staging.data());
        ++(is_steal ? stolen : claimed);
      }
      total_claimed.fetch_add(claimed, std::memory_order_relaxed);
      total_stolen.fetch_add(stolen, std::memory_order_relaxed);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
      abandon.store(true, std::memory_order_relaxed);
    }
  };

  // Spawn workers 1..N-1; the calling thread is worker 0. Spawn failure
  // degrades to fewer workers (possibly just the caller), mirroring
  // ThreadPool's policy.
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    try {
      if (runtime::fault::should_fail_thread_spawn()) {
        throw tca::InjectedFaultError(
            "fault plan: sharded-build worker spawn failure");
      }
      TCA_JOINED_BEFORE_SCOPE_EXIT(
          "all spawned workers are joined at the barrier right after "
          "worker_body(0), before any captured local dies");
      threads.emplace_back(worker_body, w);
    } catch (...) {
      static obs::Counter& degraded =
          obs::counter("phasespace.shard.spawn_degraded");
      degraded.add();
      obs::log_event(obs::LogLevel::kWarn, "phasespace.shard.spawn_degraded",
                     {{"requested", static_cast<std::uint64_t>(workers)},
                      {"spawned", static_cast<std::uint64_t>(w)}});
      break;
    }
  }
  worker_body(0);
  for (std::thread& t : threads) t.join();

  if (first_error != nullptr) {
    // Publish what happened before surfacing the failure.
    out.stats.shards_claimed = total_claimed.load(std::memory_order_relaxed);
    out.stats.shards_stolen = total_stolen.load(std::memory_order_relaxed);
    publish_shard_tallies(out.stats, control.status().states);
    std::rethrow_exception(first_error);
  }

  out.stats.shards_claimed = total_claimed.load(std::memory_order_relaxed);
  out.stats.shards_stolen = total_stolen.load(std::memory_order_relaxed);
  out.build.status = control.status();

  const std::uint64_t executed =
      out.stats.shards_claimed + out.stats.shards_stolen;
  const std::uint64_t resumed_shards = static_cast<std::uint64_t>(
      std::count(shard_done.begin(), shard_done.end(), std::uint8_t{1}));
  const bool complete =
      !out.build.status.truncated() &&
      executed + resumed_shards == plan.shards_total;

  if (!complete) {
    // Shards complete out of order: counts only, like the pool builder.
    // Disk builds still persist their manifest so resume picks up the
    // finished shards.
    out.build.states_built = out.build.status.states;
    if (options.store == StoreKind::kDisk) {
      store->finalize();
      out.store = std::move(store);  // partial, for resume/inspection
    }
    publish_shard_tallies(out.stats, out.build.states_built);
    return out;
  }

  store->finalize();
  out.build.states_built = count;
  out.store = store;
  out.build.graph = FunctionalGraph::from_store(std::move(store));
  publish_shard_tallies(out.stats, count);
  return out;
}

}  // namespace

NumaTopology probe_numa_topology() {
  namespace fs = std::filesystem;
  NumaTopology topo;
  std::error_code ec;
  const fs::path root("/sys/devices/system/node");
  if (!fs::is_directory(root, ec) || ec) return fallback_topology();
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (ec) return fallback_topology();
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0 || name.size() <= 4) continue;
    std::uint32_t node = 0;
    bool numeric = true;
    for (std::size_t i = 4; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      node = node * 10 + static_cast<std::uint32_t>(name[i] - '0');
    }
    if (!numeric) continue;
    std::ifstream cpulist(entry.path() / "cpulist");
    if (!cpulist) continue;
    std::string text;
    std::getline(cpulist, text);
    std::vector<unsigned> cpus = parse_cpulist(text);
    if (cpus.empty()) continue;  // memory-only node: no workers to home
    WorkerGroup g;
    g.node = node;
    g.cpus = std::move(cpus);
    topo.groups.push_back(std::move(g));
  }
  if (topo.groups.empty()) return fallback_topology();
  std::sort(topo.groups.begin(), topo.groups.end(),
            [](const WorkerGroup& a, const WorkerGroup& b) {
              return a.node < b.node;
            });
  topo.from_sysfs = true;
  return topo;
}

ShardedBuild build_synchronous_sharded(const core::Automaton& a,
                                       const ShardedBuildOptions& options,
                                       runtime::RunControl& control) {
  return build_sharded(a, /*sweep_mode=*/false, {}, options, control,
                       "build_synchronous_sharded");
}

ShardedBuild build_sweep_sharded(const core::Automaton& a,
                                 std::vector<core::NodeId> order,
                                 const ShardedBuildOptions& options,
                                 runtime::RunControl& control) {
  return build_sharded(a, /*sweep_mode=*/true, std::move(order), options,
                       control, "build_sweep_sharded");
}

SupervisedShardedBuild supervised_synchronous_sharded(
    const core::Automaton& a, ShardedBuildOptions options,
    const runtime::SupervisorOptions& supervisor_options) {
  SupervisedShardedBuild out;
  runtime::Supervisor supervisor(supervisor_options);
  bool first_attempt = true;
  out.report = supervisor.run(
      "phasespace.synchronous_sharded", [&](runtime::AttemptContext& ctx) {
        ShardedBuildOptions attempt = options;
        attempt.rung = ctx.rung;
        // Retries of a disk build reuse every digest-valid shard the
        // failed attempt already spilled.
        if (!first_attempt && attempt.store == StoreKind::kDisk) {
          attempt.resume = true;
        }
        first_attempt = false;
        out.build = build_synchronous_sharded(a, attempt, ctx.control);
        return out.build.complete() ? runtime::AttemptOutcome::kCompleted
                                    : runtime::AttemptOutcome::kTruncated;
      });
  return out;
}

}  // namespace tca::phasespace
