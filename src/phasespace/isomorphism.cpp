#include "phasespace/isomorphism.hpp"

#include <algorithm>
#include <vector>

#include "phasespace/classify.hpp"

namespace tca::phasespace {
namespace {

/// AHU canonical encoding of the tree of transient predecessors hanging
/// off `root` (children = preimages; cycle predecessors excluded).
/// Iterative post-order over the preimage lists.
std::string tree_encoding(StateCode root,
                          const std::vector<std::vector<StateCode>>& tree_preds) {
  // Post-order: children encodings must be complete before the parent's.
  struct Frame {
    StateCode node;
    std::size_t next_child = 0;
    std::vector<std::string> child_codes;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root, 0, {}});
  std::string result;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& children = tree_preds[frame.node];
    if (frame.next_child < children.size()) {
      stack.push_back(Frame{children[frame.next_child++], 0, {}});
      continue;
    }
    std::sort(frame.child_codes.begin(), frame.child_codes.end());
    std::string code = "(";
    for (const auto& c : frame.child_codes) code += c;
    code += ")";
    stack.pop_back();
    if (stack.empty()) {
      result = std::move(code);
    } else {
      stack.back().child_codes.push_back(std::move(code));
    }
  }
  return result;
}

/// Lexicographically smallest rotation of `items` joined with separators.
std::string minimal_rotation(const std::vector<std::string>& items) {
  std::string best;
  for (std::size_t shift = 0; shift < items.size(); ++shift) {
    std::string candidate;
    for (std::size_t i = 0; i < items.size(); ++i) {
      candidate += items[(shift + i) % items.size()];
      candidate += "|";
    }
    if (best.empty() || candidate < best) best = std::move(candidate);
  }
  return best;
}

}  // namespace

std::string canonical_form(const FunctionalGraph& fg) {
  const auto cls = classify(fg);
  const StateCode count = fg.num_states();

  // Preimage lists restricted to transient (tree) edges.
  std::vector<std::vector<StateCode>> tree_preds(count);
  for (StateCode s = 0; s < count; ++s) {
    if (cls.kind[s] == StateKind::kTransient) {
      tree_preds[fg.succ(s)].push_back(s);
    }
  }

  // Walk each attractor's cycle once, collecting per-node tree encodings.
  std::vector<std::string> components;
  for (const auto& attractor : cls.attractors) {
    std::vector<std::string> around;
    StateCode s = attractor.representative;
    for (std::uint64_t i = 0; i < attractor.period; ++i) {
      around.push_back(tree_encoding(s, tree_preds));
      s = fg.succ(s);
    }
    std::string component = "[";
    component += minimal_rotation(around);
    component += "]";
    components.push_back(std::move(component));
  }
  std::sort(components.begin(), components.end());
  std::string out;
  for (const auto& c : components) out += c;
  return out;
}

bool isomorphic(const FunctionalGraph& a, const FunctionalGraph& b) {
  if (a.num_states() != b.num_states()) return false;
  return canonical_form(a) == canonical_form(b);
}

}  // namespace tca::phasespace
