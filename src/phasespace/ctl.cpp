#include "phasespace/ctl.hpp"

#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::phasespace {
namespace {

void require_size(const ChoiceDigraph& g, const StateSet& s) {
  if (s.size() != g.num_states()) {
    throw tca::InvalidArgumentError(
        "ctl: state set size mismatch", tca::ErrorCode::kSizeMismatch);
  }
}

}  // namespace

StateSet make_set(const ChoiceDigraph& g,
                  const std::function<bool(StateCode)>& pred) {
  StateSet out(g.num_states(), 0);
  for (StateCode s = 0; s < g.num_states(); ++s) {
    out[s] = pred(s) ? 1 : 0;
  }
  return out;
}

StateSet set_not(const StateSet& a) {
  StateSet out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ? 0 : 1;
  return out;
}

StateSet set_and(const StateSet& a, const StateSet& b) {
  StateSet out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = (a[i] && b[i]) ? 1 : 0;
  return out;
}

StateSet set_or(const StateSet& a, const StateSet& b) {
  StateSet out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = (a[i] || b[i]) ? 1 : 0;
  return out;
}

std::uint64_t set_size(const StateSet& a) {
  std::uint64_t total = 0;
  for (const auto b : a) total += b;
  return total;
}

StateSet ex(const ChoiceDigraph& g, const StateSet& target) {
  require_size(g, target);
  StateSet out(g.num_states(), 0);
  for (StateCode s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      if (target[g.succ(s, v)]) {
        out[s] = 1;
        break;
      }
    }
  }
  return out;
}

StateSet ax(const ChoiceDigraph& g, const StateSet& target) {
  require_size(g, target);
  StateSet out(g.num_states(), 1);
  for (StateCode s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      if (!target[g.succ(s, v)]) {
        out[s] = 0;
        break;
      }
    }
  }
  return out;
}

namespace {

StateSet least_fixpoint(const ChoiceDigraph& g, const StateSet& target,
                        StateSet (*step)(const ChoiceDigraph&,
                                         const StateSet&)) {
  StateSet z = target;
  for (;;) {
    const StateSet next = set_or(z, step(g, z));
    if (next == z) return z;
    z = next;
  }
}

StateSet greatest_fixpoint(const ChoiceDigraph& g, const StateSet& target,
                           StateSet (*step)(const ChoiceDigraph&,
                                            const StateSet&)) {
  StateSet z = target;
  for (;;) {
    const StateSet next = set_and(z, step(g, z));
    if (next == z) return z;
    z = next;
  }
}

}  // namespace

StateSet ef(const ChoiceDigraph& g, const StateSet& target) {
  require_size(g, target);
  return least_fixpoint(g, target, &ex);
}

StateSet af(const ChoiceDigraph& g, const StateSet& target) {
  require_size(g, target);
  return least_fixpoint(g, target, &ax);
}

StateSet eg(const ChoiceDigraph& g, const StateSet& target) {
  require_size(g, target);
  return greatest_fixpoint(g, target, &ex);
}

StateSet ag(const ChoiceDigraph& g, const StateSet& target) {
  require_size(g, target);
  return greatest_fixpoint(g, target, &ax);
}

}  // namespace tca::phasespace
