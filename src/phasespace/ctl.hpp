#pragma once
// CTL-style reachability operators over the sequential choice digraph
// (DESIGN.md S4 extension; the reachability-problem substrate of the
// paper's reference [4], Barrett et al., "Reachability problems for
// sequential dynamical systems with threshold functions").
//
// The choice digraph is a nondeterministic transition system (one
// transition per node choice), so the standard CTL fixpoints answer
// scheduling questions directly:
//   EF T — "SOME update sequence reaches T"        (possible)
//   AF T — "EVERY update sequence reaches T"       (inevitable)
//   EG T — "some sequence stays in T forever"      (maintainable)
//   AG T — "every sequence stays in T forever"     (invariant)
// Note every state has a self-loop-capable choice in most CA (updating a
// stable node), so AF is strict: a state outside T with a self-loop never
// satisfies AF T. That is exactly the fairness subtlety of the paper's
// footnote 2, visible in the logic.

#include <cstdint>
#include <functional>
#include <vector>

#include "phasespace/choice_digraph.hpp"

namespace tca::phasespace {

/// Characteristic vector over the 2^n states of a choice digraph.
using StateSet = std::vector<std::uint8_t>;

/// Builds a StateSet from a predicate on state codes.
[[nodiscard]] StateSet make_set(const ChoiceDigraph& g,
                                const std::function<bool(StateCode)>& pred);

/// Set algebra.
[[nodiscard]] StateSet set_not(const StateSet& a);
[[nodiscard]] StateSet set_and(const StateSet& a, const StateSet& b);
[[nodiscard]] StateSet set_or(const StateSet& a, const StateSet& b);
[[nodiscard]] std::uint64_t set_size(const StateSet& a);

/// EX T: states with at least one choice leading into T.
[[nodiscard]] StateSet ex(const ChoiceDigraph& g, const StateSet& target);

/// AX T: states whose every choice leads into T.
[[nodiscard]] StateSet ax(const ChoiceDigraph& g, const StateSet& target);

/// EF T: least fixpoint of Z = T or EX Z (reachability by some schedule).
[[nodiscard]] StateSet ef(const ChoiceDigraph& g, const StateSet& target);

/// AF T: least fixpoint of Z = T or AX Z (inevitable under any schedule).
[[nodiscard]] StateSet af(const ChoiceDigraph& g, const StateSet& target);

/// EG T: greatest fixpoint of Z = T and EX Z.
[[nodiscard]] StateSet eg(const ChoiceDigraph& g, const StateSet& target);

/// AG T: greatest fixpoint of Z = T and AX Z.
[[nodiscard]] StateSet ag(const ChoiceDigraph& g, const StateSet& target);

}  // namespace tca::phasespace
