#pragma once
// Explicit phase spaces of deterministic CA (DESIGN.md S4).
//
// The paper's Section 2 views a CA as a discrete dynamical system whose
// phase space is the digraph on all 2^n global configurations with an edge
// x -> F(x). For a DETERMINISTIC update scheme (classical parallel CA, or a
// sequential CA with a fixed sweep order) every state has out-degree 1, so
// the phase space is a functional graph: disjoint cycles with trees hanging
// off them.
//
// Global configurations are encoded as uint64 state codes with bit i =
// cell i; explicit construction is limited to n <= 26 cells.
//
// Two construction surfaces:
//  * the classic builders (synchronous / synchronous_parallel / sweep)
//    either finish or throw — unchanged behaviour;
//  * the budgeted builders (build_synchronous / build_sweep /
//    build_synchronous_parallel) run under a runtime::RunControl and stop
//    cleanly on budget exhaustion or cancellation, returning a
//    FunctionalGraphBuild whose status says why and (for the serial
//    builders) the successor-table prefix computed so far.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/automaton.hpp"
#include "core/batch_kernels.hpp"
#include "core/configuration.hpp"
#include "core/thread_pool.hpp"
#include "phasespace/successor_store.hpp"
#include "runtime/budget.hpp"
#include "runtime/supervisor.hpp"

namespace tca::phasespace {

// StateCode (encoded global configuration, bit i = cell i) now lives in
// successor_store.hpp, below this header.

/// Deterministic successor map over encoded states.
using CodeStepFn = std::function<StateCode(StateCode)>;

/// Hard cap on FLAT explicit enumeration (2^26 states x 8 bytes of
/// StateCode = 512 MiB). Backend-aware caps — packed n=29, disk n=32 —
/// come from max_explicit_bits(StoreKind) in successor_store.hpp; this
/// constant is the kFlat instance, kept for the pre-store call sites.
inline constexpr std::uint32_t kMaxExplicitBits =
    max_explicit_bits(StoreKind::kFlat);

struct FunctionalGraphBuild;

/// The full successor table of a deterministic map on n-bit states.
class FunctionalGraph {
 public:
  /// Builds succ[s] = step(s) for all s in [0, 2^bits).
  FunctionalGraph(std::uint32_t bits, const CodeStepFn& step);

  /// Wraps an externally computed successor table (size must be 2^bits).
  static FunctionalGraph from_table(std::uint32_t bits,
                                    std::vector<StateCode> succ);

  /// Wraps a completed SuccessorStore of any backend (the sharded /
  /// succinct / disk build surface, phasespace/sharded_build.hpp). The
  /// store must hold 2^bits() == num_entries() finalized successors;
  /// `bits` is validated against max_explicit_bits(store->kind()).
  static FunctionalGraph from_store(std::shared_ptr<SuccessorStore> store);

  /// Phase space of the classical parallel CA (synchronous global map F).
  static FunctionalGraph synchronous(const core::Automaton& a);

  /// Same table, built across a thread pool (the 2^n state evaluations
  /// are independent). Bit-for-bit identical to synchronous().
  static FunctionalGraph synchronous_parallel(const core::Automaton& a,
                                              core::ThreadPool& pool);

  /// Phase space of the SCA whose step is one full sweep of `order`.
  static FunctionalGraph sweep(const core::Automaton& a,
                               std::vector<core::NodeId> order);

  /// Budgeted builders: stop cleanly when `control` trips, never abort.
  /// Identical tables to their unbudgeted counterparts on completion.
  static FunctionalGraphBuild build_synchronous(const core::Automaton& a,
                                                runtime::RunControl& control);
  static FunctionalGraphBuild build_sweep(const core::Automaton& a,
                                          std::vector<core::NodeId> order,
                                          runtime::RunControl& control);
  static FunctionalGraphBuild build_synchronous_parallel(
      const core::Automaton& a, core::ThreadPool& pool,
      runtime::RunControl& control);

  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }
  [[nodiscard]] StateCode num_states() const noexcept {
    return StateCode{1} << bits_;
  }
  /// Successor of s. Direct array indexing on the flat backend; a store
  /// read (packed decode / disk mmap) otherwise.
  [[nodiscard]] StateCode succ(StateCode s) const {
    return flat_ != nullptr ? flat_[s] : store_->get(s);
  }
  /// The storage backend (flat / packed / disk) this graph reads from.
  [[nodiscard]] const SuccessorStore& store() const noexcept {
    return *store_;
  }
  /// The flat successor vector. Only the kFlat backend has one; throws
  /// tca::StateError otherwise — backend-generic consumers iterate via
  /// store().for_each_range() instead.
  [[nodiscard]] const std::vector<StateCode>& successors() const;

 private:
  FunctionalGraph() = default;  // for the parallel builder

  std::uint32_t bits_ = 0;
  /// Shared, immutable-after-build storage: copying a FunctionalGraph
  /// shares the table instead of duplicating up to 512 MiB.
  std::shared_ptr<SuccessorStore> store_;
  /// Cached FlatStore table pointer so succ() stays one indexed load on
  /// the default backend.
  const StateCode* flat_ = nullptr;
};

/// Outcome of a budgeted phase-space build. `graph` is engaged iff the
/// build ran to completion; a truncated SERIAL build carries the computed
/// prefix succ[0 .. states_built) in partial_succ (a truncated parallel
/// build computes states in non-contiguous chunks, so it reports counts
/// only). Always well-formed — budget exhaustion never throws.
struct FunctionalGraphBuild {
  std::optional<FunctionalGraph> graph;
  std::vector<StateCode> partial_succ;
  StateCode states_built = 0;
  runtime::RunStatus status;

  [[nodiscard]] bool complete() const noexcept { return graph.has_value(); }
  [[nodiscard]] bool truncated() const noexcept { return !complete(); }
};

/// Adapters from automata to encoded-state step functions.
[[nodiscard]] CodeStepFn synchronous_code_step(const core::Automaton& a);
[[nodiscard]] CodeStepFn sweep_code_step(const core::Automaton& a,
                                         std::vector<core::NodeId> order);

/// Amortized batch code stepping (docs/performance.md): fills successor
/// codes 64..512 lanes at a time through the bit-sliced engine at the
/// dispatched ISA tier (core/batch_kernels.hpp, core/batch_isa.hpp) when
/// the automaton is supported, and through the scalar from_bits / step /
/// to_bits path otherwise. The dispatch decision is made once at
/// construction; callers that enumerate full tables (phase-space builds,
/// the explicit Garden-of-Eden census, benches) construct one stepper per
/// thread and stream ranges through it. Results are bit-for-bit identical
/// across tiers and the scalar path.
class BatchCodeStepper {
 public:
  /// Synchronous mode: one parallel step per code.
  explicit BatchCodeStepper(const core::Automaton& a);

  /// Sweep mode: one full sequential sweep of `order` per code (the SCA
  /// phase-space map of FunctionalGraph::sweep).
  BatchCodeStepper(const core::Automaton& a, std::vector<core::NodeId> order);

  /// Forced-tier overloads (differential tests, the ablation bench):
  /// bypass the TCA_BATCH_ISA dispatch and use exactly `isa`. Throw when
  /// the tier is unavailable on this host/build.
  BatchCodeStepper(const core::Automaton& a, core::BatchIsa isa);
  BatchCodeStepper(const core::Automaton& a, std::vector<core::NodeId> order,
                   core::BatchIsa isa);

  /// Degradation-ladder constructor (synchronous mode only): steps at
  /// exactly the requested rung. kWideSimd is the dispatched wide tier
  /// (scalar fallback when the automaton is unsupported — reason
  /// recorded), kBatch64 forces the always-available 64-lane bit-slice
  /// tier, kPacked runs the monomorphized scalar kernel per code, and
  /// kScalar the generic reference stepper. All rungs are bit-for-bit
  /// identical; the lower ones trade speed for a smaller working set.
  BatchCodeStepper(const core::Automaton& a, runtime::EngineRung rung);

  /// succ[j] := F(first + j) for j in [0, count). `count` need not be a
  /// multiple of the tier width (ragged final batches are masked on
  /// store).
  void step_range(StateCode first, std::size_t count, StateCode* succ);

  /// False when the batch engine declined the automaton and every
  /// step_range runs scalar.
  [[nodiscard]] bool batched() const noexcept { return stepper_ != nullptr; }
  /// Stable reason string when !batched(), nullptr otherwise.
  [[nodiscard]] const char* fallback_reason() const noexcept {
    return reason_;
  }
  /// The ISA tier stepping runs at (kScalar covers both the 64-lane
  /// bit-slice tier and the non-batched scalar fallback).
  [[nodiscard]] core::BatchIsa isa() const noexcept {
    return stepper_ != nullptr ? stepper_->isa() : core::BatchIsa::kScalar;
  }
  /// The ladder rung this stepper was built for (kWideSimd unless the
  /// rung constructor was used).
  [[nodiscard]] runtime::EngineRung rung() const noexcept { return rung_; }

 private:
  const core::Automaton* a_;
  std::vector<core::NodeId> order_;
  bool sweep_mode_;
  std::unique_ptr<core::WideStepper> stepper_;
  const char* reason_ = nullptr;
  runtime::EngineRung rung_ = runtime::EngineRung::kWideSimd;
  bool fast_scalar_ = false;   // kPacked: monomorphized scalar kernel
  core::Configuration front_;  // scalar fallback buffers
  core::Configuration back_;
};

/// Records a scalar fallback: bumps "engine.batch.fallback" and emits a
/// structured "engine.batch.fallback" warn event naming the context, the
/// reason, and the automaton — silent de-optimization shows up in run
/// manifests. Call once per build/census decision, not per step. No-op
/// when the stepper is batched.
void note_batch_fallback(const BatchCodeStepper& stepper,
                         const core::Automaton& a, const char* context);

/// One-shot convenience over BatchCodeStepper (synchronous mode):
/// succ[j] := F(first + j) for j in [0, count), batch engine when
/// supported (a fallback is counted and logged otherwise).
void batch_code_step(const core::Automaton& a, StateCode first,
                     std::size_t count, StateCode* succ);

}  // namespace tca::phasespace
