#include "phasespace/functional_graph.hpp"

#include <utility>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::phasespace {
namespace {

/// One batched publish per build (docs/observability.md).
void publish_build_tallies(std::uint64_t states_built) {
  static obs::Counter& builds = obs::counter("phasespace.build.runs");
  static obs::Counter& states = obs::counter("phasespace.build.states");
  builds.add();
  states.add(states_built);
}

/// Serial budgeted build over an arbitrary code-step function. Charges one
/// state + 8 bytes per entry; on a stop, the computed prefix is returned.
FunctionalGraphBuild build_serial(std::uint32_t bits, const CodeStepFn& step,
                                  runtime::RunControl& control,
                                  const char* context) {
  TCA_SPAN("phase_space_build");
  tca::require_explicit_bits(bits, kMaxExplicitBits, context);
  const StateCode count = StateCode{1} << bits;
  FunctionalGraphBuild out;
  runtime::fault::check_alloc(count * sizeof(StateCode));
  if (control.bytes_would_fit(count * sizeof(StateCode))) {
    out.partial_succ.reserve(count);
  }
  for (StateCode s = 0; s < count; ++s) {
    if (control.note_states() != runtime::StopReason::kNone ||
        control.note_bytes(sizeof(StateCode)) != runtime::StopReason::kNone) {
      out.states_built = s;
      out.status = control.status();
      publish_build_tallies(out.states_built);
      return out;
    }
    out.partial_succ.push_back(step(s));
  }
  out.states_built = count;
  out.status = control.status();
  out.graph = FunctionalGraph::from_table(bits, std::move(out.partial_succ));
  out.partial_succ.clear();
  publish_build_tallies(out.states_built);
  return out;
}

}  // namespace

FunctionalGraph::FunctionalGraph(std::uint32_t bits, const CodeStepFn& step)
    : bits_(bits) {
  TCA_SPAN("phase_space_build");
  tca::require_explicit_bits(bits, kMaxExplicitBits, "FunctionalGraph");
  const StateCode count = StateCode{1} << bits;
  runtime::fault::check_alloc(count * sizeof(StateCode));
  succ_.resize(count);
  for (StateCode s = 0; s < count; ++s) succ_[s] = step(s);
  publish_build_tallies(count);
}

FunctionalGraph FunctionalGraph::from_table(std::uint32_t bits,
                                            std::vector<StateCode> succ) {
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "FunctionalGraph::from_table");
  if (succ.size() != (StateCode{1} << bits)) {
    throw tca::InvalidArgumentError(
        "FunctionalGraph::from_table: table has " +
            std::to_string(succ.size()) + " entries, expected 2^" +
            std::to_string(bits),
        tca::ErrorCode::kSizeMismatch);
  }
  FunctionalGraph fg;
  fg.bits_ = bits;
  fg.succ_ = std::move(succ);
  return fg;
}

FunctionalGraph FunctionalGraph::synchronous(const core::Automaton& a) {
  return FunctionalGraph(static_cast<std::uint32_t>(a.size()),
                         synchronous_code_step(a));
}

FunctionalGraph FunctionalGraph::synchronous_parallel(const core::Automaton& a,
                                                      core::ThreadPool& pool) {
  runtime::RunControl unlimited;
  auto build = build_synchronous_parallel(a, pool, unlimited);
  // Unlimited control: the build either completes or throws.
  return std::move(*build.graph);
}

FunctionalGraph FunctionalGraph::sweep(const core::Automaton& a,
                                       std::vector<core::NodeId> order) {
  return FunctionalGraph(static_cast<std::uint32_t>(a.size()),
                         sweep_code_step(a, std::move(order)));
}

FunctionalGraphBuild FunctionalGraph::build_synchronous(
    const core::Automaton& a, runtime::RunControl& control) {
  return build_serial(static_cast<std::uint32_t>(a.size()),
                      synchronous_code_step(a), control,
                      "FunctionalGraph::build_synchronous");
}

FunctionalGraphBuild FunctionalGraph::build_sweep(
    const core::Automaton& a, std::vector<core::NodeId> order,
    runtime::RunControl& control) {
  return build_serial(static_cast<std::uint32_t>(a.size()),
                      sweep_code_step(a, std::move(order)), control,
                      "FunctionalGraph::build_sweep");
}

FunctionalGraphBuild FunctionalGraph::build_synchronous_parallel(
    const core::Automaton& a, core::ThreadPool& pool,
    runtime::RunControl& control) {
  TCA_SPAN("phase_space_build");
  const auto bits = static_cast<std::uint32_t>(a.size());
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "FunctionalGraph::build_synchronous_parallel");
  const StateCode count = StateCode{1} << bits;
  FunctionalGraphBuild out;

  // The parallel builder needs the whole table up front (chunks write into
  // disjoint slices); charge it before allocating.
  if (control.note_bytes(count * sizeof(StateCode)) !=
      runtime::StopReason::kNone) {
    out.status = control.status();
    return out;
  }
  runtime::fault::check_alloc(count * sizeof(StateCode));

  std::vector<StateCode> table(count);
  const std::size_t n = a.size();
  StateCode* data = table.data();
  runtime::RunControl* ctl = &control;
  // Each participant evaluates contiguous state ranges with its own
  // buffers: writes are disjoint, reads are to the shared immutable
  // automaton. The control is polled between chunks by the pool and every
  // 1024 states inside a chunk.
  const auto reason = pool.parallel_for(
      0, table.size(), /*align=*/1024,
      [&a, n, data, ctl](std::size_t begin, std::size_t end) {
        core::Configuration front(n);
        core::Configuration back(n);
        for (std::size_t s = begin; s < end; ++s) {
          if ((s - begin) % 1024 == 0 &&
              ctl->note_states(std::min<std::uint64_t>(1024, end - s)) !=
                  runtime::StopReason::kNone) {
            return;  // abandon the rest of this chunk
          }
          front = core::Configuration::from_bits(s, n);
          core::step_synchronous(a, front, back);
          data[s] = back.to_bits();
        }
      },
      &control);
  out.status = control.status();
  if (reason != runtime::StopReason::kNone || out.status.truncated()) {
    // Truncated parallel builds have holes (chunks are interleaved), so no
    // partial table is exposed — only the visit count.
    out.states_built = out.status.states;
    publish_build_tallies(out.states_built);
    return out;
  }
  out.states_built = count;
  out.graph = from_table(bits, std::move(table));
  publish_build_tallies(out.states_built);
  return out;
}

CodeStepFn synchronous_code_step(const core::Automaton& a) {
  const std::size_t n = a.size();
  return [&a, n](StateCode s) {
    const auto c = core::Configuration::from_bits(s, n);
    return core::step_synchronous(a, c).to_bits();
  };
}

CodeStepFn sweep_code_step(const core::Automaton& a,
                           std::vector<core::NodeId> order) {
  const std::size_t n = a.size();
  return [&a, n, order = std::move(order)](StateCode s) {
    auto c = core::Configuration::from_bits(s, n);
    core::apply_sequence(a, c, order);
    return c.to_bits();
  };
}

}  // namespace tca::phasespace
