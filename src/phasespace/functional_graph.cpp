#include "phasespace/functional_graph.hpp"

#include <algorithm>
#include <utility>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/synchronous_fast.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::phasespace {
namespace {

/// One batched publish per build (docs/observability.md).
void publish_build_tallies(std::uint64_t states_built) {
  static obs::Counter& builds = obs::counter("phasespace.build.runs");
  static obs::Counter& states = obs::counter("phasespace.build.states");
  builds.add();
  states.add(states_built);
}

/// Counter + structured event for every batch-engine decline
/// (docs/performance.md): silent de-optimization must show up in run
/// manifests.
void publish_batch_fallback(const core::Automaton& a, const char* reason,
                            const char* context) {
  static obs::Counter& fallbacks = obs::counter("engine.batch.fallback");
  fallbacks.add();
  obs::log_event(
      obs::LogLevel::kWarn, "engine.batch.fallback",
      {{"context", context},
       {"reason", reason != nullptr ? reason : "unknown"},
       {"rule", a.homogeneous() ? rules::describe(a.rule(0)) : "per-node"},
       {"cells", static_cast<std::uint64_t>(a.size())}});
}

/// The number of additional successor-table entries the control's budget
/// still admits (for reserving exactly the prefix a truncated build can
/// produce).
StateCode budget_capped_entries(const runtime::RunControl& control,
                                StateCode count) {
  const auto& budget = control.budget();
  const auto status = control.status();
  StateCode cap = count;
  if (budget.max_states != runtime::RunBudget::kUnlimited) {
    const std::uint64_t left =
        budget.max_states > status.states ? budget.max_states - status.states
                                          : 0;
    cap = std::min<StateCode>(cap, left);
  }
  if (budget.max_bytes != runtime::RunBudget::kUnlimited) {
    const std::uint64_t left =
        budget.max_bytes > status.bytes ? budget.max_bytes - status.bytes : 0;
    cap = std::min<StateCode>(cap, left / sizeof(StateCode));
  }
  return cap;
}

/// Serial budgeted build over an arbitrary code-step function. Charges one
/// state + 8 bytes per entry; on a stop, the computed prefix is returned.
FunctionalGraphBuild build_serial(std::uint32_t bits, const CodeStepFn& step,
                                  runtime::RunControl& control,
                                  const char* context) {
  TCA_SPAN("phase_space_build");
  tca::require_explicit_bits(bits, kMaxExplicitBits, context);
  const StateCode count = StateCode{1} << bits;
  FunctionalGraphBuild out;
  // Reserve only what the budget admits: a truncated build then fills its
  // prefix without doubling reallocations, and never pre-commits memory
  // the byte budget would refuse.
  const StateCode reserve = budget_capped_entries(control, count);
  runtime::fault::check_alloc(reserve * sizeof(StateCode));
  out.partial_succ.reserve(reserve);
  for (StateCode s = 0; s < count; ++s) {
    if (control.note_states() != runtime::StopReason::kNone ||
        control.note_bytes(sizeof(StateCode)) != runtime::StopReason::kNone) {
      out.states_built = s;
      out.status = control.status();
      publish_build_tallies(out.states_built);
      return out;
    }
    out.partial_succ.push_back(step(s));
  }
  out.states_built = count;
  out.status = control.status();
  out.graph = FunctionalGraph::from_table(bits, std::move(out.partial_succ));
  out.partial_succ.clear();
  publish_build_tallies(out.states_built);
  return out;
}

}  // namespace

FunctionalGraph::FunctionalGraph(std::uint32_t bits, const CodeStepFn& step)
    : bits_(bits) {
  TCA_SPAN("phase_space_build");
  tca::require_explicit_bits(bits, kMaxExplicitBits, "FunctionalGraph");
  const StateCode count = StateCode{1} << bits;
  runtime::fault::check_alloc(count * sizeof(StateCode));
  std::vector<StateCode> succ(count);
  for (StateCode s = 0; s < count; ++s) succ[s] = step(s);
  store_ = std::make_shared<FlatStore>(bits, std::move(succ));
  flat_ = store_->flat_table()->data();
  publish_build_tallies(count);
}

FunctionalGraph FunctionalGraph::from_table(std::uint32_t bits,
                                            std::vector<StateCode> succ) {
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "FunctionalGraph::from_table");
  if (succ.size() != (StateCode{1} << bits)) {
    throw tca::InvalidArgumentError(
        "FunctionalGraph::from_table: table has " +
            std::to_string(succ.size()) + " entries, expected 2^" +
            std::to_string(bits),
        tca::ErrorCode::kSizeMismatch);
  }
  FunctionalGraph fg;
  fg.bits_ = bits;
  fg.store_ = std::make_shared<FlatStore>(bits, std::move(succ));
  fg.flat_ = fg.store_->flat_table()->data();
  return fg;
}

FunctionalGraph FunctionalGraph::from_store(
    std::shared_ptr<SuccessorStore> store) {
  if (store == nullptr) {
    throw tca::InvalidArgumentError("FunctionalGraph::from_store: null store");
  }
  const std::uint32_t bits = store->bits();
  tca::require_explicit_bits(bits, max_explicit_bits(store->kind()),
                             "FunctionalGraph::from_store");
  if (store->num_entries() != (StateCode{1} << bits)) {
    throw tca::InvalidArgumentError(
        "FunctionalGraph::from_store: store holds " +
            std::to_string(store->num_entries()) + " entries, expected 2^" +
            std::to_string(bits),
        tca::ErrorCode::kSizeMismatch);
  }
  FunctionalGraph fg;
  fg.bits_ = bits;
  fg.store_ = std::move(store);
  if (const std::vector<StateCode>* t = fg.store_->flat_table()) {
    fg.flat_ = t->data();
  }
  return fg;
}

const std::vector<StateCode>& FunctionalGraph::successors() const {
  const std::vector<StateCode>* t = store_->flat_table();
  if (t == nullptr) {
    throw tca::StateError(
        std::string("FunctionalGraph::successors: the ") +
            store_kind_name(store_->kind()) +
            " backend has no flat table; iterate via "
            "store().for_each_range() instead",
        tca::ErrorCode::kInvalidState);
  }
  return *t;
}

FunctionalGraph FunctionalGraph::synchronous(const core::Automaton& a) {
  TCA_SPAN("phase_space_build");
  const auto bits = static_cast<std::uint32_t>(a.size());
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "FunctionalGraph::synchronous");
  const StateCode count = StateCode{1} << bits;
  runtime::fault::check_alloc(count * sizeof(StateCode));
  BatchCodeStepper stepper(a);
  note_batch_fallback(stepper, a, "FunctionalGraph::synchronous");
  std::vector<StateCode> table(count);
  stepper.step_range(0, count, table.data());
  publish_build_tallies(count);
  return from_table(bits, std::move(table));
}

FunctionalGraph FunctionalGraph::synchronous_parallel(const core::Automaton& a,
                                                      core::ThreadPool& pool) {
  runtime::RunControl unlimited;
  auto build = build_synchronous_parallel(a, pool, unlimited);
  // Unlimited control: the build either completes or throws.
  return std::move(*build.graph);
}

FunctionalGraph FunctionalGraph::sweep(const core::Automaton& a,
                                       std::vector<core::NodeId> order) {
  TCA_SPAN("phase_space_build");
  const auto bits = static_cast<std::uint32_t>(a.size());
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "FunctionalGraph::sweep");
  const StateCode count = StateCode{1} << bits;
  runtime::fault::check_alloc(count * sizeof(StateCode));
  BatchCodeStepper stepper(a, std::move(order));
  note_batch_fallback(stepper, a, "FunctionalGraph::sweep");
  std::vector<StateCode> table(count);
  stepper.step_range(0, count, table.data());
  publish_build_tallies(count);
  return from_table(bits, std::move(table));
}

FunctionalGraphBuild FunctionalGraph::build_synchronous(
    const core::Automaton& a, runtime::RunControl& control) {
  return build_serial(static_cast<std::uint32_t>(a.size()),
                      synchronous_code_step(a), control,
                      "FunctionalGraph::build_synchronous");
}

FunctionalGraphBuild FunctionalGraph::build_sweep(
    const core::Automaton& a, std::vector<core::NodeId> order,
    runtime::RunControl& control) {
  return build_serial(static_cast<std::uint32_t>(a.size()),
                      sweep_code_step(a, std::move(order)), control,
                      "FunctionalGraph::build_sweep");
}

FunctionalGraphBuild FunctionalGraph::build_synchronous_parallel(
    const core::Automaton& a, core::ThreadPool& pool,
    runtime::RunControl& control) {
  TCA_SPAN("phase_space_build");
  const auto bits = static_cast<std::uint32_t>(a.size());
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "FunctionalGraph::build_synchronous_parallel");
  const StateCode count = StateCode{1} << bits;
  FunctionalGraphBuild out;

  // The parallel builder needs the whole table up front (chunks write into
  // disjoint slices); charge it before allocating.
  if (control.note_bytes(count * sizeof(StateCode)) !=
      runtime::StopReason::kNone) {
    out.status = control.status();
    return out;
  }
  runtime::fault::check_alloc(count * sizeof(StateCode));

  std::vector<StateCode> table(count);
  StateCode* data = table.data();
  runtime::RunControl* ctl = &control;
  // The batch decision is made once per build; workers then carry their
  // own stepper (plans + slices + fallback buffers are per-thread state).
  const auto support = core::batch_support(a);
  if (!support.ok) {
    publish_batch_fallback(a, support.reason,
                           "FunctionalGraph::build_synchronous_parallel");
  }
  // Each participant evaluates contiguous state ranges with its own
  // buffers: writes are disjoint, reads are to the shared immutable
  // automaton. The control is polled between chunks by the pool and every
  // 1024 states inside a chunk; each 1024-state block is 16 batch steps.
  //
  // Thread-safety discipline (docs/static-analysis.md): this builder owns
  // no lockable state, so there is nothing here for TCA_GUARDED_BY. The
  // invariants it relies on live elsewhere and ARE annotation-checked:
  // chunk handout and the join barrier in core::ThreadPool (its dispatch
  // state is TCA_GUARDED_BY its mutex), and cooperative stop via
  // RunControl's atomics. `data` stays race-free because parallel_for
  // hands out non-overlapping [begin, end) ranges — the chunk cursor
  // enforcing that is the pool's, not ours.
  const auto reason = pool.parallel_for(
      0, table.size(), /*align=*/1024,
      [&a, data, ctl](std::size_t begin, std::size_t end) {
        BatchCodeStepper stepper(a);
        for (std::size_t s = begin; s < end;) {
          const auto block = std::min<std::size_t>(1024, end - s);
          if (ctl->note_states(block) != runtime::StopReason::kNone) {
            return;  // abandon the rest of this chunk
          }
          stepper.step_range(s, block, data + s);
          s += block;
        }
      },
      &control);
  out.status = control.status();
  if (reason != runtime::StopReason::kNone || out.status.truncated()) {
    // Truncated parallel builds have holes (chunks are interleaved), so no
    // partial table is exposed — only the visit count.
    out.states_built = out.status.states;
    publish_build_tallies(out.states_built);
    return out;
  }
  out.states_built = count;
  out.graph = from_table(bits, std::move(table));
  publish_build_tallies(out.states_built);
  return out;
}

BatchCodeStepper::BatchCodeStepper(const core::Automaton& a)
    : a_(&a), sweep_mode_(false), front_(a.size()), back_(a.size()) {
  const auto support = core::batch_support(a);
  if (support.ok) {
    stepper_ = core::make_wide_stepper(a);
  } else {
    reason_ = support.reason;
  }
}

BatchCodeStepper::BatchCodeStepper(const core::Automaton& a,
                                   std::vector<core::NodeId> order)
    : a_(&a),
      order_(std::move(order)),
      sweep_mode_(true),
      front_(a.size()),
      back_(a.size()) {
  const auto support = core::batch_support(a);
  if (support.ok) {
    stepper_ = core::make_wide_stepper(a);
  } else {
    reason_ = support.reason;
  }
}

BatchCodeStepper::BatchCodeStepper(const core::Automaton& a,
                                   core::BatchIsa isa)
    : a_(&a), sweep_mode_(false), front_(a.size()), back_(a.size()) {
  const auto support = core::batch_support(a);
  if (support.ok) {
    stepper_ = core::make_wide_stepper(a, isa);
  } else {
    reason_ = support.reason;
  }
}

BatchCodeStepper::BatchCodeStepper(const core::Automaton& a,
                                   std::vector<core::NodeId> order,
                                   core::BatchIsa isa)
    : a_(&a),
      order_(std::move(order)),
      sweep_mode_(true),
      front_(a.size()),
      back_(a.size()) {
  const auto support = core::batch_support(a);
  if (support.ok) {
    stepper_ = core::make_wide_stepper(a, isa);
  } else {
    reason_ = support.reason;
  }
}

BatchCodeStepper::BatchCodeStepper(const core::Automaton& a,
                                   runtime::EngineRung rung)
    : a_(&a),
      sweep_mode_(false),
      rung_(rung),
      front_(a.size()),
      back_(a.size()) {
  switch (rung) {
    case runtime::EngineRung::kWideSimd: {
      const auto support = core::batch_support(a);
      if (support.ok) {
        stepper_ = core::make_wide_stepper(a);
      } else {
        reason_ = support.reason;
      }
      break;
    }
    case runtime::EngineRung::kBatch64: {
      const auto support = core::batch_support(a);
      if (support.ok) {
        // The 64-lane bit-slice tier is compiled unconditionally, so
        // forcing kScalar never throws for a supported automaton.
        stepper_ = core::make_wide_stepper(a, core::BatchIsa::kScalar);
      } else {
        reason_ = support.reason;
      }
      break;
    }
    case runtime::EngineRung::kPacked:
      fast_scalar_ = true;
      break;
    case runtime::EngineRung::kScalar:
      break;
  }
}

void BatchCodeStepper::step_range(StateCode first, std::size_t count,
                                  StateCode* succ) {
  const std::size_t n = a_->size();
  if (stepper_ != nullptr) {
    // The whole load/step/store pipeline runs inside the tier's
    // translation unit, so the transposes vectorize with the kernels.
    if (sweep_mode_) {
      stepper_->sweep_code_range(first, count, order_, succ);
    } else {
      stepper_->step_code_range(first, count, succ);
    }
    return;
  }
  // Scalar fallback: identical to the per-code adapters below. The
  // kPacked rung takes the monomorphized kernel; results are bit-for-bit
  // the same either way.
  for (std::size_t j = 0; j < count; ++j) {
    front_ = core::Configuration::from_bits(first + j, n);
    if (sweep_mode_) {
      core::apply_sequence(*a_, front_, order_);
      succ[j] = front_.to_bits();
    } else if (fast_scalar_) {
      core::step_synchronous_fast(*a_, front_, back_);
      succ[j] = back_.to_bits();
    } else {
      core::step_synchronous(*a_, front_, back_);
      succ[j] = back_.to_bits();
    }
  }
}

void note_batch_fallback(const BatchCodeStepper& stepper,
                         const core::Automaton& a, const char* context) {
  if (stepper.batched()) return;
  publish_batch_fallback(a, stepper.fallback_reason(), context);
}

void batch_code_step(const core::Automaton& a, StateCode first,
                     std::size_t count, StateCode* succ) {
  BatchCodeStepper stepper(a);
  note_batch_fallback(stepper, a, "batch_code_step");
  stepper.step_range(first, count, succ);
}

CodeStepFn synchronous_code_step(const core::Automaton& a) {
  const std::size_t n = a.size();
  return [&a, n](StateCode s) {
    const auto c = core::Configuration::from_bits(s, n);
    return core::step_synchronous(a, c).to_bits();
  };
}

CodeStepFn sweep_code_step(const core::Automaton& a,
                           std::vector<core::NodeId> order) {
  const std::size_t n = a.size();
  return [&a, n, order = std::move(order)](StateCode s) {
    auto c = core::Configuration::from_bits(s, n);
    core::apply_sequence(a, c, order);
    return c.to_bits();
  };
}

}  // namespace tca::phasespace
