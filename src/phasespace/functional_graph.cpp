#include "phasespace/functional_graph.hpp"

#include <stdexcept>
#include <utility>

#include "core/sequential.hpp"
#include "core/synchronous.hpp"

namespace tca::phasespace {

FunctionalGraph::FunctionalGraph(std::uint32_t bits, const CodeStepFn& step)
    : bits_(bits) {
  if (bits > kMaxExplicitBits) {
    throw std::invalid_argument("FunctionalGraph: too many cells for explicit "
                                "enumeration (max 26)");
  }
  const StateCode count = StateCode{1} << bits;
  succ_.resize(count);
  for (StateCode s = 0; s < count; ++s) succ_[s] = step(s);
}

FunctionalGraph FunctionalGraph::synchronous(const core::Automaton& a) {
  return FunctionalGraph(static_cast<std::uint32_t>(a.size()),
                         synchronous_code_step(a));
}

FunctionalGraph FunctionalGraph::synchronous_parallel(const core::Automaton& a,
                                                      core::ThreadPool& pool) {
  const auto bits = static_cast<std::uint32_t>(a.size());
  if (bits > kMaxExplicitBits) {
    throw std::invalid_argument("FunctionalGraph: too many cells for explicit "
                                "enumeration (max 26)");
  }
  FunctionalGraph fg;
  fg.bits_ = bits;
  fg.succ_.resize(StateCode{1} << bits);
  const std::size_t n = a.size();
  StateCode* out = fg.succ_.data();
  // Each worker evaluates a contiguous state range with its own buffers:
  // writes are disjoint, reads are to the shared immutable automaton.
  pool.parallel_for(0, fg.succ_.size(), /*align=*/1024,
                    [&a, n, out](std::size_t begin, std::size_t end) {
                      core::Configuration front(n);
                      core::Configuration back(n);
                      for (std::size_t s = begin; s < end; ++s) {
                        front = core::Configuration::from_bits(s, n);
                        core::step_synchronous(a, front, back);
                        out[s] = back.to_bits();
                      }
                    });
  return fg;
}

FunctionalGraph FunctionalGraph::sweep(const core::Automaton& a,
                                       std::vector<core::NodeId> order) {
  return FunctionalGraph(static_cast<std::uint32_t>(a.size()),
                         sweep_code_step(a, std::move(order)));
}

CodeStepFn synchronous_code_step(const core::Automaton& a) {
  const std::size_t n = a.size();
  return [&a, n](StateCode s) {
    const auto c = core::Configuration::from_bits(s, n);
    return core::step_synchronous(a, c).to_bits();
  };
}

CodeStepFn sweep_code_step(const core::Automaton& a,
                           std::vector<core::NodeId> order) {
  const std::size_t n = a.size();
  return [&a, n, order = std::move(order)](StateCode s) {
    auto c = core::Configuration::from_bits(s, n);
    core::apply_sequence(a, c, order);
    return c.to_bits();
  };
}

}  // namespace tca::phasespace
