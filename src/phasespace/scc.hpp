#pragma once
// Strongly connected components for implicit digraphs (DESIGN.md S4).
//
// Iterative Tarjan over a digraph given as (num_states, out_degree,
// edge(state, index)) callbacks, so both ChoiceDigraph and ad-hoc
// transition systems (the ACA explorer) can reuse it without materializing
// an edge list.

#include <cstdint>
#include <functional>
#include <vector>

namespace tca::phasespace {

/// Result of an SCC decomposition.
struct SccResult {
  std::vector<std::uint32_t> component;  ///< per state, ids in reverse
                                         ///< topological order of the DAG
  std::uint64_t num_components = 0;
  std::vector<std::uint64_t> component_size;  ///< per component id
};

/// Iterative Tarjan. `out_degree(s)` and `edge(s, i)` describe the digraph;
/// states are [0, num_states).
[[nodiscard]] SccResult strongly_connected_components(
    std::uint64_t num_states,
    const std::function<std::uint32_t(std::uint64_t)>& out_degree,
    const std::function<std::uint64_t(std::uint64_t, std::uint32_t)>& edge);

}  // namespace tca::phasespace
