#pragma once
// Preimage counting / enumeration for 1-D ring CA via de Bruijn transfer
// matrices (DESIGN.md S4 extension; the Garden-of-Eden machinery of the
// SDS references [2-6]).
//
// Explicit phase spaces answer "how many predecessors does y have?" only
// up to ~2^26 states. For 1-D rings the question factorizes: a preimage x
// of y is a closed walk in the de Bruijn graph of 2r-cell windows, where
// the step from window (x_{i-r} ... x_{i+r-1}) to (x_{i-r+1} ... x_{i+r})
// is allowed iff the rule maps the full (2r+1)-cell neighborhood to y_i.
// Hence
//     #preimages(y) = trace( M_{y_0} M_{y_1} ... M_{y_{n-1}} ),
// with two 2^{2r} x 2^{2r} 0/1 transfer matrices M_0, M_1 — O(n) matrix
// products instead of O(2^n) search. Gardens of Eden (Definition-3
// unreachable states) are exactly the y with zero trace.
//
// Counts can exceed 2^64 on huge rings; arithmetic saturates at
// `kSaturated` and `count()` reports saturation by returning it.

#include <cstdint>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "phasespace/successor_store.hpp"
#include "rules/rule.hpp"
#include "runtime/budget.hpp"
#include "runtime/supervisor.hpp"

namespace tca::phasespace {

/// Saturation sentinel for preimage counts.
inline constexpr std::uint64_t kSaturated = ~std::uint64_t{0};

/// Transfer-matrix preimage solver for radius-r ring CA (left-to-right
/// neighborhoods, matching core::Automaton::line with Boundary::kRing).
/// Supports radius <= 3 (window alphabet up to 64 states).
class RingPreimageSolver {
 public:
  /// `rule` is evaluated over the full (2r+1)-cell window; for memoryless
  /// automata the middle cell is dropped before evaluation, exactly like
  /// Automaton::line(..., Memory::kWithout).
  RingPreimageSolver(const rules::Rule& rule, std::uint32_t radius,
                     core::Memory memory);

  [[nodiscard]] std::uint32_t radius() const noexcept { return radius_; }

  /// Number of configurations x with F(x) == target on the ring of
  /// target.size() cells (requires size >= 2*radius+1). Returns kSaturated
  /// if the count does not fit in 64 bits.
  [[nodiscard]] std::uint64_t count(const core::Configuration& target) const;

  /// True iff `target` has no predecessor under the parallel map.
  [[nodiscard]] bool is_garden_of_eden(const core::Configuration& target) const {
    return count(target) == 0;
  }

  /// Up to `limit` explicit preimages of `target` (DFS over de Bruijn
  /// closed walks with reachability pruning).
  [[nodiscard]] std::vector<core::Configuration> enumerate(
      const core::Configuration& target, std::size_t limit) const;

  /// The rule's output on a full window (bits MSB-first, spatially
  /// left-to-right). Exposed for tests.
  [[nodiscard]] rules::State window_output(std::uint32_t window) const {
    return table_[window];
  }

 private:
  friend std::uint64_t count_fixed_points_ring(const RingPreimageSolver&,
                                               std::size_t);
  friend std::uint64_t count_period_two_states_ring(const RingPreimageSolver&,
                                                    std::size_t);
  [[nodiscard]] std::uint64_t count_fixed_points_impl(std::size_t n) const;
  [[nodiscard]] std::uint64_t count_period_two_impl(std::size_t n) const;

  std::uint32_t radius_;
  std::uint32_t window_bits_;   // 2r
  std::uint32_t window_count_;  // 2^{2r}
  std::vector<rules::State> table_;  // 2^{2r+1} full-window outputs
};

/// Convenience: count Gardens of Eden among ALL 2^n configurations of an
/// n-cell ring by transfer-matrix counting per target (n <= 24 or so;
/// cost O(2^n * n * W^2) with W = 2^{2r} because the product against the
/// all-ones seed replaces full matrix chains).
[[nodiscard]] std::uint64_t count_gardens_of_eden_ring(
    const RingPreimageSolver& solver, std::size_t n);

/// Partial Garden-of-Eden census under a budget: `gardens` counts GoE
/// states among the first `scanned` of the 2^n targets (scan order is
/// ascending state code), with truncation reported instead of running the
/// full exponential scan.
struct GoeCensus {
  std::uint64_t gardens = 0;
  std::uint64_t scanned = 0;
  bool truncated = false;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
};

/// Budgeted census: charges one state per target scanned and stops cleanly
/// when `control` trips (deadline, state budget, cancellation).
[[nodiscard]] GoeCensus count_gardens_of_eden_ring(
    const RingPreimageSolver& solver, std::size_t n,
    runtime::RunControl& control);

/// Explicit Garden-of-Eden census over ALL 2^n configurations of an
/// arbitrary automaton (any topology, n <= 26): streams the full image of
/// the synchronous map through the bit-sliced batch engine
/// (phasespace::BatchCodeStepper) into a reached-states bitmap; gardens
/// are the unreached codes. Complements the transfer-matrix census above:
/// that one is per-target and ring-only, this one is whole-space and
/// topology-agnostic — the two must agree on rings (tested).
///
/// Budgeted variant: charges the bitmap bytes up front and one state per
/// source code in 1024-blocks. A truncated scan has seen only part of the
/// image, so no garden count can be claimed: `gardens` stays 0 and
/// `truncated` is set (scanned still reports progress).
[[nodiscard]] GoeCensus count_gardens_of_eden_explicit(
    const core::Automaton& a, runtime::RunControl& control);

/// Degradation-ladder variant: the image is streamed at exactly `rung`
/// (runtime::EngineRung; see BatchCodeStepper's rung constructor). All
/// rungs produce identical censuses; the Supervisor retries a
/// memory-pressured census one rung down (phasespace/supervised.hpp).
[[nodiscard]] GoeCensus count_gardens_of_eden_explicit(
    const core::Automaton& a, runtime::RunControl& control,
    runtime::EngineRung rung);

/// Unbudgeted convenience: either completes or throws.
[[nodiscard]] std::uint64_t count_gardens_of_eden_explicit(
    const core::Automaton& a);

/// Store-generic census over an ALREADY-BUILT successor table: streams
/// any SuccessorStore backend (flat / packed / disk) into a
/// reached-states bitmap in bounded blocks — the disk backend serves the
/// scan with pread, so an n=28-32 census runs in bitmap + block memory
/// (1 bit/state + O(4096) staging), never materializing the table in
/// RAM. Identical gardens/scanned semantics to the explicit census
/// above; the store must be complete and finalized.
[[nodiscard]] GoeCensus count_gardens_of_eden(const SuccessorStore& store,
                                              runtime::RunControl& control);

/// Number of FIXED POINTS of the parallel map on an n-cell ring, by the
/// same transfer-matrix trick with the constraint "rule output == the
/// window's middle cell" — O(n) matrix products, so exact counts for
/// rings of thousands of cells (saturates past 2^64 - 1). Requires
/// n >= 2*radius + 1.
[[nodiscard]] std::uint64_t count_fixed_points_ring(
    const RingPreimageSolver& solver, std::size_t n);

/// Number of states x with F(F(x)) == x (period dividing 2: fixed points
/// PLUS proper two-cycle states), by a PAIRED transfer matrix over
/// (x-window, y-window) states with the mutual constraints F(x)_i = y_i
/// and F(y)_i = x_i. Subtracting count_fixed_points_ring gives the exact
/// number of proper two-cycle states on arbitrarily large rings — the
/// quantitative engine behind the paper's "very few cycles" remark.
/// Requires radius <= 2 (paired alphabet 4^{2r}).
[[nodiscard]] std::uint64_t count_period_two_states_ring(
    const RingPreimageSolver& solver, std::size_t n);

}  // namespace tca::phasespace
