#include "phasespace/scc.hpp"

#include <limits>

namespace tca::phasespace {

SccResult strongly_connected_components(
    std::uint64_t num_states,
    const std::function<std::uint32_t(std::uint64_t)>& out_degree,
    const std::function<std::uint64_t(std::uint64_t, std::uint32_t)>& edge) {
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  SccResult result;
  result.component.assign(num_states, kUnset);

  std::vector<std::uint32_t> index(num_states, kUnset);
  std::vector<std::uint32_t> lowlink(num_states, 0);
  std::vector<std::uint8_t> on_stack(num_states, 0);
  std::vector<std::uint64_t> tarjan_stack;
  std::uint32_t next_index = 0;

  // Explicit DFS frames: (state, next out-edge to explore).
  struct Frame {
    std::uint64_t state;
    std::uint32_t next_edge;
  };
  std::vector<Frame> dfs;

  for (std::uint64_t root = 0; root < num_states; ++root) {
    if (index[root] != kUnset) continue;
    dfs.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    tarjan_stack.push_back(root);
    on_stack[root] = 1;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const std::uint64_t s = frame.state;
      if (frame.next_edge < out_degree(s)) {
        const std::uint64_t t = edge(s, frame.next_edge++);
        if (index[t] == kUnset) {
          index[t] = lowlink[t] = next_index++;
          tarjan_stack.push_back(t);
          on_stack[t] = 1;
          dfs.push_back(Frame{t, 0});
        } else if (on_stack[t] && index[t] < lowlink[s]) {
          lowlink[s] = index[t];
        }
      } else {
        if (lowlink[s] == index[s]) {
          const auto comp = static_cast<std::uint32_t>(result.num_components++);
          std::uint64_t size = 0;
          for (;;) {
            const std::uint64_t w = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[w] = 0;
            result.component[w] = comp;
            ++size;
            if (w == s) break;
          }
          result.component_size.push_back(size);
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          const std::uint64_t parent = dfs.back().state;
          if (lowlink[s] < lowlink[parent]) lowlink[parent] = lowlink[s];
        }
      }
    }
  }
  return result;
}

}  // namespace tca::phasespace
