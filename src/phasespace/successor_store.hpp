#pragma once
// Pluggable successor storage for explicit phase spaces
// (docs/performance.md "successor storage hierarchy").
//
// A FunctionalGraph used to BE a flat std::vector<StateCode>: 8 bytes per
// state, 512 MiB at the n=26 cap, and nothing past that. This header
// splits "what the successor of state s is" from "where that byte lives"
// so the same builders, classifiers and censuses run against three
// backends:
//
//   kFlat    the original vector — fastest random access, 64 bits/state.
//   kPacked  succinct in-RAM array storing each successor in exactly n
//            bits (a successor of an n-cell automaton IS an n-bit code),
//            a 64/n compression that raises the in-RAM cap to n=29.
//   kDisk    n-bit-packed extents spilled to a data file through the
//            checkpoint framing's FNV-1a digests, with a CheckpointStore
//            manifest for crash-safe resume; sequential read-back streams
//            via pread in bounded RAM and random access lazily mmaps, so
//            n=30-32 builds and the Garden-of-Eden census fit.
//
// Write protocol: builders produce disjoint [first, first + count) ranges
// of 64-bit successor codes and put_range() them into the store.
// Concurrent put_range calls on DISJOINT ranges are safe on every
// backend; the packed backend CAS-merges the (at most two) words a range
// boundary straddles, and ranges aligned to kPutAlign entries never share
// a word at all (kPutAlign * n bits is a whole number of words for every
// n). The disk backend requires that alignment — see DiskStore.
//
// Read protocol: get(s) is random access; for_each_range streams the
// whole table front to back in bounded blocks and is the iteration
// surface classification and censuses use so they work on all backends.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tca::phasespace {

/// Encoded global configuration (bit i = cell i). Lives here so the
/// storage layer is below functional_graph.hpp; re-exported there.
using StateCode = std::uint64_t;

/// Which successor-storage backend a store (or a build request) uses.
enum class StoreKind : std::uint8_t {
  kFlat,    ///< std::vector<StateCode>, 64 bits/state
  kPacked,  ///< succinct in-RAM array, n bits/state
  kDisk,    ///< n-bit-packed extents on disk, digest-verified
};

/// Stable lowercase name ("flat", "packed", "disk") for logs/manifests.
[[nodiscard]] const char* store_kind_name(StoreKind kind) noexcept;

/// Per-backend explicit-enumeration cap (the generalization of the old
/// kMaxExplicitBits): flat tables stop at n=26 (2^26 states x 8 bytes =
/// 512 MiB), packed tables at n=29 (29 bits/state ~ 1.8 GiB vs the 4 GiB
/// a flat table would need), disk extents at n=32 (32 bits/state = 16 GiB
/// on disk, streamed back in bounded RAM).
[[nodiscard]] constexpr std::uint32_t max_explicit_bits(
    StoreKind kind) noexcept {
  switch (kind) {
    case StoreKind::kFlat: return 26;
    case StoreKind::kPacked: return 29;
    case StoreKind::kDisk: return 32;
  }
  return 26;
}

/// Ranges whose first entry and length are multiples of this never share
/// a packed word or a disk byte with a neighboring range (512 * n bits is
/// a multiple of 64 for every n), so aligned writers proceed with plain
/// stores and zero contention. Shard sizes should be multiples of this.
inline constexpr StateCode kPutAlign = 512;

/// Abstract successor table of a deterministic map on `bits()`-bit
/// states. Immutable once finalized; all reads are then safe from any
/// thread.
class SuccessorStore {
 public:
  virtual ~SuccessorStore() = default;

  [[nodiscard]] virtual StoreKind kind() const noexcept = 0;
  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }
  /// Total entry capacity. Equal to 2^bits() for stores backing a
  /// FunctionalGraph; unit tests may size a store smaller to probe wide
  /// bit widths without 2^n allocations.
  [[nodiscard]] StateCode num_entries() const noexcept { return entries_; }

  /// Successor of state s (random access). The disk backend lazily mmaps
  /// its data file on first call; prefer for_each_range for full scans.
  [[nodiscard]] virtual StateCode get(StateCode s) const = 0;

  /// Stores src[0 .. count) as the successors of [first, first + count).
  /// Safe to call concurrently on disjoint ranges (see the write
  /// protocol above). Throws tca::StateError on out-of-range writes.
  virtual void put_range(StateCode first, std::size_t count,
                         const StateCode* src) = 0;

  /// Decodes entries [first, first + count) into dst (sequential bulk
  /// read; the disk backend serves this with pread, no mmap growth).
  virtual void read_range(StateCode first, std::size_t count,
                          StateCode* dst) const = 0;

  /// Flushes and seals the store (disk: data fsync + manifest write).
  /// Reads before finalize() see only the caller's own writes reliably;
  /// builders finalize before handing the store to classification.
  virtual void finalize() {}

  /// Bytes of RAM the store itself pins (excludes transient read
  /// buffers). The disk backend reports its mmap window when mapped.
  [[nodiscard]] virtual std::uint64_t resident_bytes() const noexcept = 0;

  /// The flat vector when this store is kFlat, nullptr otherwise (the
  /// zero-copy bridge for FunctionalGraph::successors()).
  [[nodiscard]] virtual const std::vector<StateCode>* flat_table()
      const noexcept {
    return nullptr;
  }

  /// Streams the whole table front to back as bounded blocks:
  /// fn(first, count, block) with block[j] = successor of first + j.
  /// Works identically on every backend; O(block) transient memory.
  void for_each_range(
      const std::function<void(StateCode first, std::size_t count,
                               const StateCode* block)>& fn) const;

 protected:
  SuccessorStore(std::uint32_t bits, StateCode entries)
      : bits_(bits), entries_(entries) {}

  std::uint32_t bits_;
  StateCode entries_;
};

/// The original backend: one flat std::vector<StateCode>.
class FlatStore final : public SuccessorStore {
 public:
  /// Empty store of 2^bits entries (default-initialized to 0).
  explicit FlatStore(std::uint32_t bits);
  /// Wraps an externally built table (size must be 2^bits).
  FlatStore(std::uint32_t bits, std::vector<StateCode> table);

  [[nodiscard]] StoreKind kind() const noexcept override {
    return StoreKind::kFlat;
  }
  [[nodiscard]] StateCode get(StateCode s) const override {
    return table_[s];
  }
  void put_range(StateCode first, std::size_t count,
                 const StateCode* src) override;
  void read_range(StateCode first, std::size_t count,
                  StateCode* dst) const override;
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept override {
    return table_.capacity() * sizeof(StateCode);
  }
  [[nodiscard]] const std::vector<StateCode>* flat_table()
      const noexcept override {
    return &table_;
  }

 private:
  std::vector<StateCode> table_;
};

/// Succinct backend: entry s occupies bits [s*n, (s+1)*n) of a word
/// array. Words fully covered by a put_range are plain-stored; the at
/// most two boundary words a range only partially owns are merged with a
/// compare-exchange loop, so concurrent disjoint writers are exact even
/// when their ranges straddle words. The word array is deliberately NOT
/// zero-initialized (a complete build writes every bit; skipping the
/// up-front memset is measurable at 2^24+ entries).
class PackedStore final : public SuccessorStore {
 public:
  /// `entries` = 0 means 2^bits. Smaller values are for unit tests that
  /// probe wide widths (n=27 round-trips) without the full allocation.
  explicit PackedStore(std::uint32_t bits, StateCode entries = 0);

  [[nodiscard]] StoreKind kind() const noexcept override {
    return StoreKind::kPacked;
  }
  [[nodiscard]] StateCode get(StateCode s) const override;
  void put_range(StateCode first, std::size_t count,
                 const StateCode* src) override;
  void read_range(StateCode first, std::size_t count,
                  StateCode* dst) const override;
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept override {
    return words_count_ * sizeof(std::uint64_t);
  }
  /// Total payload bits (num_entries * bits) — the "store.packed_bits"
  /// ablation counter.
  [[nodiscard]] std::uint64_t packed_bits() const noexcept {
    return static_cast<std::uint64_t>(entries_) * bits_;
  }

 private:
  std::unique_ptr<std::uint64_t[]> words_;
  std::uint64_t words_count_ = 0;
  std::uint64_t value_mask_ = 0;
};

/// Disk-backed streaming backend. Layout under `dir`:
///
///   succ.dat        n-bit-packed entries at their natural bit offsets
///                   (entry s at bits [s*n, (s+1)*n)), written with
///                   pwrite per extent
///   manifest.ckpt   CheckpointStore-rotated manifest listing every
///                   spilled extent as "extent=<first>,<count>,<fnv64>"
///                   over the extent's packed bytes
///
/// put_range requires kPutAlign alignment (first % 512 == 0, and count %
/// 512 == 0 unless the range ends at num_entries) so concurrent extents
/// touch disjoint whole bytes; unaligned writes throw tca::StateError.
/// finalize() fsyncs the data file then writes the manifest — an extent
/// is durable-and-trusted only once a manifest naming it lands.
///
/// resume() (before any put_range) loads the newest valid manifest,
/// re-reads every listed extent and KEEPS only those whose bytes still
/// match their recorded digest — a torn or corrupted spill (SIGKILL
/// mid-pwrite, bit rot) is dropped and simply rebuilt by the caller.
class DiskStore final : public SuccessorStore {
 public:
  /// Opens (creating if needed) the store directory. `entries` as in
  /// PackedStore. Throws tca::CheckpointError(kIo) when the directory or
  /// data file cannot be created.
  DiskStore(std::uint32_t bits, std::string dir, StateCode entries = 0);
  ~DiskStore() override;

  [[nodiscard]] StoreKind kind() const noexcept override {
    return StoreKind::kDisk;
  }
  [[nodiscard]] StateCode get(StateCode s) const override;
  void put_range(StateCode first, std::size_t count,
                 const StateCode* src) override;
  void read_range(StateCode first, std::size_t count,
                  StateCode* dst) const override;
  void finalize() override;
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept override;

  /// One recorded spill: entries [first, first + count).
  struct Extent {
    StateCode first = 0;
    StateCode count = 0;
    std::uint64_t digest = 0;  ///< FNV-1a 64 of the packed bytes
  };

  /// Recovers previously spilled extents (call before any put_range):
  /// loads the newest valid manifest and revalidates every extent
  /// against the data file, dropping mismatches. Returns the surviving
  /// extents, sorted by first (empty when nothing usable is on disk).
  [[nodiscard]] std::vector<Extent> resume();

  /// True once recorded extents cover [0, num_entries) exactly.
  [[nodiscard]] bool complete() const;

  /// Total packed payload bytes spilled by this instance (the
  /// "store.spill_bytes" ablation counter input).
  [[nodiscard]] std::uint64_t spilled_bytes() const noexcept;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  void map_for_reads() const;
  [[nodiscard]] std::uint64_t data_bytes() const noexcept;

  std::string dir_;
  std::string data_path_;
  int fd_ = -1;
  mutable const std::uint8_t* map_ = nullptr;  // lazy, read-only
  mutable std::uint64_t map_bytes_ = 0;
  std::uint64_t value_mask_ = 0;

  // Extent ledger (guarded by mu_ in the .cpp via a pimpl-free mutex).
  struct Ledger;
  std::unique_ptr<Ledger> ledger_;
};

/// Factory: an empty store of 2^bits entries of the requested backend.
/// `disk_dir` is required for kDisk (tca::InvalidArgumentError
/// otherwise) and ignored for the RAM backends. Validates `bits` against
/// max_explicit_bits(kind).
[[nodiscard]] std::shared_ptr<SuccessorStore> make_store(
    StoreKind kind, std::uint32_t bits, const std::string& disk_dir = {});

}  // namespace tca::phasespace
