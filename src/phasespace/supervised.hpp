#pragma once
// Supervised phase-space construction (docs/robustness.md).
//
// These are the engine-stack entry points of the degradation ladder:
// build_synchronous_at_rung evaluates the synchronous phase space at an
// exact EngineRung, and the supervised_* wrappers run a build / GoE
// census under a runtime::Supervisor so that memory pressure or injected
// faults retry one rung down (wide-SIMD -> batch64 -> packed -> scalar)
// instead of failing the workload. Every rung is bit-for-bit identical
// (degradation_ladder_test pins this on the PBT generators), so a
// degraded result IS the result.

#include "phasespace/functional_graph.hpp"
#include "phasespace/preimage.hpp"
#include "runtime/supervisor.hpp"

namespace tca::phasespace {

/// Serial budgeted synchronous build at exactly `rung`. Same contract as
/// FunctionalGraph::build_synchronous (well-formed truncation, prefix in
/// partial_succ), but the successor stream runs on the requested ladder
/// rung instead of the dispatched default.
[[nodiscard]] FunctionalGraphBuild build_synchronous_at_rung(
    const core::Automaton& a, runtime::EngineRung rung,
    runtime::RunControl& control);

/// A supervised phase-space build: the build result of the final attempt
/// plus the full supervision report (attempts, rung walked to, failures).
struct SupervisedBuild {
  FunctionalGraphBuild build;
  runtime::SupervisorReport report;
};

/// Runs build_synchronous_at_rung under a Supervisor starting at
/// options.start_rung. Transient failures (injected faults, bad_alloc)
/// retry per options.retry, walking the ladder down on pressure; the
/// returned build is from the last attempt (empty when report.state ==
/// kFailed).
[[nodiscard]] SupervisedBuild supervised_synchronous(
    const core::Automaton& a, const runtime::SupervisorOptions& options);

/// A supervised explicit Garden-of-Eden census (any topology, n <= 26).
struct SupervisedGoeCensus {
  GoeCensus census;
  runtime::SupervisorReport report;
};

/// Runs count_gardens_of_eden_explicit under a Supervisor, same ladder
/// semantics as supervised_synchronous.
[[nodiscard]] SupervisedGoeCensus supervised_goe_census(
    const core::Automaton& a, const runtime::SupervisorOptions& options);

}  // namespace tca::phasespace
