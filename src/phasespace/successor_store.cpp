#include "phasespace/successor_store.hpp"

// tca-lint: relaxed-ok(packed boundary words are merged with relaxed CAS:
// writers own disjoint bit ranges, the pool/thread join barrier is the
// only publication edge readers rely on, and the CAS loop itself only
// needs atomicity, not ordering — see docs/memory_model.md)

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <utility>

#include "core/contracts.hpp"
#include "core/fnv.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "runtime/ckpt_store.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::phasespace {
namespace {

/// Max entries one for_each_range / read-back block decodes at a time.
constexpr std::size_t kStreamBlock = 4096;

[[nodiscard]] std::uint64_t mask_for(std::uint32_t bits) {
  if (bits == 0 || bits > 63) {
    throw tca::InvalidArgumentError(
        "SuccessorStore: entry width must be in [1, 63] bits, got " +
        std::to_string(bits));
  }
  return (std::uint64_t{1} << bits) - 1;
}

[[nodiscard]] StateCode entries_or_full(std::uint32_t bits,
                                        StateCode entries) {
  return entries == 0 ? (StateCode{1} << bits) : entries;
}

void check_put_range(StateCode first, std::size_t count, StateCode entries,
                     const char* who) {
  if (first > entries || count > entries - first) {
    throw tca::StateError(std::string(who) + ": put_range [" +
                              std::to_string(first) + ", " +
                              std::to_string(first + count) +
                              ") exceeds capacity " + std::to_string(entries),
                          tca::ErrorCode::kOutOfRange);
  }
}

/// Packs count n-bit values into a byte stream starting at bit offset 0
/// (stream bit k lives in byte k>>3 at position k&7 — the little-endian
/// word layout PackedStore uses, so the two backends share one format).
void pack_entries(const StateCode* src, std::size_t count, std::uint32_t n,
                  std::uint64_t mask, std::uint8_t* dst) {
  std::uint64_t acc = 0;
  std::uint32_t accbits = 0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = src[i] & mask;
    acc |= v << accbits;
    accbits += n;
    if (accbits >= 64) {
      for (int b = 0; b < 8; ++b) {
        dst[out++] = static_cast<std::uint8_t>(acc >> (8 * b));
      }
      accbits -= 64;
      acc = accbits != 0 ? v >> (n - accbits) : 0;
    }
  }
  for (; accbits > 0; accbits -= std::min(accbits, 8u)) {
    dst[out++] = static_cast<std::uint8_t>(acc);
    acc >>= 8;
  }
}

/// Unpacks count n-bit values from a byte stream, the first starting at
/// bit offset `bit0` (< 8) within src. src must extend 8 bytes past the
/// last byte actually touched by a value's low bit (callers over-read
/// from a buffer sized for that; n <= 63 and bit0 <= 7 keep every value
/// within one unaligned 64-bit window when n + 7 <= 64, i.e. n <= 57).
void unpack_entries(const std::uint8_t* src, std::size_t count,
                    std::uint32_t n, std::uint64_t mask, StateCode* dst,
                    std::uint32_t bit0) {
  std::uint64_t bit = bit0;
  for (std::size_t i = 0; i < count; ++i, bit += n) {
    const std::size_t byte = static_cast<std::size_t>(bit >> 3);
    const auto sh = static_cast<std::uint32_t>(bit & 7);
    std::uint64_t window = 0;
    for (int b = 7; b >= 0; --b) {
      window = (window << 8) | src[byte + static_cast<std::size_t>(b)];
    }
    dst[i] = (window >> sh) & mask;
  }
}

/// Merges `value` into *word keeping the bits outside own_mask: a plain
/// store when the word is fully owned, a CAS loop when a concurrent
/// writer may own the complement (ranges straddling a word boundary).
TCA_HOT_PATH inline void merge_word(std::uint64_t* word, std::uint64_t value,
                                    std::uint64_t own_mask) {
  std::atomic_ref<std::uint64_t> ref(*word);
  if (own_mask == ~std::uint64_t{0}) {
    ref.store(value, std::memory_order_relaxed);
    return;
  }
  std::uint64_t old = ref.load(std::memory_order_relaxed);
  const std::uint64_t ours = value & own_mask;
  while (!ref.compare_exchange_weak(old, (old & ~own_mask) | ours,
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* store_kind_name(StoreKind kind) noexcept {
  switch (kind) {
    case StoreKind::kFlat: return "flat";
    case StoreKind::kPacked: return "packed";
    case StoreKind::kDisk: return "disk";
  }
  return "flat";
}

void SuccessorStore::for_each_range(
    const std::function<void(StateCode, std::size_t, const StateCode*)>& fn)
    const {
  // The flat backend streams zero-copy; the others decode per block.
  if (const std::vector<StateCode>* flat = flat_table()) {
    for (StateCode s = 0; s < entries_; s += kStreamBlock) {
      const auto count = static_cast<std::size_t>(
          std::min<StateCode>(kStreamBlock, entries_ - s));
      fn(s, count, flat->data() + s);
    }
    return;
  }
  std::vector<StateCode> block(
      std::min<StateCode>(kStreamBlock, std::max<StateCode>(entries_, 1)));
  for (StateCode s = 0; s < entries_; s += kStreamBlock) {
    const auto count = static_cast<std::size_t>(
        std::min<StateCode>(kStreamBlock, entries_ - s));
    read_range(s, count, block.data());
    fn(s, count, block.data());
  }
}

// --- FlatStore ----------------------------------------------------------

FlatStore::FlatStore(std::uint32_t bits)
    : SuccessorStore(bits, StateCode{1} << bits) {
  runtime::fault::check_alloc(entries_ * sizeof(StateCode));
  table_.resize(entries_);
}

FlatStore::FlatStore(std::uint32_t bits, std::vector<StateCode> table)
    : SuccessorStore(bits, StateCode{1} << bits), table_(std::move(table)) {
  if (table_.size() != entries_) {
    throw tca::InvalidArgumentError(
        "FlatStore: table has " + std::to_string(table_.size()) +
            " entries, expected 2^" + std::to_string(bits),
        tca::ErrorCode::kSizeMismatch);
  }
}

TCA_HOT_PATH void FlatStore::put_range(StateCode first, std::size_t count,
                                       const StateCode* src) {
  check_put_range(first, count, entries_, "FlatStore");
  std::memcpy(table_.data() + first, src, count * sizeof(StateCode));
}

void FlatStore::read_range(StateCode first, std::size_t count,
                           StateCode* dst) const {
  std::memcpy(dst, table_.data() + first, count * sizeof(StateCode));
}

// --- PackedStore --------------------------------------------------------

PackedStore::PackedStore(std::uint32_t bits, StateCode entries)
    : SuccessorStore(bits, entries_or_full(bits, entries)),
      value_mask_(mask_for(bits)) {
  const std::uint64_t payload_bits =
      static_cast<std::uint64_t>(entries_) * bits;
  // +1 guard word so the two-word read in get() never runs off the end.
  words_count_ = ((payload_bits + 63) >> 6) + 1;
  runtime::fault::check_alloc(words_count_ * sizeof(std::uint64_t));
  // Default-initialized on purpose: a complete build writes every payload
  // bit, and skipping the up-front memset is measurable at 2^24+ entries.
  words_.reset(new std::uint64_t[words_count_]);
  words_[words_count_ - 1] = 0;  // the guard word IS read before writes
  static obs::Counter& packed_bits = obs::counter("store.packed_bits");
  packed_bits.add(payload_bits);
}

StateCode PackedStore::get(StateCode s) const {
  const std::uint64_t bit = s * bits_;
  const auto w = static_cast<std::size_t>(bit >> 6);
  const auto sh = static_cast<std::uint32_t>(bit & 63);
  std::uint64_t v = words_[w] >> sh;
  if (sh + bits_ > 64) {
    v |= words_[w + 1] << (64 - sh);
  }
  return v & value_mask_;
}

TCA_HOT_PATH void PackedStore::put_range(StateCode first, std::size_t count,
                                         const StateCode* src) {
  check_put_range(first, count, entries_, "PackedStore");
  if (count == 0) return;
  const std::uint32_t n = bits_;
  const std::uint64_t bit = first * n;
  auto w = static_cast<std::size_t>(bit >> 6);
  auto shift = static_cast<std::uint32_t>(bit & 63);
  // own: bits of the current word this range is allowed to write. The
  // first word keeps its low `shift` bits (a neighbor's), every word
  // after that is fully owned until the tail.
  std::uint64_t own = shift != 0
                          ? ~((std::uint64_t{1} << shift) - 1)
                          : ~std::uint64_t{0};
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = src[i] & value_mask_;
    acc |= v << shift;
    shift += n;
    if (shift >= 64) {
      merge_word(&words_[w], acc, own);
      ++w;
      shift -= 64;
      acc = shift != 0 ? v >> (n - shift) : 0;
      own = ~std::uint64_t{0};
    }
  }
  if (shift != 0) {
    // Tail word: own everything below `shift` that the head didn't
    // already exclude (when the whole range fits inside one word, `own`
    // still carries the head exclusion).
    merge_word(&words_[w], acc, own & ((std::uint64_t{1} << shift) - 1));
  }
}

void PackedStore::read_range(StateCode first, std::size_t count,
                             StateCode* dst) const {
  for (std::size_t i = 0; i < count; ++i) dst[i] = get(first + i);
}

// --- DiskStore ----------------------------------------------------------

struct DiskStore::Ledger {
  std::mutex mu;
  std::vector<Extent> extents;
  std::uint64_t spilled_bytes = 0;
  bool finalized = false;
  std::mutex map_mu;  // one-shot lazy mmap
};

namespace {

/// Packed byte extent of entries [first, first + count) at width n.
/// Alignment (first % kPutAlign == 0) makes the start byte-exact.
[[nodiscard]] std::uint64_t extent_byte_offset(StateCode first,
                                               std::uint32_t n) {
  return first * n / 8;
}

[[nodiscard]] std::uint64_t extent_byte_count(StateCode first,
                                              StateCode count,
                                              std::uint32_t n) {
  const std::uint64_t first_bit = first * static_cast<std::uint64_t>(n);
  const std::uint64_t end_bit = (first + count) * static_cast<std::uint64_t>(n);
  return ((end_bit + 7) / 8) - (first_bit / 8);
}

void pwrite_all(int fd, const std::uint8_t* buf, std::uint64_t count,
                std::uint64_t offset, const char* what) {
  while (count > 0) {
    const ssize_t n = ::pwrite(fd, buf, count, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw tca::CheckpointError(
          std::string("DiskStore: ") + what + " failed: " +
              std::strerror(errno),
          tca::ErrorCode::kIo);
    }
    buf += n;
    count -= static_cast<std::uint64_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

[[nodiscard]] bool pread_all(int fd, std::uint8_t* buf, std::uint64_t count,
                             std::uint64_t offset) {
  while (count > 0) {
    const ssize_t n = ::pread(fd, buf, count, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {  // short file: treat the hole as zeros
      std::memset(buf, 0, count);
      return true;
    }
    buf += n;
    count -= static_cast<std::uint64_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return true;
}

constexpr const char* kManifestMagic = "tca-succ-store v1";

}  // namespace

DiskStore::DiskStore(std::uint32_t bits, std::string dir, StateCode entries)
    : SuccessorStore(bits, entries_or_full(bits, entries)),
      dir_(std::move(dir)),
      value_mask_(mask_for(bits)),
      ledger_(new Ledger) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw tca::CheckpointError(
        "DiskStore: cannot create directory " + dir_ + ": " + ec.message(),
        tca::ErrorCode::kIo);
  }
  data_path_ = (fs::path(dir_) / "succ.dat").string();
  // O_CREAT without O_TRUNC: an existing data file is what resume() reads.
  fd_ = ::open(data_path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw tca::CheckpointError(
        "DiskStore: cannot open " + data_path_ + ": " + std::strerror(errno),
        tca::ErrorCode::kIo);
  }
  // Extend (never shrink) to full size so unwritten holes read as zeros
  // and the mmap window is fixed. Sparse, so no up-front disk cost.
  struct stat st {};
  if (::fstat(fd_, &st) == 0 &&
      static_cast<std::uint64_t>(st.st_size) < data_bytes()) {
    if (::ftruncate(fd_, static_cast<off_t>(data_bytes())) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw tca::CheckpointError(
          "DiskStore: cannot size " + data_path_ + ": " + std::strerror(err),
          tca::ErrorCode::kIo);
    }
  }
}

DiskStore::~DiskStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t DiskStore::data_bytes() const noexcept {
  // +8 guard bytes so the unaligned 64-bit window of get()/unpack never
  // runs off the mapping.
  return (static_cast<std::uint64_t>(entries_) * bits_ + 7) / 8 + 8;
}

void DiskStore::map_for_reads() const {
  std::lock_guard<std::mutex> lock(ledger_->map_mu);
  if (map_ != nullptr) return;
  void* p = ::mmap(nullptr, data_bytes(), PROT_READ, MAP_SHARED, fd_, 0);
  if (p == MAP_FAILED) {
    throw tca::CheckpointError(
        "DiskStore: mmap of " + data_path_ + " failed: " +
            std::strerror(errno),
        tca::ErrorCode::kIo);
  }
  map_bytes_ = data_bytes();
  map_ = static_cast<const std::uint8_t*>(p);
}

StateCode DiskStore::get(StateCode s) const {
  if (map_ == nullptr) map_for_reads();
  const std::uint64_t bit = s * bits_;
  const auto byte = static_cast<std::size_t>(bit >> 3);
  const auto sh = static_cast<std::uint32_t>(bit & 7);
  std::uint64_t window = 0;
  for (int b = 7; b >= 0; --b) {
    window = (window << 8) | map_[byte + static_cast<std::size_t>(b)];
  }
  return (window >> sh) & value_mask_;
}

void DiskStore::put_range(StateCode first, std::size_t count,
                          const StateCode* src) {
  check_put_range(first, count, entries_, "DiskStore");
  if (count == 0) return;
  if (first % kPutAlign != 0 ||
      (count % kPutAlign != 0 && first + count != entries_)) {
    throw tca::StateError(
        "DiskStore: put_range [" + std::to_string(first) + ", " +
            std::to_string(first + count) + ") is not kPutAlign(512)-aligned"
            " — concurrent extents must own disjoint whole bytes",
        tca::ErrorCode::kInvalidState);
  }
  {
    std::lock_guard<std::mutex> lock(ledger_->mu);
    if (ledger_->finalized) {
      throw tca::StateError("DiskStore: put_range after finalize()",
                            tca::ErrorCode::kInvalidState);
    }
  }
  const std::uint64_t bytes = extent_byte_count(first, count, bits_);
  std::vector<std::uint8_t> packed(static_cast<std::size_t>(bytes), 0);
  pack_entries(src, count, bits_, value_mask_, packed.data());
  pwrite_all(fd_, packed.data(), bytes, extent_byte_offset(first, bits_),
             "extent pwrite");
  const std::uint64_t digest = core::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(packed.data()),
      static_cast<std::size_t>(bytes)));
  {
    std::lock_guard<std::mutex> lock(ledger_->mu);
    ledger_->extents.push_back(Extent{first, count, digest});
    ledger_->spilled_bytes += bytes;
  }
  static obs::Counter& spill = obs::counter("store.spill_bytes");
  spill.add(bytes);
}

void DiskStore::read_range(StateCode first, std::size_t count,
                           StateCode* dst) const {
  if (count == 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t first_bit = first * static_cast<std::uint64_t>(bits_);
  const std::uint64_t byte0 = first_bit / 8;
  // +8 guard for the unaligned 64-bit decode window.
  const std::uint64_t bytes = extent_byte_count(first, count, bits_) + 8;
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(bytes), 0);
  if (!pread_all(fd_, buf.data(), bytes, byte0)) {
    throw tca::CheckpointError(
        "DiskStore: pread of " + data_path_ + " failed: " +
            std::strerror(errno),
        tca::ErrorCode::kIo);
  }
  unpack_entries(buf.data(), count, bits_, value_mask_, dst,
                 static_cast<std::uint32_t>(first_bit & 7));
  static obs::Counter& readback_us = obs::counter("store.readback_us");
  readback_us.add(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

void DiskStore::finalize() {
  std::vector<Extent> extents;
  {
    std::lock_guard<std::mutex> lock(ledger_->mu);
    ledger_->finalized = true;
    extents = ledger_->extents;
  }
  if (::fsync(fd_) != 0) {
    throw tca::CheckpointError(
        "DiskStore: fsync of " + data_path_ + " failed: " +
            std::strerror(errno),
        tca::ErrorCode::kIo);
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.first < b.first; });
  std::string payload = std::string(kManifestMagic) + "\nbits=" +
                        std::to_string(bits_) + "\nentries=" +
                        std::to_string(entries_) + "\n";
  for (const Extent& e : extents) {
    payload += "extent=" + std::to_string(e.first) + "," +
               std::to_string(e.count) + "," + std::to_string(e.digest) +
               "\n";
  }
  runtime::CheckpointStore manifest(
      (std::filesystem::path(dir_) / "manifest.ckpt").string());
  runtime::Checkpoint ckpt;
  ckpt.payload = std::move(payload);
  manifest.save(ckpt);
}

std::vector<DiskStore::Extent> DiskStore::resume() {
  static obs::Counter& kept_ctr = obs::counter("store.resume.kept");
  static obs::Counter& dropped_ctr = obs::counter("store.resume.dropped");
  runtime::CheckpointStore manifest(
      (std::filesystem::path(dir_) / "manifest.ckpt").string());
  const auto recovery = manifest.load_latest();
  if (!recovery) return {};

  // Parse: magic line, bits=, entries=, then extent= lines.
  std::vector<Extent> listed;
  const std::string& payload = recovery->checkpoint.payload;
  std::size_t pos = 0;
  int line_no = 0;
  bool header_ok = true;
  while (pos < payload.size() && header_ok) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    const std::string_view line(payload.data() + pos, nl - pos);
    ++line_no;
    if (line_no == 1) {
      header_ok = line == kManifestMagic;
    } else if (line_no == 2) {
      header_ok = line == "bits=" + std::to_string(bits_);
    } else if (line_no == 3) {
      header_ok = line == "entries=" + std::to_string(entries_);
    } else if (line.rfind("extent=", 0) == 0) {
      Extent e;
      const std::string_view body = line.substr(7);
      const std::size_t c1 = body.find(',');
      const std::size_t c2 =
          c1 == std::string_view::npos ? c1 : body.find(',', c1 + 1);
      if (c2 == std::string_view::npos) {
        header_ok = false;
        break;
      }
      const auto parse = [](std::string_view s, std::uint64_t& out) {
        out = 0;
        if (s.empty()) return false;
        for (const char c : s) {
          if (c < '0' || c > '9') return false;
          out = out * 10 + static_cast<std::uint64_t>(c - '0');
        }
        return true;
      };
      if (!parse(body.substr(0, c1), e.first) ||
          !parse(body.substr(c1 + 1, c2 - c1 - 1), e.count) ||
          !parse(body.substr(c2 + 1), e.digest) || e.count == 0 ||
          e.first > entries_ || e.count > entries_ - e.first) {
        header_ok = false;
        break;
      }
      listed.push_back(e);
    } else if (!line.empty()) {
      header_ok = false;
    }
    pos = nl + 1;
  }
  if (!header_ok) {
    obs::log_event(obs::LogLevel::kWarn, "store.resume.rejected",
                   {{"dir", dir_}, {"reason", "manifest mismatch"}});
    return {};
  }

  // Revalidate every listed extent against the data file; a torn or
  // corrupted spill fails its digest and is dropped (the caller rebuilds
  // that range).
  std::vector<Extent> kept;
  std::uint64_t dropped = 0;
  for (const Extent& e : listed) {
    const std::uint64_t bytes = extent_byte_count(e.first, e.count, bits_);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(bytes), 0);
    if (!pread_all(fd_, buf.data(), bytes,
                   extent_byte_offset(e.first, bits_))) {
      ++dropped;
      continue;
    }
    const std::uint64_t digest = core::fnv1a64(std::string_view(
        reinterpret_cast<const char*>(buf.data()),
        static_cast<std::size_t>(bytes)));
    if (digest != e.digest) {
      ++dropped;
      continue;
    }
    kept.push_back(e);
  }
  std::sort(kept.begin(), kept.end(),
            [](const Extent& a, const Extent& b) { return a.first < b.first; });
  {
    std::lock_guard<std::mutex> lock(ledger_->mu);
    ledger_->extents = kept;
  }
  kept_ctr.add(kept.size());
  dropped_ctr.add(dropped);
  if (dropped != 0) {
    obs::log_event(obs::LogLevel::kWarn, "store.resume.dropped",
                   {{"dir", dir_},
                    {"kept", static_cast<std::uint64_t>(kept.size())},
                    {"dropped", dropped}});
  }
  return kept;
}

bool DiskStore::complete() const {
  std::vector<Extent> extents;
  {
    std::lock_guard<std::mutex> lock(ledger_->mu);
    extents = ledger_->extents;
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.first < b.first; });
  StateCode covered = 0;
  for (const Extent& e : extents) {
    if (e.first != covered) return false;
    covered += e.count;
  }
  return covered == entries_;
}

std::uint64_t DiskStore::spilled_bytes() const noexcept {
  std::lock_guard<std::mutex> lock(ledger_->mu);
  return ledger_->spilled_bytes;
}

std::uint64_t DiskStore::resident_bytes() const noexcept {
  // The mmap window is an upper bound (pages fault in on demand); the
  // pread streaming path pins nothing here.
  return map_ != nullptr ? map_bytes_ : 0;
}

// --- factory ------------------------------------------------------------

std::shared_ptr<SuccessorStore> make_store(StoreKind kind, std::uint32_t bits,
                                           const std::string& disk_dir) {
  tca::require_explicit_bits(bits, max_explicit_bits(kind), "make_store");
  switch (kind) {
    case StoreKind::kFlat:
      return std::make_shared<FlatStore>(bits);
    case StoreKind::kPacked:
      return std::make_shared<PackedStore>(bits);
    case StoreKind::kDisk:
      if (disk_dir.empty()) {
        throw tca::InvalidArgumentError(
            "make_store: StoreKind::kDisk requires a disk_dir");
      }
      return std::make_shared<DiskStore>(bits, disk_dir);
  }
  throw tca::InvalidArgumentError("make_store: unknown StoreKind");
}

}  // namespace tca::phasespace
