#include "phasespace/dot.hpp"

namespace tca::phasespace {

std::string state_label(StateCode s, std::uint32_t bits) {
  std::string label(bits, '0');
  for (std::uint32_t b = 0; b < bits; ++b) {
    if ((s >> b) & 1u) label[b] = '1';
  }
  return label;
}

std::string to_dot(const FunctionalGraph& fg, const std::string& name) {
  const auto cls = classify(fg);
  std::string out = "digraph " + name + " {\n  rankdir=LR;\n";
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    out += "  \"" + state_label(s, fg.bits()) + "\"";
    if (cls.kind[s] == StateKind::kFixedPoint) {
      out += " [shape=doublecircle]";
    } else if (cls.kind[s] == StateKind::kCycle) {
      out += " [style=filled, fillcolor=lightgray]";
    }
    out += ";\n";
  }
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    out += "  \"" + state_label(s, fg.bits()) + "\" -> \"" +
           state_label(fg.succ(s), fg.bits()) + "\";\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const ChoiceDigraph& g, const std::string& name) {
  std::string out = "digraph " + name + " {\n  rankdir=LR;\n";
  const auto analysis = analyze(g);
  for (StateCode s = 0; s < g.num_states(); ++s) {
    out += "  \"" + state_label(s, g.bits()) + "\"";
    bool fp = false;
    for (StateCode f : analysis.fixed_points) {
      if (f == s) fp = true;
    }
    if (fp) out += " [shape=doublecircle]";
    out += ";\n";
  }
  for (StateCode s = 0; s < g.num_states(); ++s) {
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      out += "  \"" + state_label(s, g.bits()) + "\" -> \"" +
             state_label(g.succ(s, v), g.bits()) + "\" [label=\"" +
             std::to_string(v + 1) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string to_text(const FunctionalGraph& fg) {
  const auto cls = classify(fg);
  std::string out;
  for (StateCode s = 0; s < fg.num_states(); ++s) {
    out += state_label(s, fg.bits()) + " -> " +
           state_label(fg.succ(s), fg.bits());
    switch (cls.kind[s]) {
      case StateKind::kFixedPoint:
        out += "   [fixed point]";
        break;
      case StateKind::kCycle:
        out += "   [cycle, period " +
               std::to_string(cls.attractors[cls.attractor[s]].period) + "]";
        break;
      case StateKind::kTransient:
        out += "   [transient]";
        break;
    }
    out += "\n";
  }
  return out;
}

std::string to_text(const ChoiceDigraph& g) {
  const auto analysis = analyze(g);
  std::string out;
  for (StateCode s = 0; s < g.num_states(); ++s) {
    out += state_label(s, g.bits()) + " -> {";
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      if (v != 0) out += ", ";
      out += "node" + std::to_string(v + 1) + ": " +
             state_label(g.succ(s, v), g.bits());
    }
    out += "}";
    for (StateCode f : analysis.fixed_points) {
      if (f == s) out += "   [fixed point]";
    }
    for (StateCode f : analysis.pseudo_fixed_points) {
      if (f == s) out += "   [pseudo-fixed point]";
    }
    if (analysis.scc_id.size() > s) {
      // annotate proper-cycle membership
      std::uint64_t members = 0;
      for (StateCode t = 0; t < g.num_states(); ++t) {
        if (analysis.scc_id[t] == analysis.scc_id[s]) ++members;
      }
      if (members >= 2) out += "   [on a proper cycle]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace tca::phasespace
