#include "phasespace/supervised.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace tca::phasespace {

FunctionalGraphBuild build_synchronous_at_rung(const core::Automaton& a,
                                               runtime::EngineRung rung,
                                               runtime::RunControl& control) {
  TCA_SPAN("phase_space_build");
  static obs::Counter& builds = obs::counter("phasespace.build.runs");
  static obs::Counter& states = obs::counter("phasespace.build.states");
  const auto bits = static_cast<std::uint32_t>(a.size());
  tca::require_explicit_bits(bits, kMaxExplicitBits,
                             "build_synchronous_at_rung");
  const StateCode count = StateCode{1} << bits;
  FunctionalGraphBuild out;
  runtime::fault::check_alloc(count * sizeof(StateCode));
  out.partial_succ.reserve(count);

  BatchCodeStepper stepper(a, rung);
  if (rung == runtime::EngineRung::kWideSimd ||
      rung == runtime::EngineRung::kBatch64) {
    note_batch_fallback(stepper, a, "build_synchronous_at_rung");
  }
  // Blocked stream: budget polled per 1024-state block, so truncation cuts
  // on block boundaries — still an exact prefix of the full table.
  for (StateCode s = 0; s < count;) {
    const auto block =
        static_cast<std::size_t>(std::min<StateCode>(1024, count - s));
    if (control.note_states(block) != runtime::StopReason::kNone ||
        control.note_bytes(block * sizeof(StateCode)) !=
            runtime::StopReason::kNone) {
      out.states_built = s;
      out.status = control.status();
      builds.add();
      states.add(out.states_built);
      return out;
    }
    out.partial_succ.resize(s + block);
    stepper.step_range(s, block, out.partial_succ.data() + s);
    s += block;
  }
  out.states_built = count;
  out.status = control.status();
  out.graph = FunctionalGraph::from_table(bits, std::move(out.partial_succ));
  out.partial_succ.clear();
  builds.add();
  states.add(out.states_built);
  return out;
}

SupervisedBuild supervised_synchronous(
    const core::Automaton& a, const runtime::SupervisorOptions& options) {
  SupervisedBuild out;
  runtime::Supervisor supervisor(options);
  out.report = supervisor.run(
      "phasespace.synchronous", [&](runtime::AttemptContext& ctx) {
        out.build = build_synchronous_at_rung(a, ctx.rung, ctx.control);
        return out.build.complete() ? runtime::AttemptOutcome::kCompleted
                                    : runtime::AttemptOutcome::kTruncated;
      });
  return out;
}

SupervisedGoeCensus supervised_goe_census(
    const core::Automaton& a, const runtime::SupervisorOptions& options) {
  SupervisedGoeCensus out;
  runtime::Supervisor supervisor(options);
  out.report = supervisor.run(
      "phasespace.goe_census", [&](runtime::AttemptContext& ctx) {
        out.census = count_gardens_of_eden_explicit(a, ctx.control, ctx.rung);
        return out.census.truncated ? runtime::AttemptOutcome::kTruncated
                                    : runtime::AttemptOutcome::kCompleted;
      });
  return out;
}

}  // namespace tca::phasespace
