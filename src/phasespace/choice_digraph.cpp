#include "phasespace/choice_digraph.hpp"

#include <deque>
#include <stdexcept>

#include "phasespace/scc.hpp"
#include "runtime/error.hpp"

namespace tca::phasespace {

ChoiceDigraph::ChoiceDigraph(const core::Automaton& a)
    : bits_(static_cast<std::uint32_t>(a.size())),
      choices_(static_cast<std::uint32_t>(a.size())) {
  tca::require_explicit_bits(bits_, 22, "ChoiceDigraph");
  const StateCode count = StateCode{1} << bits_;
  succ_.resize(count * choices_);
  const std::size_t n = a.size();
  for (StateCode s = 0; s < count; ++s) {
    const auto c = core::Configuration::from_bits(s, n);
    for (std::uint32_t v = 0; v < choices_; ++v) {
      const core::State next = a.eval_node(v, c);
      StateCode t = s;
      if (next != 0) {
        t |= StateCode{1} << v;
      } else {
        t &= ~(StateCode{1} << v);
      }
      succ_[s * choices_ + v] = t;
    }
  }
}

ChoiceAnalysis analyze(const ChoiceDigraph& g) {
  ChoiceAnalysis out;
  const StateCode count = g.num_states();
  const std::uint32_t n = g.num_choices();

  const auto scc = strongly_connected_components(
      count, [n](std::uint64_t) { return n; },
      [&g](std::uint64_t s, std::uint32_t i) { return g.succ(s, i); });
  out.scc_id = scc.component;
  out.num_sccs = scc.num_components;
  for (StateCode s = 0; s < count; ++s) {
    if (scc.component_size[scc.component[s]] >= 2) {
      ++out.num_proper_cycle_states;
    }
  }

  for (StateCode s = 0; s < count; ++s) {
    std::uint32_t self_loops = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (g.succ(s, v) == s) ++self_loops;
    }
    if (self_loops == n) {
      ++out.num_fixed_points;
      out.fixed_points.push_back(s);
    } else if (self_loops > 0) {
      ++out.num_pseudo_fixed_points;
      out.pseudo_fixed_points.push_back(s);
    }
  }
  return out;
}

std::vector<std::uint8_t> reachable_from(const ChoiceDigraph& g,
                                         StateCode start) {
  std::vector<std::uint8_t> seen(g.num_states(), 0);
  std::deque<StateCode> queue{start};
  seen[start] = 1;
  while (!queue.empty()) {
    const StateCode s = queue.front();
    queue.pop_front();
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      const StateCode t = g.succ(s, v);
      if (!seen[t]) {
        seen[t] = 1;
        queue.push_back(t);
      }
    }
  }
  return seen;
}

std::vector<std::uint8_t> can_reach(const ChoiceDigraph& g, StateCode target) {
  // Reverse BFS needs predecessor lists; build them once.
  const StateCode count = g.num_states();
  std::vector<std::uint32_t> pred_count(count, 0);
  for (StateCode s = 0; s < count; ++s) {
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      ++pred_count[g.succ(s, v)];
    }
  }
  std::vector<std::size_t> offset(count + 1, 0);
  for (StateCode s = 0; s < count; ++s) {
    offset[s + 1] = offset[s] + pred_count[s];
  }
  std::vector<StateCode> preds(offset[count]);
  std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
  for (StateCode s = 0; s < count; ++s) {
    for (std::uint32_t v = 0; v < g.num_choices(); ++v) {
      preds[cursor[g.succ(s, v)]++] = s;
    }
  }

  std::vector<std::uint8_t> seen(count, 0);
  std::deque<StateCode> queue{target};
  seen[target] = 1;
  while (!queue.empty()) {
    const StateCode s = queue.front();
    queue.pop_front();
    for (std::size_t i = offset[s]; i < offset[s + 1]; ++i) {
      if (!seen[preds[i]]) {
        seen[preds[i]] = 1;
        queue.push_back(preds[i]);
      }
    }
  }
  return seen;
}

}  // namespace tca::phasespace
