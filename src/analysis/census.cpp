#include "analysis/census.hpp"

#include <vector>

namespace tca::analysis {

PhaseSpaceCensus census(const phasespace::FunctionalGraph& fg) {
  using phasespace::StateCode;
  using phasespace::StateKind;
  const auto cls = phasespace::classify(fg);
  PhaseSpaceCensus out;
  out.bits = fg.bits();
  out.states = fg.num_states();
  out.fixed_points = cls.num_fixed_points;
  out.cycle_states = cls.num_cycle_states;
  out.transient_states = cls.num_transient_states;
  out.gardens_of_eden = cls.num_gardens_of_eden;
  out.max_transient = cls.max_transient;
  out.max_period = cls.max_period();
  out.cycle_lengths = cls.cycle_length_histogram;

  for (StateCode s = 0; s < fg.num_states(); ++s) {
    if (cls.kind[s] == StateKind::kTransient &&
        cls.kind[fg.succ(s)] == StateKind::kCycle) {
      out.cycles_have_no_incoming_transients = false;
      break;
    }
  }
  return out;
}

PhaseSpaceCensus census_synchronous(const core::Automaton& a) {
  return census(phasespace::FunctionalGraph::synchronous(a));
}

PhaseSpaceCensus census_sweep(const core::Automaton& a,
                              std::span<const core::NodeId> order) {
  return census(phasespace::FunctionalGraph::sweep(
      a, std::vector<core::NodeId>(order.begin(), order.end())));
}

std::string to_string(const PhaseSpaceCensus& c) {
  std::string out;
  out += "states:                " + std::to_string(c.states) + " (n=" +
         std::to_string(c.bits) + ")\n";
  out += "fixed points:          " + std::to_string(c.fixed_points) + "\n";
  out += "proper-cycle states:   " + std::to_string(c.cycle_states) + "\n";
  out += "transient states:      " + std::to_string(c.transient_states) + "\n";
  out += "gardens of Eden:       " + std::to_string(c.gardens_of_eden) + "\n";
  out += "max transient length:  " + std::to_string(c.max_transient) + "\n";
  out += "max period:            " + std::to_string(c.max_period) + "\n";
  out += "cycles by period:\n";
  for (const auto& [period, count] : c.cycle_lengths) {
    out += "  period " + std::to_string(period) + ": " +
           std::to_string(count) + "\n";
  }
  out += std::string("proper cycles unreachable from outside: ") +
         (c.cycles_have_no_incoming_transients ? "yes" : "no") + "\n";
  return out;
}

}  // namespace tca::analysis
