#include "analysis/linear_ca.hpp"

#include <stdexcept>

#include "rules/analyze.hpp"
#include "runtime/error.hpp"

namespace tca::analysis {

std::optional<std::vector<rules::State>> linear_coefficients(
    const rules::Rule& rule, std::uint32_t arity) {
  if (arity > 20) return std::nullopt;
  const auto table = rules::truth_table(rule, arity);
  if (table[0] != 0) return std::nullopt;  // nonzero constant term
  // Candidate coefficients from the unit vectors; then verify the
  // superposition property on the whole table.
  std::vector<rules::State> coeffs(arity, 0);
  for (std::uint32_t i = 0; i < arity; ++i) {
    coeffs[i] = table[std::size_t{1} << (arity - 1 - i)];
  }
  for (std::size_t x = 0; x < table.size(); ++x) {
    rules::State expect = 0;
    for (std::uint32_t i = 0; i < arity; ++i) {
      if (coeffs[i] != 0 && ((x >> (arity - 1 - i)) & 1u) != 0) {
        expect ^= 1u;
      }
    }
    if (table[x] != expect) return std::nullopt;
  }
  return coeffs;
}

LinearRingCA::LinearRingCA(std::vector<rules::State> coeffs, std::size_t n)
    : coeffs_(std::move(coeffs)), n_(n), matrix_(n, n) {
  if (coeffs_.size() % 2 == 0) {
    throw tca::InvalidArgumentError(
        "LinearRingCA: coeffs must have odd length");
  }
  const std::size_t radius = coeffs_.size() / 2;
  if (n < 2 * radius + 1) {
    throw tca::InvalidArgumentError("LinearRingCA: ring too small");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < coeffs_.size(); ++j) {
      if (coeffs_[j] == 0) continue;
      const std::size_t col = (i + n + j - radius) % n;
      // XOR-accumulate: offsets cannot collide because n >= 2r+1.
      matrix_.set(i, col, !matrix_.get(i, col));
    }
  }
}

LinearRingCA LinearRingCA::from_rule(const rules::Rule& rule,
                                     std::uint32_t radius, std::size_t n) {
  const auto coeffs = linear_coefficients(rule, 2 * radius + 1);
  if (!coeffs) {
    throw tca::InvalidArgumentError("LinearRingCA: rule is not linear");
  }
  return LinearRingCA(*coeffs, n);
}

core::Configuration LinearRingCA::step(const core::Configuration& x) const {
  if (x.size() != n_) {
    throw tca::InvalidArgumentError(
        "LinearRingCA::step: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  std::vector<std::uint64_t> packed(x.words().begin(), x.words().end());
  const auto y = matrix_.apply(packed);
  core::Configuration out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.set(i, get_bit(y, i) ? 1 : 0);
  }
  return out;
}

core::Configuration LinearRingCA::step_many(const core::Configuration& x,
                                            std::uint64_t t) const {
  if (x.size() != n_) {
    throw tca::InvalidArgumentError(
        "LinearRingCA::step_many: size mismatch",
        tca::ErrorCode::kSizeMismatch);
  }
  const Gf2Matrix at = matrix_.power(t);
  std::vector<std::uint64_t> packed(x.words().begin(), x.words().end());
  const auto y = at.apply(packed);
  core::Configuration out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.set(i, get_bit(y, i) ? 1 : 0);
  }
  return out;
}

std::uint64_t LinearRingCA::preimages_per_reachable_state() const {
  const std::size_t k = nullity();
  return k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k);
}

std::uint64_t LinearRingCA::garden_of_eden_count() const {
  const std::size_t r = rank();
  if (n_ >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << n_) - (std::uint64_t{1} << r);
}

std::optional<core::Configuration> LinearRingCA::preimage(
    const core::Configuration& y) const {
  if (y.size() != n_) {
    throw tca::InvalidArgumentError(
        "LinearRingCA::preimage: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  std::vector<std::uint64_t> packed(y.words().begin(), y.words().end());
  const auto x = matrix_.solve(packed);
  if (!x) return std::nullopt;
  core::Configuration out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.set(i, get_bit(*x, i) ? 1 : 0);
  }
  return out;
}

}  // namespace tca::analysis
