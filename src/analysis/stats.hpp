#pragma once
// Small statistics utilities for the experiment harness (DESIGN.md S5):
// streaming mean/variance (Welford), min/max, and integer histograms with
// text rendering. No external dependencies, deterministic output.

#include <cstdint>
#include <map>
#include <string>

namespace tca::analysis {

/// Streaming mean / variance / min / max accumulator (Welford's algorithm;
/// numerically stable, single pass).
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sparse integer histogram.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& bins() const {
    return bins_;
  }
  /// "value: count (percent)" lines, one per bin, ascending value.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Fixed-point formatting helper: value with `decimals` fractional digits.
[[nodiscard]] std::string format_fixed(double value, int decimals = 2);

}  // namespace tca::analysis
