#include "analysis/stats.hpp"

#include <cmath>
#include <cstdio>

namespace tca::analysis {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  bins_[value] += weight;
  total_ += weight;
}

std::string Histogram::to_string() const {
  std::string out;
  for (const auto& [value, count] : bins_) {
    const double pct =
        total_ == 0 ? 0.0
                    : 100.0 * static_cast<double>(count) /
                          static_cast<double>(total_);
    out += "  " + std::to_string(value) + ": " + std::to_string(count) + " (" +
           format_fixed(pct, 2) + "%)\n";
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace tca::analysis
