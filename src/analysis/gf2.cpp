#include "analysis/gf2.hpp"

#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::analysis {
namespace {

std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

}  // namespace

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_(words_for(cols)),
      words_(rows * words_per_row_, 0) {}

Gf2Matrix Gf2Matrix::identity(std::size_t n) {
  Gf2Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

Gf2Matrix Gf2Matrix::multiply(const Gf2Matrix& other) const {
  if (cols_ != other.rows_) {
    throw tca::InvalidArgumentError(
        "Gf2Matrix::multiply: shape mismatch", tca::ErrorCode::kSizeMismatch);
  }
  Gf2Matrix out(rows_, other.cols_);
  // Row-by-row: out.row(i) = XOR of other.row(k) for set bits k of row(i).
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t wk = 0; wk < words_per_row_; ++wk) {
      std::uint64_t bits = words_[i * words_per_row_ + wk];
      while (bits != 0) {
        const auto k = (wk << 6) +
                       static_cast<std::size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        for (std::size_t w = 0; w < out.words_per_row_; ++w) {
          out.words_[i * out.words_per_row_ + w] ^=
              other.words_[k * other.words_per_row_ + w];
        }
      }
    }
  }
  return out;
}

Gf2Matrix Gf2Matrix::add(const Gf2Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw tca::InvalidArgumentError(
        "Gf2Matrix::add: shape mismatch", tca::ErrorCode::kSizeMismatch);
  }
  Gf2Matrix out = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] ^= other.words_[i];
  }
  return out;
}

Gf2Matrix Gf2Matrix::power(std::uint64_t e) const {
  if (rows_ != cols_) {
    throw tca::InvalidArgumentError("Gf2Matrix::power: square matrices only");
  }
  Gf2Matrix result = identity(rows_);
  Gf2Matrix base = *this;
  while (e != 0) {
    if (e & 1u) result = result.multiply(base);
    base = base.multiply(base);
    e >>= 1;
  }
  return result;
}

std::vector<std::uint64_t> Gf2Matrix::apply(
    const std::vector<std::uint64_t>& x) const {
  if (x.size() < words_per_row_) {
    throw tca::InvalidArgumentError("Gf2Matrix::apply: vector too short");
  }
  std::vector<std::uint64_t> y(words_for(rows_), 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    int parity = 0;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      // Row padding bits are zero, so x's padding (if any) is masked away.
      parity ^=
          __builtin_popcountll(words_[i * words_per_row_ + w] & x[w]) & 1;
    }
    set_bit(y, i, parity != 0);
  }
  return y;
}

std::size_t Gf2Matrix::rank() const {
  Gf2Matrix work = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    // Find a pivot row at or below `rank` with a 1 in `col`.
    std::size_t pivot = rank;
    while (pivot < rows_ && !work.get(pivot, col)) ++pivot;
    if (pivot == rows_) continue;
    // Swap rows.
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::swap(work.words_[rank * words_per_row_ + w],
                work.words_[pivot * words_per_row_ + w]);
    }
    // Eliminate below (and above, though not needed for rank).
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != rank && work.get(r, col)) {
        for (std::size_t w = 0; w < words_per_row_; ++w) {
          work.words_[r * words_per_row_ + w] ^=
              work.words_[rank * words_per_row_ + w];
        }
      }
    }
    ++rank;
  }
  return rank;
}

std::vector<std::vector<std::uint64_t>> Gf2Matrix::kernel_basis() const {
  // Reduce to RREF, tracking pivot columns; free columns generate the
  // kernel.
  Gf2Matrix work = *this;
  std::vector<std::size_t> pivot_col;
  std::size_t r = 0;
  for (std::size_t col = 0; col < cols_ && r < rows_; ++col) {
    std::size_t pivot = r;
    while (pivot < rows_ && !work.get(pivot, col)) ++pivot;
    if (pivot == rows_) continue;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::swap(work.words_[r * words_per_row_ + w],
                work.words_[pivot * words_per_row_ + w]);
    }
    for (std::size_t rr = 0; rr < rows_; ++rr) {
      if (rr != r && work.get(rr, col)) {
        for (std::size_t w = 0; w < words_per_row_; ++w) {
          work.words_[rr * words_per_row_ + w] ^=
              work.words_[r * words_per_row_ + w];
        }
      }
    }
    pivot_col.push_back(col);
    ++r;
  }

  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t c : pivot_col) is_pivot[c] = true;

  std::vector<std::vector<std::uint64_t>> basis;
  for (std::size_t free = 0; free < cols_; ++free) {
    if (is_pivot[free]) continue;
    std::vector<std::uint64_t> v(words_for(cols_), 0);
    set_bit(v, free, true);
    // Each pivot row gives pivot_col value = entry in `free` column.
    for (std::size_t pr = 0; pr < pivot_col.size(); ++pr) {
      if (work.get(pr, free)) set_bit(v, pivot_col[pr], true);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<std::vector<std::uint64_t>> Gf2Matrix::solve(
    const std::vector<std::uint64_t>& b) const {
  // Gaussian elimination on [A | b].
  Gf2Matrix work = *this;
  std::vector<std::uint64_t> rhs = b;
  rhs.resize(words_for(rows_), 0);
  std::vector<std::size_t> pivot_col;
  std::size_t r = 0;
  for (std::size_t col = 0; col < cols_ && r < rows_; ++col) {
    std::size_t pivot = r;
    while (pivot < rows_ && !work.get(pivot, col)) ++pivot;
    if (pivot == rows_) continue;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::swap(work.words_[r * words_per_row_ + w],
                work.words_[pivot * words_per_row_ + w]);
    }
    const bool rb = get_bit(rhs, r);
    const bool pb = get_bit(rhs, pivot);
    set_bit(rhs, r, pb);
    set_bit(rhs, pivot, rb);
    for (std::size_t rr = 0; rr < rows_; ++rr) {
      if (rr != r && work.get(rr, col)) {
        for (std::size_t w = 0; w < words_per_row_; ++w) {
          work.words_[rr * words_per_row_ + w] ^=
              work.words_[r * words_per_row_ + w];
        }
        set_bit(rhs, rr, get_bit(rhs, rr) ^ get_bit(rhs, r));
      }
    }
    pivot_col.push_back(col);
    ++r;
  }
  // Inconsistent if a zero row has rhs 1.
  for (std::size_t rr = r; rr < rows_; ++rr) {
    if (get_bit(rhs, rr)) return std::nullopt;
  }
  std::vector<std::uint64_t> x(words_for(cols_), 0);
  for (std::size_t pr = 0; pr < pivot_col.size(); ++pr) {
    set_bit(x, pivot_col[pr], get_bit(rhs, pr));
  }
  return x;
}

}  // namespace tca::analysis
