#pragma once
// Linear (XOR-family) cellular automata over GF(2) (DESIGN.md S5
// extension).
//
// A 1-D rule is LINEAR when f(x) = XOR of a fixed subset of its inputs —
// the paper's XOR example, Wolfram rules 90/150/60/etc. On a ring the
// global map is then a circulant GF(2) matrix, and every phase-space
// question becomes linear algebra:
//   * #preimages of a reachable y  =  2^nullity(A)
//   * #Gardens of Eden             =  2^n - 2^rank(A)
//   * invertibility (reversal)     =  full rank
//   * trajectory t steps ahead     =  A^t x  (computable in O(log t)
//                                     matrix products)
// These predictions are cross-validated against the combinatorial
// machinery (preimage solver, explicit phase spaces) in linear_ca_test.

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/gf2.hpp"
#include "core/configuration.hpp"
#include "rules/rule.hpp"

namespace tca::analysis {

/// If the rule (at the given arity) is linear over GF(2) with zero
/// constant term — f(x) = XOR_{i in S} x_i — returns the coefficient mask
/// (coeffs[i] = 1 iff input i participates); otherwise std::nullopt.
[[nodiscard]] std::optional<std::vector<rules::State>> linear_coefficients(
    const rules::Rule& rule, std::uint32_t arity);

/// A linear radius-r ring CA: per-offset GF(2) coefficients
/// (coeffs[j] multiplies the cell at offset j - r, left-to-right, so
/// coeffs.size() == 2r + 1 and the middle entry is the self term).
class LinearRingCA {
 public:
  LinearRingCA(std::vector<rules::State> coeffs, std::size_t n);

  /// Builds from any rule that linear_coefficients accepts at arity 2r+1.
  /// Throws std::invalid_argument for nonlinear rules.
  static LinearRingCA from_rule(const rules::Rule& rule, std::uint32_t radius,
                                std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// The circulant global map as an explicit GF(2) matrix.
  [[nodiscard]] const Gf2Matrix& matrix() const noexcept { return matrix_; }

  /// One step, via the matrix (must equal the engine's step).
  [[nodiscard]] core::Configuration step(const core::Configuration& x) const;

  /// t steps in O(log t) matrix products.
  [[nodiscard]] core::Configuration step_many(const core::Configuration& x,
                                              std::uint64_t t) const;

  [[nodiscard]] std::size_t rank() const { return matrix_.rank(); }
  [[nodiscard]] std::size_t nullity() const { return matrix_.nullity(); }

  /// 2^nullity if it fits in 64 bits (nullity < 64), else saturated max.
  [[nodiscard]] std::uint64_t preimages_per_reachable_state() const;

  /// 2^n - 2^rank (saturating).
  [[nodiscard]] std::uint64_t garden_of_eden_count() const;

  /// True iff the global map is a bijection (reversible CA).
  [[nodiscard]] bool is_reversible() const { return rank() == n_; }

  /// One preimage of y, or std::nullopt if y is a Garden of Eden.
  [[nodiscard]] std::optional<core::Configuration> preimage(
      const core::Configuration& y) const;

 private:
  std::vector<rules::State> coeffs_;
  std::size_t n_;
  Gf2Matrix matrix_;
};

}  // namespace tca::analysis
