#pragma once
// Statistical phase-space portraits for large systems (DESIGN.md S5
// extension).
//
// Beyond ~26 cells the phase space cannot be enumerated, but its
// statistics can be sampled: draw random initial configurations, chase
// each orbit to its attractor (Brent), and accumulate a portrait —
// attractor-type frequencies, transient lengths, and the diversity of
// distinct attractors hit (identified by a canonical representative of
// the cycle). This is how the paper's "statistically, almost no cycles"
// claim is checked at sizes where exact counting via transfer matrices is
// the only alternative.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/stats.hpp"
#include "core/automaton.hpp"
#include "core/configuration.hpp"

namespace tca::analysis {

/// Sampled portrait of a synchronous phase space.
struct BasinPortrait {
  std::uint64_t samples = 0;
  std::uint64_t to_fixed_point = 0;   ///< orbits ending in a period-1 state
  std::uint64_t to_two_cycle = 0;     ///< orbits ending in a period-2 cycle
  std::uint64_t to_longer_cycle = 0;  ///< period >= 3 (impossible for
                                      ///< threshold rules)
  std::uint64_t unresolved = 0;       ///< no repeat within the step budget
  Accumulator transient_length;
  /// Distinct attractors reached, keyed by the canonical (minimum-hash)
  /// configuration on the cycle, with hit counts.
  std::unordered_map<std::uint64_t, std::uint64_t> attractor_hits;

  /// Number of distinct attractors observed.
  [[nodiscard]] std::size_t distinct_attractors() const {
    return attractor_hits.size();
  }
  /// Largest observed basin share (hits of the most-hit attractor /
  /// samples).
  [[nodiscard]] double dominant_share() const;
};

/// Samples `samples` uniform random initial configurations of `a` (seeded)
/// and chases each synchronous orbit for at most `max_steps`.
[[nodiscard]] BasinPortrait sample_basins(const core::Automaton& a,
                                          std::uint64_t samples,
                                          std::uint64_t seed,
                                          std::uint64_t max_steps);

/// Canonical 64-bit key for an attractor: the minimum hash_value over the
/// cycle's configurations (rotation- and entry-point-independent).
[[nodiscard]] std::uint64_t attractor_key(const core::Automaton& a,
                                          const core::Configuration& on_cycle,
                                          std::uint64_t period);

}  // namespace tca::analysis
