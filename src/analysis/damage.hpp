#pragma once
// Damage spreading and the information light cone (DESIGN.md S5
// extension; the paper's Section 4 framing of classical CA as models of
// BOUNDED asynchrony: "if nodes are d apart and the radius is r, a change
// in one can affect the other no sooner than after about d/r steps").
//
// Perturb one cell, evolve both configurations under the same update
// discipline, and track the damage (the XOR of the two trajectories).
// For synchronous radius-r CA the damage support provably stays inside
// the light cone [i - rt, i + rt]; for linear rules the damage IS the
// linear evolution of the unit perturbation (superposition), giving exact
// propagation fronts.

#include <cstdint>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"

namespace tca::analysis {

/// Damage trajectory: diffs[t] = F^t(x) XOR F^t(x + e_cell), t = 0..steps.
struct DamageTrace {
  std::vector<core::Configuration> diffs;
  /// Hamming distance per step (diffs[t].popcount()).
  [[nodiscard]] std::vector<std::size_t> hamming() const;
};

/// Synchronous damage spreading from flipping `cell` in `x`.
[[nodiscard]] DamageTrace damage_synchronous(const core::Automaton& a,
                                             const core::Configuration& x,
                                             std::size_t cell,
                                             std::uint64_t steps);

/// True iff every damaged cell of `diff` lies within ring distance
/// `radius * t` of `origin` on an n-cell ring — the light-cone condition
/// at time t.
[[nodiscard]] bool within_light_cone(const core::Configuration& diff,
                                     std::size_t origin, std::uint32_t radius,
                                     std::uint64_t t);

/// True iff the whole trace respects the light cone of `origin`.
[[nodiscard]] bool trace_within_light_cone(const DamageTrace& trace,
                                           std::size_t origin,
                                           std::uint32_t radius);

/// The earliest step at which the damage reaches ring distance exactly
/// radius*t from the origin (the cone boundary), or 0 if it never does
/// within the trace — the "no later than" half of the paper's bound is
/// rule-dependent; XOR rules achieve it, threshold rules often heal.
[[nodiscard]] std::uint64_t steps_until_cone_boundary(const DamageTrace& trace,
                                                      std::size_t origin,
                                                      std::uint32_t radius);

}  // namespace tca::analysis
