#pragma once
// Phase-space censuses (DESIGN.md S5): aggregate counts over explicit phase
// spaces, feeding the RARE experiment (the paper's Section 4 remark, citing
// [19], that non-FP cycles of parallel threshold CA are statistically very
// few AND have no incoming transients) and the experiment tables.

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "core/automaton.hpp"
#include "phasespace/classify.hpp"

namespace tca::analysis {

/// Aggregate description of one deterministic phase space.
struct PhaseSpaceCensus {
  std::uint32_t bits = 0;
  std::uint64_t states = 0;
  std::uint64_t fixed_points = 0;
  std::uint64_t cycle_states = 0;      ///< on proper cycles (period >= 2)
  std::uint64_t transient_states = 0;
  std::uint64_t gardens_of_eden = 0;
  std::uint64_t max_transient = 0;
  std::uint64_t max_period = 0;
  /// period -> number of distinct cycles with that period
  std::map<std::uint64_t, std::uint64_t> cycle_lengths;
  /// True iff no transient state maps INTO a proper cycle state — i.e.
  /// proper cycles are unreachable except from themselves (the paper's
  /// "without any incoming transients").
  bool cycles_have_no_incoming_transients = true;

  /// Fraction of states on proper cycles.
  [[nodiscard]] double cycle_state_fraction() const {
    return states == 0 ? 0.0
                       : static_cast<double>(cycle_states) /
                             static_cast<double>(states);
  }
};

/// Census of the synchronous (parallel) phase space of `a`.
[[nodiscard]] PhaseSpaceCensus census_synchronous(const core::Automaton& a);

/// Census of the sweep-SCA phase space of `a` under permutation `order`.
[[nodiscard]] PhaseSpaceCensus census_sweep(const core::Automaton& a,
                                            std::span<const core::NodeId> order);

/// Census from an already-built functional graph.
[[nodiscard]] PhaseSpaceCensus census(const phasespace::FunctionalGraph& fg);

/// Multi-line human-readable rendering.
[[nodiscard]] std::string to_string(const PhaseSpaceCensus& c);

}  // namespace tca::analysis
