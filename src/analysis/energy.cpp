#include "analysis/energy.hpp"

#include <stdexcept>

#include "rules/rule.hpp"
#include "runtime/error.hpp"

namespace tca::analysis {

ThresholdNetwork ThresholdNetwork::homogeneous(graph::Graph g, std::uint32_t k,
                                               bool with_memory) {
  ThresholdNetwork net;
  const auto n = g.num_nodes();
  net.graph = std::move(g);
  net.k.assign(n, k);
  net.with_memory = with_memory;
  return net;
}

ThresholdNetwork ThresholdNetwork::majority(graph::Graph g, bool with_memory) {
  ThresholdNetwork net;
  const auto n = g.num_nodes();
  net.with_memory = with_memory;
  net.k.reserve(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const std::uint32_t arity = g.degree(v) + (with_memory ? 1u : 0u);
    net.k.push_back(arity / 2 + 1);
  }
  net.graph = std::move(g);
  return net;
}

core::Automaton ThresholdNetwork::automaton() const {
  std::vector<core::Rule> rules;
  rules.reserve(k.size());
  for (std::uint32_t kv : k) rules.emplace_back(rules::KOfNRule{kv});
  return core::Automaton::from_graph_per_node(
      graph, std::move(rules),
      with_memory ? core::Memory::kWith : core::Memory::kWithout);
}

std::int64_t sequential_energy(const ThresholdNetwork& net,
                               const core::Configuration& x) {
  if (x.size() != net.graph.num_nodes()) {
    throw tca::InvalidArgumentError(
        "sequential_energy: size mismatch", tca::ErrorCode::kSizeMismatch);
  }
  std::int64_t e = 0;
  for (graph::NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    if (x.get(u) == 0) continue;
    for (graph::NodeId v : net.graph.neighbors(u)) {
      if (u < v && x.get(v) != 0) e -= 2;
    }
    const std::int64_t two_theta =
        2 * static_cast<std::int64_t>(net.k[u]) - (net.with_memory ? 2 : 1);
    e += two_theta;
  }
  return e;
}

std::int64_t synchronous_pair_energy(const ThresholdNetwork& net,
                                     const core::Configuration& x,
                                     const core::Configuration& fx) {
  if (x.size() != net.graph.num_nodes() || fx.size() != x.size()) {
    throw tca::InvalidArgumentError(
        "synchronous_pair_energy: size mismatch",
        tca::ErrorCode::kSizeMismatch);
  }
  std::int64_t e = 0;
  for (graph::NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    for (graph::NodeId v : net.graph.neighbors(u)) {
      // Ordered pairs: both (u,v) and (v,u) contribute.
      if (x.get(u) != 0 && fx.get(v) != 0) e -= 2;
    }
    if (net.with_memory && x.get(u) != 0 && fx.get(u) != 0) e -= 2;
    const std::int64_t two_theta = 2 * static_cast<std::int64_t>(net.k[u]) - 1;
    e += two_theta * (x.get(u) + fx.get(u));
  }
  return e;
}

std::int64_t sequential_change_bound(const ThresholdNetwork& net) {
  // E ranges within [-2|E|, sum_v max(0, 2k_v)] coarsely; the number of
  // strict unit decreases is at most the range width.
  std::int64_t span = 2 * static_cast<std::int64_t>(net.graph.num_edges());
  for (std::uint32_t kv : net.k) {
    span += 2 * static_cast<std::int64_t>(kv) + 2;
  }
  return span;
}

}  // namespace tca::analysis
