#pragma once
// Dense linear algebra over GF(2) (DESIGN.md S5 extension).
//
// The paper's XOR examples are LINEAR cellular automata: the global map is
// a matrix over GF(2), so phase-space structure is computable
// algebraically — #preimages of any reachable state is 2^nullity, Gardens
// of Eden number 2^n - 2^rank, and invertibility is full rank. This module
// provides the bit-packed matrix machinery; linear_ca.hpp applies it to
// rules and cross-validates against the combinatorial solvers.
//
// Rows are packed 64 columns per word; all operations are word-parallel.

#include <cstdint>
#include <optional>
#include <vector>

namespace tca::analysis {

/// Dense bit matrix over GF(2).
class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  Gf2Matrix(std::size_t rows, std::size_t cols);

  static Gf2Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const {
    return ((words_[r * words_per_row_ + (c >> 6)] >> (c & 63)) & 1u) != 0;
  }
  void set(std::size_t r, std::size_t c, bool value) {
    const std::uint64_t bit = std::uint64_t{1} << (c & 63);
    auto& word = words_[r * words_per_row_ + (c >> 6)];
    word = value ? (word | bit) : (word & ~bit);
  }

  /// Matrix product (this * other) over GF(2).
  [[nodiscard]] Gf2Matrix multiply(const Gf2Matrix& other) const;

  /// Entrywise XOR (matrix sum over GF(2)).
  [[nodiscard]] Gf2Matrix add(const Gf2Matrix& other) const;

  /// this^e by square-and-multiply (square matrices only).
  [[nodiscard]] Gf2Matrix power(std::uint64_t e) const;

  /// Matrix-vector product (vector = packed bits, size cols()).
  [[nodiscard]] std::vector<std::uint64_t> apply(
      const std::vector<std::uint64_t>& x) const;

  /// Rank by Gaussian elimination (on a copy).
  [[nodiscard]] std::size_t rank() const;

  /// cols() - rank().
  [[nodiscard]] std::size_t nullity() const { return cols_ - rank(); }

  /// Basis of the kernel {x : Ax = 0}, one packed vector per basis element.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> kernel_basis() const;

  /// One solution of Ax = b (packed, b.size() covering rows()), or
  /// std::nullopt if inconsistent.
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> solve(
      const std::vector<std::uint64_t>& b) const;

  friend bool operator==(const Gf2Matrix&, const Gf2Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Packed-bit-vector helpers (size = number of meaningful bits).
[[nodiscard]] inline bool get_bit(const std::vector<std::uint64_t>& v,
                                  std::size_t i) {
  return ((v[i >> 6] >> (i & 63)) & 1u) != 0;
}
inline void set_bit(std::vector<std::uint64_t>& v, std::size_t i, bool value) {
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  v[i >> 6] = value ? (v[i >> 6] | bit) : (v[i >> 6] & ~bit);
}

}  // namespace tca::analysis
