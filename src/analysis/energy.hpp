#pragma once
// Goles–Martinez Lyapunov energy for threshold networks (DESIGN.md S5).
//
// This is the analytic engine behind the paper's Proposition 1 (citing
// Goles & Martinez [8]) and the second, independent certificate for
// Lemma 1(ii)/Theorem 1 used by the experiment harness.
//
// Setting: a symmetric 0/1-weighted network over an undirected graph G,
// where node v updates to  x_v' = [ S_v >= k_v ]  with
//   S_v = sum_{u in N(v)} x_u  (+ x_v if the automaton has memory).
// This covers every monotone symmetric (k-of-n) CA in the paper.
//
// SEQUENTIAL energy (integer-valued, doubled to stay integral without
// memory):
//   with memory:     E(x) = -2*sum_{{u,v} in E} x_u x_v + sum_v (2 k_v - 2) x_v
//   without memory:  E(x) = -2*sum_{{u,v} in E} x_u x_v + sum_v (2 k_v - 1) x_v
//
// Claim (verified exhaustively by tests): every sequential update that
// CHANGES a node's state strictly decreases E (by >= 1). Derivation for the
// with-memory case (w_vv = 1, theta'_v = k_v - 1/2, f = sum_{u~v} x_u):
//   flipping x_v: a -> b, with b = [f + a >= k_v], Delta = b - a:
//   (E/2 change) = Delta * (k_v - 1 - f)
//   a=0 -> b=1 requires f >= k_v      => change <= -1
//   a=1 -> b=0 requires f <= k_v - 2  => change <= -1.
// Since E is integer-valued and bounded, no sequential trajectory can
// revisit a state it changed away from => the SCA phase space is
// cycle-free and every fair schedule converges to a fixed point within
// (max E - min E) state changes. That is Theorem 1, quantitatively.
//
// SYNCHRONOUS pair-energy (Goles' classical argument for period <= 2):
//   E2(x, y) = -sum_{u,v} w_uv x_u y_v + sum_v theta_v (x_v + y_v),
// evaluated on consecutive configurations y = F(x); E2 is nonincreasing
// along synchronous trajectories and strictly decreases unless
// x(t+2) = x(t) — hence only fixed points and two-cycles (Proposition 1).
// We use the doubled integer form here as well.

#include <cstdint>
#include <vector>

#include "core/automaton.hpp"
#include "core/configuration.hpp"
#include "graph/graph.hpp"

namespace tca::analysis {

/// A k-of-n threshold network: graph + per-node threshold + memory flag.
struct ThresholdNetwork {
  graph::Graph graph;
  std::vector<std::uint32_t> k;  ///< per-node threshold (size = num_nodes)
  bool with_memory = true;

  /// Homogeneous network: every node uses the same k.
  static ThresholdNetwork homogeneous(graph::Graph g, std::uint32_t k,
                                      bool with_memory);

  /// The MAJORITY network on g: node v has arity m_v = deg(v) (+1 with
  /// memory) and threshold k_v = floor(m_v / 2) + 1 (strict majority; for
  /// the paper's odd arities 2r+1 this is the unique majority threshold,
  /// and it matches rules::MajorityRule with tie -> 0 for even arities).
  static ThresholdNetwork majority(graph::Graph g, bool with_memory);

  /// The equivalent tca::core::Automaton (per-node KOfN rules).
  [[nodiscard]] core::Automaton automaton() const;
};

/// Doubled integer sequential Lyapunov energy E(x) (see header comment).
[[nodiscard]] std::int64_t sequential_energy(const ThresholdNetwork& net,
                                             const core::Configuration& x);

/// Doubled integer synchronous pair energy E2(x, F(x)).
[[nodiscard]] std::int64_t synchronous_pair_energy(
    const ThresholdNetwork& net, const core::Configuration& x,
    const core::Configuration& fx);

/// Upper bound on the total number of STATE-CHANGING sequential updates
/// from any start (max E - min E over the state space, coarse bound
/// 2|E| + sum_v |2 k_v - 2| + n).
[[nodiscard]] std::int64_t sequential_change_bound(const ThresholdNetwork& net);

}  // namespace tca::analysis
