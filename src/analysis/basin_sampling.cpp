#include "analysis/basin_sampling.hpp"

#include <algorithm>
#include <random>

#include "core/synchronous_fast.hpp"
#include "core/trajectory.hpp"

namespace tca::analysis {

double BasinPortrait::dominant_share() const {
  if (samples == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& [key, hits] : attractor_hits) {
    best = std::max(best, hits);
  }
  return static_cast<double>(best) / static_cast<double>(samples);
}

std::uint64_t attractor_key(const core::Automaton& a,
                            const core::Configuration& on_cycle,
                            std::uint64_t period) {
  std::uint64_t key = core::hash_value(on_cycle);
  core::Configuration current = on_cycle;
  for (std::uint64_t i = 1; i < period; ++i) {
    core::advance_synchronous_fast(a, current, 1);
    key = std::min(key, core::hash_value(current));
  }
  return key;
}

BasinPortrait sample_basins(const core::Automaton& a, std::uint64_t samples,
                            std::uint64_t seed, std::uint64_t max_steps) {
  std::mt19937_64 rng(seed);
  BasinPortrait portrait;
  portrait.samples = samples;
  const auto step = [&a](const core::Configuration& c) {
    core::Configuration out(c.size());
    core::step_synchronous_fast(a, c, out);
    return out;
  };
  for (std::uint64_t trial = 0; trial < samples; ++trial) {
    core::Configuration start(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      start.set(i, static_cast<core::State>(rng() & 1u));
    }
    const auto orbit = core::find_orbit(step, start, max_steps);
    if (!orbit) {
      ++portrait.unresolved;
      continue;
    }
    portrait.transient_length.add(static_cast<double>(orbit->transient));
    if (orbit->period == 1) {
      ++portrait.to_fixed_point;
    } else if (orbit->period == 2) {
      ++portrait.to_two_cycle;
    } else {
      ++portrait.to_longer_cycle;
    }
    ++portrait.attractor_hits[attractor_key(a, orbit->entry, orbit->period)];
  }
  return portrait;
}

}  // namespace tca::analysis
