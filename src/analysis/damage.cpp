#include "analysis/damage.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/synchronous.hpp"
#include "runtime/error.hpp"

namespace tca::analysis {
namespace {

std::size_t ring_distance(std::size_t a, std::size_t b, std::size_t n) {
  const std::size_t d = a > b ? a - b : b - a;
  return std::min(d, n - d);
}

}  // namespace

std::vector<std::size_t> DamageTrace::hamming() const {
  std::vector<std::size_t> out;
  out.reserve(diffs.size());
  for (const auto& d : diffs) out.push_back(d.popcount());
  return out;
}

DamageTrace damage_synchronous(const core::Automaton& a,
                               const core::Configuration& x, std::size_t cell,
                               std::uint64_t steps) {
  if (cell >= x.size()) {
    throw tca::InvalidArgumentError(
        "damage_synchronous: cell out of range", tca::ErrorCode::kOutOfRange);
  }
  core::Configuration original = x;
  core::Configuration perturbed = x;
  perturbed.flip(cell);

  DamageTrace trace;
  trace.diffs.reserve(steps + 1);
  core::Configuration back(x.size());
  for (std::uint64_t t = 0; t <= steps; ++t) {
    core::Configuration diff(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (original.get(i) != perturbed.get(i)) diff.set(i, 1);
    }
    trace.diffs.push_back(std::move(diff));
    if (t == steps) break;
    core::step_synchronous(a, original, back);
    std::swap(original, back);
    core::step_synchronous(a, perturbed, back);
    std::swap(perturbed, back);
  }
  return trace;
}

bool within_light_cone(const core::Configuration& diff, std::size_t origin,
                       std::uint32_t radius, std::uint64_t t) {
  const std::size_t n = diff.size();
  const std::uint64_t reach = static_cast<std::uint64_t>(radius) * t;
  for (std::size_t i = 0; i < n; ++i) {
    if (diff.get(i) != 0 && ring_distance(i, origin, n) > reach) {
      return false;
    }
  }
  return true;
}

bool trace_within_light_cone(const DamageTrace& trace, std::size_t origin,
                             std::uint32_t radius) {
  for (std::uint64_t t = 0; t < trace.diffs.size(); ++t) {
    if (!within_light_cone(trace.diffs[t], origin, radius, t)) return false;
  }
  return true;
}

std::uint64_t steps_until_cone_boundary(const DamageTrace& trace,
                                        std::size_t origin,
                                        std::uint32_t radius) {
  for (std::uint64_t t = 1; t < trace.diffs.size(); ++t) {
    const auto& diff = trace.diffs[t];
    const std::size_t n = diff.size();
    const std::uint64_t reach = static_cast<std::uint64_t>(radius) * t;
    if (reach >= n / 2) break;  // the cone has wrapped; boundary undefined
    for (std::size_t i = 0; i < n; ++i) {
      if (diff.get(i) != 0 && ring_distance(i, origin, n) == reach) {
        return t;
      }
    }
  }
  return 0;
}

}  // namespace tca::analysis
