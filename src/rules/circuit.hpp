#pragma once
// Word-parallel circuit forms of local rules (DESIGN.md S2/S3 extension).
//
// The bit-sliced batch engine (core/batch_kernels.hpp) evaluates one rule
// on 64 CONFIGURATIONS at a time: each input is a 64-bit plane whose bit j
// is that input's value in configuration j, and the rule must be expressed
// as a boolean circuit over whole planes. This header compiles a Rule into
// such a circuit ONCE per automaton — a CircuitPlan — using the property
// analyzers (analyze.hpp) to pick the cheapest form:
//
//  * kParity      — XOR chain (parity, and tables that ARE parity);
//  * kThreshold   — popcount adder tree + carry compare (majority, k-of-n,
//                   monotone symmetric tables, uniform positive weights);
//  * kCountMask   — popcount adder tree + per-count equality (arbitrary
//                   symmetric / totalistic functions);
//  * kOuterTotalistic — self plane + count mask over the other inputs
//                   (the Game-of-Life family);
//  * kMinterms    — sum-of-products over accepting truth-table rows
//                   (asymmetric tables of small arity);
//  * kConstant    — degenerate cases (k = 0, k > arity, constant tables).
//
// kUnsupported plans make the batch engine decline the automaton and fall
// back to the scalar engine (the "engine.batch.fallback" counter + log
// event record every such decision; docs/performance.md).

#include <cstdint>
#include <vector>

#include "rules/rule.hpp"

namespace tca::rules {

/// Largest arity for which the minterm (sum-of-products) form is built;
/// beyond this a non-symmetric table is kUnsupported (2^arity AND-chains
/// per cell would no longer beat the scalar lookup).
inline constexpr std::uint32_t kMaxMintermArity = 8;

/// Largest arity representable by a count mask (mask bit s = output when
/// exactly s inputs are 1 needs arity+1 bits of one uint64).
inline constexpr std::uint32_t kMaxCountMaskArity = 63;

/// How one rule at one fixed arity is evaluated over 64-lane bit planes.
struct CircuitPlan {
  enum class Kind : std::uint8_t {
    kConstant,
    kParity,
    kThreshold,
    kCountMask,
    kOuterTotalistic,
    kMinterms,
    kUnsupported,
  };

  Kind kind = Kind::kUnsupported;
  State constant_value = 0;       ///< kConstant
  std::uint32_t k = 0;            ///< kThreshold: output = (ones >= k), k >= 1
  std::uint64_t accept_mask = 0;  ///< kCountMask: bit s = output at s ones
  std::uint32_t self_index = 0;   ///< kOuterTotalistic: the self input slot
  std::uint64_t born_mask = 0;    ///< kOuterTotalistic: self == 0 outputs
  std::uint64_t survive_mask = 0; ///< kOuterTotalistic: self == 1 outputs
  std::vector<State> table;       ///< kMinterms: 2^arity rows, MSB-first
  const char* why_unsupported = nullptr;  ///< kUnsupported only

  [[nodiscard]] bool supported() const noexcept {
    return kind != Kind::kUnsupported;
  }
};

/// Compiles `rule` at the given arity. Never throws for well-formed rules;
/// shapes the batch engine cannot express (or that the rule itself would
/// reject at eval time, e.g. a size-mismatched SymmetricRule) come back as
/// kUnsupported with a stable reason string.
[[nodiscard]] CircuitPlan circuit_plan(const Rule& rule, std::uint32_t arity);

}  // namespace tca::rules
