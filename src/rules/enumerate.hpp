#pragma once
// Enumeration of whole rule classes (DESIGN.md S2).
//
// The paper's theorems quantify over classes of rules ("for ANY monotone
// symmetric rule..."), so the test suite and the experiment harness sweep
// entire classes rather than spot-check single rules.

#include <cstdint>
#include <vector>

#include "rules/rule.hpp"

namespace tca::rules {

/// All monotone symmetric Boolean functions of the given arity, as
/// SymmetricRules. These are exactly: constant 0, constant 1, and the
/// k-of-n thresholds for k = 1..arity — i.e. (arity + 2) rules. This
/// classical fact is itself verified by a test (enumerate_test).
[[nodiscard]] std::vector<SymmetricRule> all_monotone_symmetric(
    std::uint32_t arity);

/// All 2^(arity+1) symmetric (totalistic) Boolean functions of given arity.
/// Throws for arity > 20.
[[nodiscard]] std::vector<SymmetricRule> all_symmetric(std::uint32_t arity);

/// All monotone Boolean functions of the given arity as truth tables
/// (Dedekind numbers: 2, 3, 6, 20, 168 for arity 0..4). Brute-force over
/// all tables; throws for arity > 4.
[[nodiscard]] std::vector<std::vector<State>> all_monotone_tables(
    std::uint32_t arity);

/// All non-constant k-of-n rules at the given arity (k = 1..arity).
[[nodiscard]] std::vector<KOfNRule> all_k_of_n(std::uint32_t arity);

}  // namespace tca::rules
