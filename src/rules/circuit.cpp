#include "rules/circuit.hpp"

#include <bit>

#include "rules/analyze.hpp"

namespace tca::rules {
namespace {

CircuitPlan unsupported(const char* why) {
  CircuitPlan p;
  p.kind = CircuitPlan::Kind::kUnsupported;
  p.why_unsupported = why;
  return p;
}

CircuitPlan constant_plan(State value) {
  CircuitPlan p;
  p.kind = CircuitPlan::Kind::kConstant;
  p.constant_value = value;
  return p;
}

CircuitPlan threshold_plan(std::uint32_t k, std::uint32_t arity) {
  if (k == 0) return constant_plan(1);
  if (k > arity) return constant_plan(0);
  CircuitPlan p;
  p.kind = CircuitPlan::Kind::kThreshold;
  p.k = k;
  return p;
}

/// Mask with bits 0..arity set (the domain of a count mask).
std::uint64_t full_count_mask(std::uint32_t arity) {
  return arity >= 63 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << (arity + 1)) - 1;
}

/// Classifies a count-indexed accept mask (bit s = output when exactly s
/// inputs are 1) into the cheapest circuit: constant, threshold (mask is a
/// suffix run), parity (mask is the odd counts), or a general count mask.
CircuitPlan from_accept_mask(std::uint64_t mask, std::uint32_t arity) {
  const std::uint64_t full = full_count_mask(arity);
  mask &= full;
  if (mask == 0) return constant_plan(0);
  if (mask == full) return constant_plan(1);
  const auto k = static_cast<std::uint32_t>(std::countr_zero(mask));
  if (mask == (full >> k << k)) return threshold_plan(k, arity);
  if (mask == (0xAAAAAAAAAAAAAAAAULL & full)) {
    CircuitPlan p;
    p.kind = CircuitPlan::Kind::kParity;
    return p;
  }
  CircuitPlan p;
  p.kind = CircuitPlan::Kind::kCountMask;
  p.accept_mask = mask;
  return p;
}

/// Count mask of a SYMMETRIC truth table (table[idx] depends only on
/// popcount(idx)); caller guarantees is_symmetric(table).
std::uint64_t mask_from_symmetric_table(const std::vector<State>& table,
                                        std::uint32_t arity) {
  std::uint64_t mask = 0;
  for (std::uint32_t s = 0; s <= arity; ++s) {
    // Representative input with s ones: the s low bits set.
    const std::size_t idx = (std::size_t{1} << s) - 1;
    if (table[idx] != 0) mask |= std::uint64_t{1} << s;
  }
  return mask;
}

CircuitPlan plan_from_table(std::vector<State> table, std::uint32_t arity) {
  if (arity <= kMaxCountMaskArity && is_symmetric(table)) {
    return from_accept_mask(mask_from_symmetric_table(table, arity), arity);
  }
  if (arity > kMaxMintermArity) {
    return unsupported("asymmetric table arity too large for minterms");
  }
  CircuitPlan p;
  p.kind = CircuitPlan::Kind::kMinterms;
  p.table = std::move(table);
  return p;
}

CircuitPlan plan(const MajorityRule& r, std::uint32_t arity) {
  // ones*2 > m  <=>  ones >= floor(m/2)+1;  ones*2 >= m  <=>  ones >=
  // ceil(m/2).
  const std::uint32_t k =
      r.tie == MajorityTie::kZero ? arity / 2 + 1 : (arity + 1) / 2;
  return threshold_plan(k, arity);
}

CircuitPlan plan(const KOfNRule& r, std::uint32_t arity) {
  return threshold_plan(r.k, arity);
}

CircuitPlan plan(const SymmetricRule& r, std::uint32_t arity) {
  if (r.accept.size() != std::size_t{arity} + 1) {
    return unsupported("symmetric rule accept size != arity+1");
  }
  if (arity > kMaxCountMaskArity) {
    return unsupported("symmetric rule arity too large for count mask");
  }
  std::uint64_t mask = 0;
  for (std::uint32_t s = 0; s <= arity; ++s) {
    if (r.accept[s] != 0) mask |= std::uint64_t{1} << s;
  }
  return from_accept_mask(mask, arity);
}

CircuitPlan plan(const ParityRule&, std::uint32_t) {
  CircuitPlan p;
  p.kind = CircuitPlan::Kind::kParity;
  return p;
}

CircuitPlan plan(const TableRule& r, std::uint32_t arity) {
  if (r.table.size() != std::size_t{1} << arity) {
    return unsupported("table size != 2^arity");
  }
  return plan_from_table(r.table, arity);
}

CircuitPlan plan(const WeightedThresholdRule& r, std::uint32_t arity) {
  if (r.weights.size() != arity) {
    return unsupported("weighted threshold weight count != arity");
  }
  bool uniform = true;
  for (std::int32_t w : r.weights) uniform = uniform && w == r.weights[0];
  if (uniform && arity > 0) {
    const std::int64_t w = r.weights[0];
    const std::int64_t theta = r.theta;
    if (w > 0) {
      // ones*w >= theta  <=>  ones >= ceil(theta/w).
      const std::int64_t k = theta <= 0 ? 0 : (theta + w - 1) / w;
      return threshold_plan(static_cast<std::uint32_t>(k), arity);
    }
    if (w == 0) return constant_plan(theta <= 0 ? 1 : 0);
    // Negative uniform weight: antitone in the count; fall through to the
    // truth-table route (becomes a count mask).
  }
  if (arity > kMaxMintermArity) {
    return unsupported("weighted threshold arity too large");
  }
  return plan_from_table(truth_table(Rule{r}, arity), arity);
}

CircuitPlan plan(const OuterTotalisticRule& r, std::uint32_t arity) {
  if (arity == 0 || r.self_index >= arity) {
    return unsupported("outer-totalistic self index out of range");
  }
  if (r.born.size() != arity || r.survive.size() != arity) {
    return unsupported("outer-totalistic born/survive size != arity");
  }
  if (arity - 1 > kMaxCountMaskArity) {
    return unsupported("outer-totalistic arity too large for count mask");
  }
  CircuitPlan p;
  p.kind = CircuitPlan::Kind::kOuterTotalistic;
  p.self_index = r.self_index;
  for (std::uint32_t s = 0; s < arity; ++s) {
    if (r.born[s] != 0) p.born_mask |= std::uint64_t{1} << s;
    if (r.survive[s] != 0) p.survive_mask |= std::uint64_t{1} << s;
  }
  return p;
}

}  // namespace

CircuitPlan circuit_plan(const Rule& rule, std::uint32_t arity) {
  const std::uint32_t fixed = required_arity(rule);
  if (fixed != 0 && fixed != arity) {
    return unsupported("rule arity does not match neighborhood size");
  }
  return std::visit([arity](const auto& r) { return plan(r, arity); }, rule);
}

}  // namespace tca::rules
