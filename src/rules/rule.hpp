#pragma once
// Local update rules (DESIGN.md S2).
//
// A rule maps an ordered tuple of Boolean inputs (the node's neighborhood
// values; the node's own state is one of the inputs iff the automaton has
// memory) to the node's next Boolean state — the delta function of the FSM
// in Definition 2 of the paper.
//
// Rules are a closed std::variant so the simulation engines can
// monomorphize their inner loops with std::visit instead of paying a
// virtual call per cell per step (see DESIGN.md decision 1 and the
// `ablation_dispatch` bench).
//
// Input-order conventions:
//  * Symmetric rules (Majority, KOfN, Symmetric, Parity) ignore input order.
//  * TableRule interprets inputs as a binary number with inputs[0] as the
//    MOST significant bit. For a 1-D radius-1 neighborhood ordered
//    (left, self, right) this matches the Wolfram elementary-CA numbering.
//  * WeightedThresholdRule pairs weights[i] with inputs[i].

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace tca::rules {

/// Cell state: 0 or 1 (Boolean CA; 0 is the quiescent state).
using State = std::uint8_t;

/// Tie handling for MAJORITY over an even number of inputs. The paper only
/// exercises odd input counts (2r+1 with memory), where ties cannot occur.
enum class MajorityTie : std::uint8_t {
  kZero,  ///< exactly half ones -> 0 (strict majority required for 1)
  kOne,   ///< exactly half ones -> 1
};

/// MAJORITY rule: next state is the majority value among the inputs.
/// Arity-generic (adapts to however many inputs it is given).
struct MajorityRule {
  MajorityTie tie = MajorityTie::kZero;
  friend bool operator==(const MajorityRule&, const MajorityRule&) = default;
};

/// k-of-n threshold rule: 1 iff at least `k` inputs are 1. Arity-generic.
/// k = 0 is the constant-1 rule; k > arity yields constant 0.
/// Every monotone symmetric Boolean function is a k-of-n rule (or constant),
/// which is why this type represents the paper's entire Theorem 1 class.
struct KOfNRule {
  std::uint32_t k = 1;
  friend bool operator==(const KOfNRule&, const KOfNRule&) = default;
};

/// Totalistic/symmetric rule: the next state depends only on the NUMBER of
/// ones among the inputs. accept[s] is the output when exactly s inputs are
/// 1; accept.size() must be arity+1.
struct SymmetricRule {
  std::vector<State> accept;
  friend bool operator==(const SymmetricRule&, const SymmetricRule&) = default;
};

/// XOR/parity rule: 1 iff an odd number of inputs are 1. Arity-generic.
/// The paper's Section 3.1 motivating example (non-monotone).
struct ParityRule {
  friend bool operator==(const ParityRule&, const ParityRule&) = default;
};

/// Arbitrary truth-table rule of fixed arity m; table.size() must be 2^m.
/// Index convention: inputs[0] is the most significant bit.
struct TableRule {
  std::vector<State> table;
  friend bool operator==(const TableRule&, const TableRule&) = default;
};

/// Linear threshold rule with explicit integer weights: output 1 iff
/// sum_i weights[i]*inputs[i] >= theta. Fixed arity = weights.size().
struct WeightedThresholdRule {
  std::vector<std::int32_t> weights;
  std::int32_t theta = 1;
  friend bool operator==(const WeightedThresholdRule&,
                         const WeightedThresholdRule&) = default;
};

/// Outer-totalistic (semi-totalistic) rule: the next state depends on the
/// node's OWN state and the NUMBER of live neighbors — the Game-of-Life
/// family. `self_index` says which input slot carries the node's own state
/// (0 for graph-derived neighborhoods with memory; r for spatially-ordered
/// radius-r line neighborhoods). born[s] / survive[s] give the output when
/// the self cell is 0 / 1 and exactly s OTHER inputs are 1; both vectors
/// must be sized arity (the number of non-self inputs + 1).
struct OuterTotalisticRule {
  std::vector<State> born;
  std::vector<State> survive;
  std::uint32_t self_index = 0;
  friend bool operator==(const OuterTotalisticRule&,
                         const OuterTotalisticRule&) = default;
};

/// The closed set of rule kinds understood by the engines.
using Rule = std::variant<MajorityRule, KOfNRule, SymmetricRule, ParityRule,
                          TableRule, WeightedThresholdRule,
                          OuterTotalisticRule>;

/// Number of ones among the inputs.
[[nodiscard]] inline std::uint32_t count_ones(std::span<const State> inputs) {
  std::uint32_t ones = 0;
  for (State s : inputs) ones += s;
  return ones;
}

/// Evaluates a single rule kind on an input tuple.
[[nodiscard]] inline State eval(const MajorityRule& r,
                                std::span<const State> inputs) {
  const std::uint32_t ones = count_ones(inputs);
  const std::uint32_t m = static_cast<std::uint32_t>(inputs.size());
  if (r.tie == MajorityTie::kZero) return ones * 2 > m ? State{1} : State{0};
  return ones * 2 >= m ? State{1} : State{0};
}

[[nodiscard]] inline State eval(const KOfNRule& r,
                                std::span<const State> inputs) {
  return count_ones(inputs) >= r.k ? State{1} : State{0};
}

[[nodiscard]] State eval(const SymmetricRule& r, std::span<const State> inputs);

[[nodiscard]] inline State eval(const ParityRule&,
                                std::span<const State> inputs) {
  return static_cast<State>(count_ones(inputs) & 1u);
}

[[nodiscard]] State eval(const TableRule& r, std::span<const State> inputs);

[[nodiscard]] State eval(const WeightedThresholdRule& r,
                         std::span<const State> inputs);

[[nodiscard]] State eval(const OuterTotalisticRule& r,
                         std::span<const State> inputs);

/// Evaluates any rule on an input tuple (single visit; engines that care
/// about the per-cell cost should visit once and run a monomorphic loop).
[[nodiscard]] inline State eval(const Rule& rule,
                                std::span<const State> inputs) {
  return std::visit([&](const auto& r) { return eval(r, inputs); }, rule);
}

/// The arity a rule requires, or 0 if the rule adapts to any arity.
[[nodiscard]] std::uint32_t required_arity(const Rule& rule);

/// Short human-readable rule name, e.g. "majority", "3-of-5", "parity".
[[nodiscard]] std::string describe(const Rule& rule);

/// MAJORITY shorthand used throughout the paper.
[[nodiscard]] inline Rule majority() { return MajorityRule{}; }

/// XOR shorthand (Section 3.1 example).
[[nodiscard]] inline Rule parity() { return ParityRule{}; }

/// Simple-majority threshold as an explicit k-of-n for odd arity m:
/// k = (m+1)/2. Throws for even m (ambiguous without a tie rule).
[[nodiscard]] Rule majority_k_of(std::uint32_t arity);

/// Builds the radius-1 TableRule for a Wolfram elementary-CA code (0..255).
/// Intended for 1-D neighborhoods ordered (left, self, right).
[[nodiscard]] TableRule wolfram(std::uint32_t code);

/// Conway's Game of Life (B3/S23) over an 8-neighbor (Moore) neighborhood,
/// expressed for graph-derived automata with memory (self input first).
[[nodiscard]] OuterTotalisticRule game_of_life();

/// General birth/survival rule "B<digits>/S<digits>" over `neighbors`
/// non-self inputs (e.g. life_like({3}, {2, 3}, 8) == game_of_life()).
[[nodiscard]] OuterTotalisticRule life_like(std::span<const std::uint32_t> born,
                                            std::span<const std::uint32_t> survive,
                                            std::uint32_t neighbors,
                                            std::uint32_t self_index = 0);

}  // namespace tca::rules
