#include "rules/enumerate.hpp"

#include <stdexcept>

#include "rules/analyze.hpp"
#include "runtime/error.hpp"

namespace tca::rules {

std::vector<SymmetricRule> all_monotone_symmetric(std::uint32_t arity) {
  std::vector<SymmetricRule> out;
  out.reserve(arity + 2);
  // Monotone symmetric <=> accept vector is a nondecreasing 0/1 step
  // function of the ones-count: 0^j 1^(arity+1-j) for j = 0..arity+1.
  for (std::uint32_t j = 0; j <= arity + 1; ++j) {
    SymmetricRule r;
    r.accept.assign(arity + 1, 0);
    for (std::uint32_t s = j; s <= arity; ++s) r.accept[s] = 1;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<SymmetricRule> all_symmetric(std::uint32_t arity) {
  tca::require_explicit_bits(arity, 20, "all_symmetric");
  const std::size_t count = std::size_t{1} << (arity + 1);
  std::vector<SymmetricRule> out;
  out.reserve(count);
  for (std::size_t bits = 0; bits < count; ++bits) {
    SymmetricRule r;
    r.accept.resize(arity + 1);
    for (std::uint32_t s = 0; s <= arity; ++s) {
      r.accept[s] = static_cast<State>((bits >> s) & 1u);
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<std::vector<State>> all_monotone_tables(std::uint32_t arity) {
  if (arity > 4) {
    throw tca::DomainTooLargeError("all_monotone_tables: arity > 4");
  }
  const std::size_t rows = std::size_t{1} << arity;
  const std::size_t tables = std::size_t{1} << rows;
  std::vector<std::vector<State>> out;
  for (std::size_t bits = 0; bits < tables; ++bits) {
    std::vector<State> table(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      table[r] = static_cast<State>((bits >> r) & 1u);
    }
    if (is_monotone(table)) out.push_back(std::move(table));
  }
  return out;
}

std::vector<KOfNRule> all_k_of_n(std::uint32_t arity) {
  std::vector<KOfNRule> out;
  out.reserve(arity);
  for (std::uint32_t k = 1; k <= arity; ++k) out.push_back(KOfNRule{k});
  return out;
}

}  // namespace tca::rules
