#include "rules/rule.hpp"

#include "runtime/error.hpp"

namespace tca::rules {

State eval(const SymmetricRule& r, std::span<const State> inputs) {
  const std::uint32_t ones = count_ones(inputs);
  if (r.accept.size() != inputs.size() + 1) {
    throw tca::InvalidArgumentError(
        "SymmetricRule: accept vector sized " + std::to_string(r.accept.size()) +
        " but arity is " + std::to_string(inputs.size()));
  }
  return r.accept[ones];
}

State eval(const TableRule& r, std::span<const State> inputs) {
  if (r.table.size() != (std::size_t{1} << inputs.size())) {
    throw tca::InvalidArgumentError(
        "TableRule: table sized " + std::to_string(r.table.size()) +
        " but arity is " + std::to_string(inputs.size()));
  }
  std::size_t idx = 0;
  for (State s : inputs) idx = (idx << 1) | s;
  return r.table[idx];
}

State eval(const WeightedThresholdRule& r, std::span<const State> inputs) {
  if (r.weights.size() != inputs.size()) {
    throw tca::InvalidArgumentError(
        "WeightedThresholdRule: " + std::to_string(r.weights.size()) +
        " weights but arity is " + std::to_string(inputs.size()));
  }
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    acc += static_cast<std::int64_t>(r.weights[i]) * inputs[i];
  }
  return acc >= r.theta ? State{1} : State{0};
}

State eval(const OuterTotalisticRule& r, std::span<const State> inputs) {
  if (r.born.size() != inputs.size() || r.survive.size() != inputs.size()) {
    throw tca::InvalidArgumentError(
        "OuterTotalisticRule: born/survive sized for arity " +
        std::to_string(r.born.size()) + " but got " +
        std::to_string(inputs.size()) + " inputs");
  }
  if (r.self_index >= inputs.size()) {
    throw tca::InvalidArgumentError(
        "OuterTotalisticRule: self_index out of range",
        tca::ErrorCode::kOutOfRange);
  }
  const State self = inputs[r.self_index];
  const std::uint32_t others = count_ones(inputs) - self;
  return self != 0 ? r.survive[others] : r.born[others];
}

std::uint32_t required_arity(const Rule& rule) {
  struct Visitor {
    std::uint32_t operator()(const MajorityRule&) const { return 0; }
    std::uint32_t operator()(const KOfNRule&) const { return 0; }
    std::uint32_t operator()(const ParityRule&) const { return 0; }
    std::uint32_t operator()(const SymmetricRule& r) const {
      return static_cast<std::uint32_t>(r.accept.size() - 1);
    }
    std::uint32_t operator()(const TableRule& r) const {
      std::uint32_t m = 0;
      while ((std::size_t{1} << m) < r.table.size()) ++m;
      return m;
    }
    std::uint32_t operator()(const WeightedThresholdRule& r) const {
      return static_cast<std::uint32_t>(r.weights.size());
    }
    std::uint32_t operator()(const OuterTotalisticRule& r) const {
      return static_cast<std::uint32_t>(r.born.size());
    }
  };
  return std::visit(Visitor{}, rule);
}

std::string describe(const Rule& rule) {
  struct Visitor {
    std::string operator()(const MajorityRule& r) const {
      return r.tie == MajorityTie::kZero ? "majority(tie->0)"
                                         : "majority(tie->1)";
    }
    std::string operator()(const KOfNRule& r) const {
      return std::to_string(r.k) + "-of-n";
    }
    std::string operator()(const ParityRule&) const { return "parity"; }
    std::string operator()(const SymmetricRule& r) const {
      std::string s = "symmetric[";
      for (State a : r.accept) s += static_cast<char>('0' + a);
      return s + "]";
    }
    std::string operator()(const TableRule& r) const {
      std::string s = "table[";
      for (State a : r.table) s += static_cast<char>('0' + a);
      return s + "]";
    }
    std::string operator()(const WeightedThresholdRule& r) const {
      return "threshold(theta=" + std::to_string(r.theta) + ", " +
             std::to_string(r.weights.size()) + " weights)";
    }
    std::string operator()(const OuterTotalisticRule& r) const {
      std::string s = "outer-totalistic(B";
      for (std::size_t i = 0; i < r.born.size(); ++i) {
        if (r.born[i] != 0) s += std::to_string(i);
      }
      s += "/S";
      for (std::size_t i = 0; i < r.survive.size(); ++i) {
        if (r.survive[i] != 0) s += std::to_string(i);
      }
      return s + ")";
    }
  };
  return std::visit(Visitor{}, rule);
}

Rule majority_k_of(std::uint32_t arity) {
  if (arity % 2 == 0) {
    throw tca::InvalidArgumentError("majority_k_of: arity must be odd");
  }
  return KOfNRule{(arity + 1) / 2};
}

OuterTotalisticRule life_like(std::span<const std::uint32_t> born,
                              std::span<const std::uint32_t> survive,
                              std::uint32_t neighbors,
                              std::uint32_t self_index) {
  OuterTotalisticRule r;
  r.born.assign(neighbors + 1, 0);
  r.survive.assign(neighbors + 1, 0);
  r.self_index = self_index;
  for (std::uint32_t b : born) {
    if (b > neighbors) {
      throw tca::InvalidArgumentError("life_like: born count > neighbors");
    }
    r.born[b] = 1;
  }
  for (std::uint32_t s : survive) {
    if (s > neighbors) {
      throw tca::InvalidArgumentError("life_like: survive count > neighbors");
    }
    r.survive[s] = 1;
  }
  return r;
}

OuterTotalisticRule game_of_life() {
  const std::uint32_t born[] = {3};
  const std::uint32_t survive[] = {2, 3};
  return life_like(born, survive, 8);
}

TableRule wolfram(std::uint32_t code) {
  if (code > 255) {
    throw tca::InvalidArgumentError("wolfram: code must be in [0, 255]");
  }
  TableRule r;
  r.table.resize(8);
  for (std::size_t idx = 0; idx < 8; ++idx) {
    r.table[idx] = static_cast<State>((code >> idx) & 1u);
  }
  return r;
}

}  // namespace tca::rules
