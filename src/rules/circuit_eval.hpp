#pragma once
// Word-generic CircuitPlan evaluation (docs/performance.md).
//
// circuit.hpp compiles a rule into a CircuitPlan once per automaton; this
// header evaluates that plan over ANY machine-word type, so the same
// adder-tree/count-mask/minterm circuits serve the 64-lane scalar
// bit-slice engine (Word = uint64_t) and every SIMD-widened tier
// (Word = core::WideWord<W>, compiled per ISA in
// core/batch_kernels_{scalar,avx2,avx512,neon}.cpp) without per-ISA
// rewrites. A Word must provide &, |, ^, ~ and default construction;
// WordTraits supplies the all-zeros/all-ones constants and the
// any-bit-set test the adder tree's early-out uses.
//
// The algorithms here are a line-for-line generalization of the original
// uint64 implementation, so every tier is bit-identical to the scalar
// engine by construction (and proven so by tests/simd_kernels_test.cpp).

#include <bit>
#include <cstdint>
#include <span>

#include "rules/circuit.hpp"

namespace tca::rules {

/// Constants and tests a plan evaluator needs from its word type. The
/// primary template forwards to static members (core::WideWord); the
/// uint64_t specialization serves the scalar engine.
template <class Word>
struct WordTraits {
  [[nodiscard]] static constexpr Word zero() noexcept { return Word::zero(); }
  [[nodiscard]] static constexpr Word ones() noexcept { return Word::ones(); }
  [[nodiscard]] static constexpr bool any(const Word& w) noexcept {
    return w.any();
  }
};

template <>
struct WordTraits<std::uint64_t> {
  [[nodiscard]] static constexpr std::uint64_t zero() noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t ones() noexcept {
    return ~std::uint64_t{0};
  }
  [[nodiscard]] static constexpr bool any(std::uint64_t w) noexcept {
    return w != 0;
  }
};

/// Evaluates compiled plans over gathered input planes. Holds the
/// adder-tree scratch (8 count planes = arity <= 255), so give each
/// thread its own instance.
template <class Word>
class PlanEvaluator {
 public:
  /// One output plane for `plan` over `fanin` (one plane per input slot,
  /// already gathered). `plan` must be supported and compiled at arity
  /// fanin.size().
  [[nodiscard]] Word eval(const CircuitPlan& plan,
                          std::span<const Word> fanin) {
    using Kind = CircuitPlan::Kind;
    const auto m = static_cast<std::uint32_t>(fanin.size());
    switch (plan.kind) {
      case Kind::kConstant:
        return plan.constant_value != 0 ? WordTraits<Word>::ones()
                                        : WordTraits<Word>::zero();
      case Kind::kParity: {
        Word x = WordTraits<Word>::zero();
        for (std::uint32_t i = 0; i < m; ++i) x ^= fanin[i];
        return x;
      }
      case Kind::kThreshold:
        return compare_ge(plan.k, count_planes(fanin, m));
      case Kind::kCountMask:
        return select_counts(plan.accept_mask, count_planes(fanin, m));
      case Kind::kOuterTotalistic: {
        const Word self = fanin[plan.self_index];
        const unsigned used = count_planes(fanin, plan.self_index);
        const Word born = select_counts(plan.born_mask, used);
        const Word survive = select_counts(plan.survive_mask, used);
        return (~self & born) | (self & survive);
      }
      case Kind::kMinterms: {
        Word acc = WordTraits<Word>::zero();
        for (std::size_t p = 0; p < plan.table.size(); ++p) {
          if (plan.table[p] == 0) continue;
          Word term = WordTraits<Word>::ones();
          for (std::uint32_t i = 0; i < m; ++i) {
            term &= ((p >> (m - 1 - i)) & 1u) != 0 ? fanin[i] : ~fanin[i];
          }
          acc |= term;
        }
        return acc;
      }
      case Kind::kUnsupported:
        break;  // unreachable: callers reject unsupported plans up front
    }
    return WordTraits<Word>::zero();
  }

 private:
  /// Lane-wise ripple addition of one-bit inputs: plane b of cnt_ is bit b
  /// of the per-lane running count. A plane is valid only below `used`, so
  /// no zeroing between calls is needed. Skips fanin[skip] when < size
  /// (the outer-totalistic self slot).
  unsigned count_planes(std::span<const Word> fanin, std::uint32_t skip) {
    unsigned used = 0;
    const auto m = static_cast<std::uint32_t>(fanin.size());
    for (std::uint32_t i = 0; i < m; ++i) {
      if (i == skip) continue;
      Word carry = fanin[i];
      for (unsigned b = 0; WordTraits<Word>::any(carry); ++b) {
        if (b == used) {
          cnt_[used++] = carry;
          break;
        }
        const Word t = cnt_[b] & carry;
        cnt_[b] ^= carry;
        carry = t;
      }
    }
    return used;
  }

  /// Lane-wise (count >= k) as the carry-out of count + (2^used - k).
  [[nodiscard]] Word compare_ge(std::uint32_t k, unsigned used) const {
    if (k >= std::uint64_t{1} << used) {
      return WordTraits<Word>::zero();  // count < 2^used <= k
    }
    const std::uint64_t add = (std::uint64_t{1} << used) - k;
    Word carry = WordTraits<Word>::zero();
    for (unsigned b = 0; b < used; ++b) {
      carry = ((add >> b) & 1u) != 0 ? cnt_[b] | carry : cnt_[b] & carry;
    }
    return carry;
  }

  /// OR of lane-wise (count == s) over the accepted counts s.
  [[nodiscard]] Word select_counts(std::uint64_t mask, unsigned used) const {
    Word acc = WordTraits<Word>::zero();
    for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
      const auto s = static_cast<unsigned>(std::countr_zero(bits));
      if ((s >> used) != 0) continue;  // counts never reach 2^used
      Word eq = WordTraits<Word>::ones();
      for (unsigned b = 0; b < used; ++b) {
        eq &= ((s >> b) & 1u) != 0 ? cnt_[b] : ~cnt_[b];
      }
      acc |= eq;
    }
    return acc;
  }

  Word cnt_[8] = {};  ///< adder-tree count planes
};

}  // namespace tca::rules
