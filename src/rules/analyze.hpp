#pragma once
// Boolean-function property analyzers (DESIGN.md S2).
//
// The paper's class boundaries are properties of the local rule:
//  * Theorem 1 covers MONOTONE SYMMETRIC rules (== simple thresholds),
//  * the XOR example works because parity is NOT monotone,
//  * "totalistic" CA are exactly those with symmetric rules.
// These analyzers let tests and experiments walk whole rule classes instead
// of hand-picked instances.

#include <cstdint>
#include <optional>
#include <vector>

#include "rules/rule.hpp"

namespace tca::rules {

/// Full truth table of `rule` at arity `m`: result[idx] for idx in [0, 2^m),
/// with inputs[0] as the most significant bit (TableRule convention).
/// Throws if the rule has a fixed arity different from m, or m > 20.
[[nodiscard]] std::vector<State> truth_table(const Rule& rule,
                                             std::uint32_t arity);

/// True if f(x) <= f(y) whenever x <= y bitwise (monotone nondecreasing).
[[nodiscard]] bool is_monotone(const std::vector<State>& table);

/// True if the output depends only on the number of ones in the input.
[[nodiscard]] bool is_symmetric(const std::vector<State>& table);

/// True if the function is constant (0 or 1 everywhere).
[[nodiscard]] bool is_constant(const std::vector<State>& table);

/// True if f(~x) = ~f(x) for all x (self-dual; e.g. odd-arity majority).
[[nodiscard]] bool is_self_dual(const std::vector<State>& table);

/// Convenience overloads evaluating the rule at a given arity first.
[[nodiscard]] bool is_monotone(const Rule& rule, std::uint32_t arity);
[[nodiscard]] bool is_symmetric(const Rule& rule, std::uint32_t arity);

/// An integer-weight linear threshold representation: output 1 iff
/// sum_i weights[i] * x_i >= theta.
struct ThresholdForm {
  std::vector<std::int32_t> weights;
  std::int32_t theta = 0;
};

/// If the function given by `table` is a linear threshold function, returns
/// an integer representation; otherwise std::nullopt.
///
/// Implementation: perceptron training on the full truth table. The
/// perceptron convergence theorem guarantees termination when the function
/// is separable; every threshold function of m <= 9 variables has an
/// integer representation with |weights| <= 2^(m^2) but in practice tiny,
/// so we cap iterations generously and report nullopt past the cap.
/// Exact for every function exercised in this repository (arity <= 7).
[[nodiscard]] std::optional<ThresholdForm> threshold_representation(
    const std::vector<State>& table, std::uint64_t max_updates = 2'000'000);

/// If the symmetric function `table` is monotone and non-constant, returns
/// the unique k such that f == (ones >= k); otherwise std::nullopt.
[[nodiscard]] std::optional<std::uint32_t> as_k_of_n(
    const std::vector<State>& table);

/// Number of input variables the function actually depends on.
[[nodiscard]] std::uint32_t essential_arity(const std::vector<State>& table);

}  // namespace tca::rules
