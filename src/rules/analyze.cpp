#include "rules/analyze.hpp"

#include <bit>
#include <stdexcept>

#include "runtime/error.hpp"

namespace tca::rules {
namespace {

std::uint32_t table_arity(const std::vector<State>& table) {
  if (table.empty() || (table.size() & (table.size() - 1)) != 0) {
    throw tca::InvalidArgumentError("table size must be a power of two");
  }
  return static_cast<std::uint32_t>(std::countr_zero(table.size()));
}

}  // namespace

std::vector<State> truth_table(const Rule& rule, std::uint32_t arity) {
  tca::require_explicit_bits(arity, 20, "truth_table");
  const std::uint32_t fixed = required_arity(rule);
  if (fixed != 0 && fixed != arity) {
    throw tca::InvalidArgumentError(
        "truth_table: rule arity mismatch", tca::ErrorCode::kSizeMismatch);
  }
  const std::size_t size = std::size_t{1} << arity;
  std::vector<State> table(size);
  std::vector<State> inputs(arity);
  for (std::size_t idx = 0; idx < size; ++idx) {
    for (std::uint32_t b = 0; b < arity; ++b) {
      inputs[b] = static_cast<State>((idx >> (arity - 1 - b)) & 1u);
    }
    table[idx] = eval(rule, inputs);
  }
  return table;
}

bool is_monotone(const std::vector<State>& table) {
  const std::uint32_t m = table_arity(table);
  // f monotone iff flipping any single 0-bit to 1 never decreases f.
  for (std::size_t x = 0; x < table.size(); ++x) {
    for (std::uint32_t b = 0; b < m; ++b) {
      const std::size_t bit = std::size_t{1} << b;
      if ((x & bit) == 0 && table[x] > table[x | bit]) return false;
    }
  }
  return true;
}

bool is_symmetric(const std::vector<State>& table) {
  const std::uint32_t m = table_arity(table);
  std::vector<std::int8_t> by_count(m + 1, -1);
  for (std::size_t x = 0; x < table.size(); ++x) {
    const auto ones = static_cast<std::uint32_t>(std::popcount(x));
    if (by_count[ones] < 0) {
      by_count[ones] = static_cast<std::int8_t>(table[x]);
    } else if (by_count[ones] != table[x]) {
      return false;
    }
  }
  return true;
}

bool is_constant(const std::vector<State>& table) {
  for (State s : table) {
    if (s != table[0]) return false;
  }
  return true;
}

bool is_self_dual(const std::vector<State>& table) {
  const std::size_t mask = table.size() - 1;
  for (std::size_t x = 0; x < table.size(); ++x) {
    if (table[x] == table[~x & mask]) return false;
  }
  return true;
}

bool is_monotone(const Rule& rule, std::uint32_t arity) {
  return is_monotone(truth_table(rule, arity));
}

bool is_symmetric(const Rule& rule, std::uint32_t arity) {
  return is_symmetric(truth_table(rule, arity));
}

std::optional<ThresholdForm> threshold_representation(
    const std::vector<State>& table, std::uint64_t max_updates) {
  const std::uint32_t m = table_arity(table);
  // Perceptron on inputs augmented with a constant -1 coordinate for the
  // threshold. Separating hyperplane: w.x - theta >= 0 <=> label 1. We train
  // with the strict-margin trick: treat ">= 0 vs < 0" by nudging labels.
  std::vector<std::int64_t> w(m, 0);
  std::int64_t theta = 0;
  bool converged = false;
  std::uint64_t updates = 0;
  while (!converged && updates <= max_updates) {
    converged = true;
    for (std::size_t x = 0; x < table.size(); ++x) {
      std::int64_t dot = -theta;
      for (std::uint32_t b = 0; b < m; ++b) {
        if (x >> (m - 1 - b) & 1u) dot += w[b];
      }
      const bool predict = dot >= 0;
      const bool want = table[x] != 0;
      if (predict == want) continue;
      converged = false;
      ++updates;
      const std::int64_t dir = want ? 1 : -1;
      for (std::uint32_t b = 0; b < m; ++b) {
        if (x >> (m - 1 - b) & 1u) w[b] += dir;
      }
      theta -= dir;  // augmented coordinate is -1
      // Keep the "want 0" side strict: when dir is -1 and dot was exactly
      // 0, the update above already moves dot negative next time around.
    }
  }
  if (!converged) return std::nullopt;
  ThresholdForm form;
  form.weights.reserve(m);
  for (std::int64_t wi : w) {
    form.weights.push_back(static_cast<std::int32_t>(wi));
  }
  form.theta = static_cast<std::int32_t>(theta);
  return form;
}

std::optional<std::uint32_t> as_k_of_n(const std::vector<State>& table) {
  if (!is_symmetric(table) || !is_monotone(table) || is_constant(table)) {
    return std::nullopt;
  }
  const std::uint32_t m = table_arity(table);
  // Monotone symmetric non-constant => accept vector is 0^k 1^(m+1-k).
  for (std::uint32_t k = 0; k <= m; ++k) {
    const std::size_t probe = (std::size_t{1} << k) - 1;  // k ones
    if (table[probe] != 0) return k;
  }
  return std::nullopt;  // unreachable for non-constant monotone symmetric
}

std::uint32_t essential_arity(const std::vector<State>& table) {
  const std::uint32_t m = table_arity(table);
  std::uint32_t essential = 0;
  for (std::uint32_t b = 0; b < m; ++b) {
    const std::size_t bit = std::size_t{1} << b;
    for (std::size_t x = 0; x < table.size(); ++x) {
      if ((x & bit) == 0 && table[x] != table[x | bit]) {
        ++essential;
        break;
      }
    }
  }
  return essential;
}

}  // namespace tca::rules
