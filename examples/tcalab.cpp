// tcalab — command-line laboratory over the whole library.
//
//   tcalab simulate   --rule R --n N [--radius r] [--steps T]
//                     [--scheme sync|seq|evenodd] [--start alt|random|BITS]
//                     [--seed S] [--render]
//   tcalab orbit      --rule R --n N [--radius r] [--start ...] [--seed S]
//   tcalab phasespace --rule R --n N [--radius r] [--sequential] [--dot]
//   tcalab preimage   --rule R [--radius r] --target BITS [--enumerate K]
//   tcalab rules      # list rule specs with their analyzed properties
//
// Rule specs: majority | parity | kofN:<k> | wolfram:<0..255>
// All automata are radius-r rings with memory (the paper's setting).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>

#include "analysis/census.hpp"
#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/render.hpp"
#include "core/simulation.hpp"
#include "core/trajectory.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/dot.hpp"
#include "phasespace/preimage.hpp"
#include "rules/analyze.hpp"

using namespace tca;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options.contains(key);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
      std::exit(2);
    }
    key = key.substr(2);
    std::string value = "true";
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

rules::Rule parse_rule(const std::string& spec) {
  if (spec == "majority") return rules::majority();
  if (spec == "parity") return rules::parity();
  if (spec.rfind("kofN:", 0) == 0) {
    return rules::KOfNRule{
        static_cast<std::uint32_t>(std::atoi(spec.c_str() + 5))};
  }
  if (spec.rfind("wolfram:", 0) == 0) {
    return rules::wolfram(
        static_cast<std::uint32_t>(std::atoi(spec.c_str() + 8)));
  }
  std::fprintf(stderr, "unknown rule '%s'\n", spec.c_str());
  std::exit(2);
}

core::Configuration parse_start(const std::string& spec, std::size_t n,
                                std::uint64_t seed) {
  if (spec == "alt") {
    core::Configuration c(n);
    for (std::size_t i = 1; i < n; i += 2) c.set(i, 1);
    return c;
  }
  if (spec == "random") {
    std::mt19937_64 rng(seed);
    core::Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    return c;
  }
  const auto c = core::Configuration::from_string(spec);
  if (c.size() != n) {
    std::fprintf(stderr, "start has %zu cells but n = %zu\n", c.size(), n);
    std::exit(2);
  }
  return c;
}

core::Automaton make_automaton(const Args& args, std::size_t n) {
  const auto radius =
      static_cast<std::uint32_t>(std::atoi(args.get("radius", "1").c_str()));
  return core::Automaton::line(n, radius, core::Boundary::kRing,
                               parse_rule(args.get("rule", "majority")),
                               core::Memory::kWith);
}

int cmd_simulate(const Args& args) {
  const auto n = static_cast<std::size_t>(std::atoi(args.get("n", "32").c_str()));
  const auto steps =
      static_cast<std::uint64_t>(std::atoll(args.get("steps", "16").c_str()));
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(args.get("seed", "1").c_str()));
  auto a = make_automaton(args, n);
  const auto start = parse_start(args.get("start", "random"), n, seed);

  const std::string scheme_name = args.get("scheme", "sync");
  core::UpdateScheme scheme = core::SynchronousScheme{};
  if (scheme_name == "seq") {
    scheme = core::SequentialScheme{core::identity_order(n)};
  } else if (scheme_name == "evenodd") {
    std::vector<std::vector<core::NodeId>> blocks;
    std::vector<core::NodeId> evens, odds;
    for (std::size_t v = 0; v < n; ++v) {
      (v % 2 == 0 ? evens : odds).push_back(static_cast<core::NodeId>(v));
    }
    blocks.push_back(evens);
    if (!odds.empty()) blocks.push_back(odds);
    scheme = core::BlockSequentialScheme{blocks};
  } else if (scheme_name != "sync") {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme_name.c_str());
    return 2;
  }

  core::Simulation sim(std::move(a), start, std::move(scheme));
  const bool render = args.has("render");
  const auto show = [&](std::uint64_t t, const core::Configuration& c) {
    if (render) {
      std::printf("t=%4llu  %s\n", static_cast<unsigned long long>(t),
                  core::render_row(c).c_str());
    }
  };
  show(0, sim.configuration());
  sim.observe(show);
  sim.run(steps);
  std::printf("after %llu %s steps: density %.4f, population %zu\n",
              static_cast<unsigned long long>(steps), scheme_name.c_str(),
              sim.density(), sim.configuration().popcount());
  return 0;
}

int cmd_orbit(const Args& args) {
  const auto n = static_cast<std::size_t>(std::atoi(args.get("n", "16").c_str()));
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(args.get("seed", "1").c_str()));
  const auto a = make_automaton(args, n);
  const auto start = parse_start(args.get("start", "random"), n, seed);
  const auto orbit = core::find_orbit_synchronous(a, start, 1u << 22);
  if (!orbit) {
    std::printf("no repeat within the step budget\n");
    return 1;
  }
  std::printf("start      %s\n", start.to_string().c_str());
  std::printf("transient  %llu\n",
              static_cast<unsigned long long>(orbit->transient));
  std::printf("period     %llu (%s)\n",
              static_cast<unsigned long long>(orbit->period),
              orbit->period == 1 ? "fixed point" : "proper cycle");
  std::printf("cycle entry %s\n", orbit->entry.to_string().c_str());
  return 0;
}

int cmd_phasespace(const Args& args) {
  const auto n = static_cast<std::size_t>(std::atoi(args.get("n", "8").c_str()));
  if (n > 20) {
    std::fprintf(stderr, "explicit phase spaces capped at n = 20\n");
    return 2;
  }
  const auto a = make_automaton(args, n);
  if (args.has("sequential")) {
    if (n > 14) {
      std::fprintf(stderr, "sequential phase spaces capped at n = 14\n");
      return 2;
    }
    const phasespace::ChoiceDigraph cd(a);
    const auto analysis = phasespace::analyze(cd);
    std::printf("states: %llu, choices per state: %u\n",
                static_cast<unsigned long long>(cd.num_states()),
                cd.num_choices());
    std::printf("fixed points:          %llu\n",
                static_cast<unsigned long long>(analysis.num_fixed_points));
    std::printf("pseudo-fixed points:   %llu\n",
                static_cast<unsigned long long>(
                    analysis.num_pseudo_fixed_points));
    std::printf("proper-cycle states:   %llu  => %s\n",
                static_cast<unsigned long long>(
                    analysis.num_proper_cycle_states),
                analysis.has_proper_cycle()
                    ? "some update sequence can cycle"
                    : "NO update order can ever cycle");
    return 0;
  }
  const auto fg = phasespace::FunctionalGraph::synchronous(a);
  if (args.has("dot")) {
    std::printf("%s", phasespace::to_dot(fg).c_str());
    return 0;
  }
  std::printf("%s", analysis::to_string(analysis::census(fg)).c_str());
  return 0;
}

int cmd_preimage(const Args& args) {
  const auto target_str = args.get("target", "");
  if (target_str.empty()) {
    std::fprintf(stderr, "--target BITS is required\n");
    return 2;
  }
  const auto radius =
      static_cast<std::uint32_t>(std::atoi(args.get("radius", "1").c_str()));
  const auto target = core::Configuration::from_string(target_str);
  const phasespace::RingPreimageSolver solver(
      parse_rule(args.get("rule", "majority")), radius, core::Memory::kWith);
  const auto count = solver.count(target);
  if (count == phasespace::kSaturated) {
    std::printf("preimages: > 2^64 - 1 (saturated)\n");
  } else {
    std::printf("preimages: %llu%s\n", static_cast<unsigned long long>(count),
                count == 0 ? "  (Garden of Eden)" : "");
  }
  const auto limit =
      static_cast<std::size_t>(std::atoi(args.get("enumerate", "0").c_str()));
  if (limit > 0) {
    for (const auto& x : solver.enumerate(target, limit)) {
      std::printf("  %s\n", x.to_string().c_str());
    }
  }
  return 0;
}

int cmd_fixedpoints(const Args& args) {
  // Transfer-matrix counts: fixed points and proper two-cycle states on a
  // (possibly huge) ring, no enumeration.
  const auto n = static_cast<std::size_t>(std::atoi(args.get("n", "64").c_str()));
  const auto radius =
      static_cast<std::uint32_t>(std::atoi(args.get("radius", "1").c_str()));
  const phasespace::RingPreimageSolver solver(
      parse_rule(args.get("rule", "majority")), radius, core::Memory::kWith);
  const auto print_count = [](const char* label, std::uint64_t value) {
    if (value == phasespace::kSaturated) {
      std::printf("%-24s > 2^64 - 1 (saturated)\n", label);
    } else {
      std::printf("%-24s %llu\n", label,
                  static_cast<unsigned long long>(value));
    }
  };
  const auto fixed = phasespace::count_fixed_points_ring(solver, n);
  print_count("fixed points:", fixed);
  if (radius <= 2) {
    const auto period2 = phasespace::count_period_two_states_ring(solver, n);
    print_count("period <= 2 states:", period2);
    if (fixed != phasespace::kSaturated &&
        period2 != phasespace::kSaturated) {
      print_count("proper 2-cycle states:", period2 - fixed);
    }
  }
  return 0;
}

int cmd_rules(const Args&) {
  std::printf("%-14s %-10s %-10s %-12s\n", "spec", "monotone", "symmetric",
              "threshold?");
  const auto report = [](const std::string& spec, const rules::Rule& r,
                         std::uint32_t arity) {
    const auto table = rules::truth_table(r, arity);
    std::printf("%-14s %-10s %-10s %-12s\n", spec.c_str(),
                rules::is_monotone(table) ? "yes" : "no",
                rules::is_symmetric(table) ? "yes" : "no",
                rules::threshold_representation(table) ? "yes" : "no");
  };
  report("majority", rules::majority(), 3);
  report("parity", rules::parity(), 3);
  report("kofN:1", rules::Rule{rules::KOfNRule{1}}, 3);
  report("kofN:3", rules::Rule{rules::KOfNRule{3}}, 3);
  report("wolfram:110", rules::Rule{rules::wolfram(110)}, 3);
  report("wolfram:90", rules::Rule{rules::wolfram(90)}, 3);
  report("wolfram:232", rules::Rule{rules::wolfram(232)}, 3);
  std::printf("\nTheorem 1 applies exactly to the monotone+symmetric rows.\n");
  return 0;
}

void usage() {
  std::printf(
      "tcalab <command> [options]\n"
      "  simulate    --rule R --n N [--radius r] [--steps T]\n"
      "              [--scheme sync|seq|evenodd] [--start alt|random|BITS]\n"
      "              [--seed S] [--render]\n"
      "  orbit       --rule R --n N [--radius r] [--start ...]\n"
      "  phasespace  --rule R --n N [--radius r] [--sequential] [--dot]\n"
      "  preimage    --rule R [--radius r] --target BITS [--enumerate K]\n"
      "  fixedpoints --rule R --n N [--radius r]\n"
      "  rules\n"
      "rules: majority | parity | kofN:<k> | wolfram:<code>\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "orbit") return cmd_orbit(args);
  if (args.command == "phasespace") return cmd_phasespace(args);
  if (args.command == "preimage") return cmd_preimage(args);
  if (args.command == "fixedpoints") return cmd_fixedpoints(args);
  if (args.command == "rules") return cmd_rules(args);
  usage();
  return args.command.empty() ? 0 : 2;
}
