// phase_space_explorer — a small CLI over the phase-space machinery.
//
// Usage:
//   phase_space_explorer [rule] [n] [mode]
//     rule: "majority" (default), "parity", "kofN:<k>", or a Wolfram code
//           "wolfram:<0..255>"
//     n:    ring size (default 4, explicit spaces capped at 16 for the
//           sequential mode)
//     mode: "parallel" (default), "sequential", "dot"
//
// Examples:
//   phase_space_explorer majority 6 parallel
//   phase_space_explorer parity 2 sequential     # the paper's Fig. 1(b)
//   phase_space_explorer wolfram:110 8 dot

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/census.hpp"
#include "core/automaton.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/dot.hpp"

using namespace tca;

namespace {

rules::Rule parse_rule(const std::string& spec) {
  if (spec == "majority") return rules::majority();
  if (spec == "parity") return rules::parity();
  if (spec.rfind("kofN:", 0) == 0) {
    return rules::KOfNRule{
        static_cast<std::uint32_t>(std::atoi(spec.c_str() + 5))};
  }
  if (spec.rfind("wolfram:", 0) == 0) {
    return rules::wolfram(
        static_cast<std::uint32_t>(std::atoi(spec.c_str() + 8)));
  }
  std::fprintf(stderr, "unknown rule '%s'\n", spec.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string rule_spec = argc > 1 ? argv[1] : "majority";
  const std::size_t n =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const std::string mode = argc > 3 ? argv[3] : "parallel";

  if (n < 2 || n > 16) {
    std::fprintf(stderr, "n must be in [2, 16] for explicit phase spaces\n");
    return 2;
  }
  const auto rule = parse_rule(rule_spec);
  const auto a =
      n >= 3 ? core::Automaton::line(n, 1, core::Boundary::kRing, rule,
                                     core::Memory::kWith)
             : core::Automaton::from_graph(graph::complete(2), rule,
                                           core::Memory::kWith);

  std::printf("rule %s on %zu-cell %s, with memory\n",
              rules::describe(rule).c_str(), n,
              n >= 3 ? "ring" : "pair");

  if (mode == "sequential") {
    const phasespace::ChoiceDigraph cd(a);
    std::printf("\nSequential (all node choices) phase space:\n%s",
                phasespace::to_text(cd).c_str());
    const auto analysis = phasespace::analyze(cd);
    std::printf("\nfixed points: %llu, pseudo-fixed points: %llu, "
                "proper-cycle states: %llu\n",
                static_cast<unsigned long long>(analysis.num_fixed_points),
                static_cast<unsigned long long>(
                    analysis.num_pseudo_fixed_points),
                static_cast<unsigned long long>(
                    analysis.num_proper_cycle_states));
  } else if (mode == "dot") {
    const auto fg = phasespace::FunctionalGraph::synchronous(a);
    std::printf("%s", phasespace::to_dot(fg).c_str());
  } else {
    const auto fg = phasespace::FunctionalGraph::synchronous(a);
    if (n <= 6) {
      std::printf("\nParallel phase space:\n%s",
                  phasespace::to_text(fg).c_str());
    }
    std::printf("\n%s", analysis::to_string(analysis::census(fg)).c_str());
  }
  return 0;
}
