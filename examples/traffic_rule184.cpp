// traffic_rule184 — a domain application of the 1-D CA engine: Wolfram
// rule 184 as the minimal single-lane traffic model. Cars (1s) advance
// into empty cells (0s); density below 1/2 gives free flow, above 1/2
// gives jams that propagate backwards. Prints a space-time diagram (via
// the packed kernel) and measures average flow vs density — the
// fundamental diagram of traffic theory.

#include <cstdio>
#include <random>

#include "core/configuration.hpp"
#include "core/packed_kernels.hpp"
#include "core/render.hpp"
#include "rules/rule.hpp"

using namespace tca;

namespace {

// Flow = number of cars that move this step = number of "10" patterns.
std::size_t count_moves(const core::Configuration& c) {
  const std::size_t n = c.size();
  std::size_t moves = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (c.get(i) == 1 && c.get((i + 1) % n) == 0) ++moves;
  }
  return moves;
}

}  // namespace

int main() {
  const auto rule = rules::wolfram(184);

  std::printf("Rule 184 single-lane traffic (cars move right)\n\n");
  std::printf("Space-time diagram, 64 cells, density 0.4:\n");
  {
    const std::size_t n = 64;
    std::mt19937_64 rng(7);
    core::Configuration road(n);
    std::size_t cars = 0;
    while (cars < n * 2 / 5) {
      const auto pos = static_cast<std::size_t>(rng() % n);
      if (road.get(pos) == 0) {
        road.set(pos, 1);
        ++cars;
      }
    }
    core::Configuration next(n);
    core::PackedScratch scratch(n);
    for (int t = 0; t < 24; ++t) {
      std::printf("  %s\n", core::render_row(road).c_str());
      core::step_ring_table3_packed(rule, road, next, scratch);
      std::swap(road, next);
    }
  }

  std::printf("\nFundamental diagram (flow vs density), 4096 cells, 2000 "
              "warmup steps:\n");
  std::printf("%10s %12s %16s\n", "density", "flow", "regime");
  const std::size_t n = 4096;
  std::mt19937_64 rng(99);
  for (const double density : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    core::Configuration road(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (std::uniform_real_distribution<double>(0, 1)(rng) < density) {
        road.set(i, 1);
      }
    }
    core::Configuration next(n);
    core::PackedScratch scratch(n);
    for (int t = 0; t < 2000; ++t) {
      core::step_ring_table3_packed(rule, road, next, scratch);
      std::swap(road, next);
    }
    // Measure flow averaged over 100 steps.
    double flow = 0;
    for (int t = 0; t < 100; ++t) {
      flow += static_cast<double>(count_moves(road));
      core::step_ring_table3_packed(rule, road, next, scratch);
      std::swap(road, next);
    }
    flow /= 100.0 * static_cast<double>(n);
    const double actual_density =
        static_cast<double>(road.popcount()) / static_cast<double>(n);
    std::printf("%10.2f %12.4f %16s\n", actual_density, flow,
                actual_density <= 0.5 ? "free flow" : "jammed");
  }
  std::printf("\nThe tent shape (flow = min(rho, 1 - rho)) is the rule-184 "
              "fundamental diagram; the kink at density 1/2 is the "
              "free-flow/jam transition.\n");
  return 0;
}
