// game_of_life — the outer-totalistic rule family on a 2-D Moore torus,
// driven through the Simulation facade: a glider crossing the torus, and
// the paper's parallel-vs-sequential question asked of Life itself (the
// glider exists only under perfect synchrony; sequential sweeps destroy
// it).

#include <cstdio>
#include <string>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/simulation.hpp"
#include "graph/builders.hpp"

using namespace tca;

namespace {

constexpr std::size_t kRows = 12;
constexpr std::size_t kCols = 24;

core::Configuration glider() {
  core::Configuration c(kRows * kCols);
  const auto at = [](std::size_t r, std::size_t col) {
    return r * kCols + col;
  };
  // The standard glider, moving down-right.
  c.set(at(1, 2), 1);
  c.set(at(2, 3), 1);
  c.set(at(3, 1), 1);
  c.set(at(3, 2), 1);
  c.set(at(3, 3), 1);
  return c;
}

void draw(const core::Configuration& c) {
  for (std::size_t r = 0; r < kRows; ++r) {
    std::string row;
    for (std::size_t col = 0; col < kCols; ++col) {
      row += c.get(r * kCols + col) != 0 ? 'O' : '.';
    }
    std::printf("  %s\n", row.c_str());
  }
}

}  // namespace

int main() {
  const auto g = graph::grid2d(kRows, kCols, /*torus=*/true,
                               graph::GridNeighborhood::kMoore);
  const auto life = core::Automaton::from_graph(
      g, rules::Rule{rules::game_of_life()}, core::Memory::kWith);

  std::printf("Conway's Life (%s) on a %zux%zu torus\n\n",
              rules::describe(rules::Rule{rules::game_of_life()}).c_str(),
              kRows, kCols);

  std::printf("Parallel evolution — the glider translates by (1,1) every 4 "
              "generations:\n");
  core::Simulation sim(life, glider(), core::SynchronousScheme{});
  for (int shown = 0; shown <= 3; ++shown) {
    std::printf("\ngeneration %llu (population %zu):\n",
                static_cast<unsigned long long>(sim.time()),
                sim.configuration().popcount());
    draw(sim.configuration());
    sim.run(4);
  }

  std::printf("\nSequential sweeps from the same glider (the paper's "
              "question, asked of Life):\n");
  core::Simulation seq(life, glider(),
                       core::SequentialScheme{
                           core::identity_order(kRows * kCols)});
  for (int sweep = 0; sweep <= 2; ++sweep) {
    std::printf("\nsweep %llu (population %zu):\n",
                static_cast<unsigned long long>(seq.time()),
                seq.configuration().popcount());
    draw(seq.configuration());
    seq.step();
  }
  const auto fixed = seq.run_to_fixed_point(500);
  std::printf("\nsequential run %s after %llu more sweeps (population %zu) "
              "— the glider does not survive the loss of synchrony.\n",
              fixed ? "froze" : "did not freeze",
              fixed ? static_cast<unsigned long long>(*fixed) : 0ULL,
              seq.configuration().popcount());
  return 0;
}
