// Quickstart: build a threshold CA, run it in parallel and sequential
// modes, and see the paper's headline phenomenon — the parallel blinker
// that no sequential order can reproduce.
//
//   $ ./quickstart
//
// Walks through the core API: Automaton construction, synchronous steps,
// sequential sweeps, orbit detection, and phase-space classification.

#include <cstdio>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"

using namespace tca;

int main() {
  // A 1-D MAJORITY cellular automaton on a 12-cell ring, radius 1, with
  // memory: each cell becomes the majority of (left, self, right).
  const std::size_t n = 12;
  const auto ca = core::Automaton::line(n, 1, core::Boundary::kRing,
                                        rules::majority(), core::Memory::kWith);

  std::printf("== Parallel (classical CA) evolution ==\n");
  auto config = core::Configuration::from_string("010101010101");
  for (int t = 0; t <= 4; ++t) {
    std::printf("t=%d  %s\n", t, config.to_string().c_str());
    core::advance_synchronous(ca, config, 1);
  }
  std::printf("The alternating configuration blinks forever (a temporal "
              "two-cycle: Lemma 1(i)).\n\n");

  std::printf("== Sequential (SCA) evolution, left-to-right sweeps ==\n");
  config = core::Configuration::from_string("010101010101");
  const auto order = core::identity_order(n);
  for (int sweep = 0; sweep <= 3; ++sweep) {
    std::printf("sweep=%d  %s\n", sweep, config.to_string().c_str());
    core::apply_sequence(ca, config, order);
  }
  std::printf("Sequential updates dissolve the blinker into a fixed point "
              "(Lemma 1(ii)).\n\n");

  std::printf("== Orbit shapes from a random-ish start ==\n");
  const auto start = core::Configuration::from_string("011010011100");
  const auto parallel_orbit = core::find_orbit_synchronous(ca, start, 1000);
  std::printf("parallel:  transient %llu, period %llu\n",
              static_cast<unsigned long long>(parallel_orbit->transient),
              static_cast<unsigned long long>(parallel_orbit->period));
  const auto sweep_orbit = core::find_orbit_sweep(ca, start, order, 1000);
  std::printf("sequential sweep: transient %llu, period %llu\n",
              static_cast<unsigned long long>(sweep_orbit->transient),
              static_cast<unsigned long long>(sweep_orbit->period));

  std::printf("\n== Whole-phase-space census (n = %zu, 2^%zu states) ==\n", n,
              n);
  const auto cls =
      phasespace::classify(phasespace::FunctionalGraph::synchronous(ca));
  std::printf("fixed points: %llu, proper-cycle states: %llu, transients: "
              "%llu\n",
              static_cast<unsigned long long>(cls.num_fixed_points),
              static_cast<unsigned long long>(cls.num_cycle_states),
              static_cast<unsigned long long>(cls.num_transient_states));

  std::printf("\n== The paper's theorem, verified on this automaton ==\n");
  const phasespace::ChoiceDigraph cd(ca);
  const auto seq = phasespace::analyze(cd);
  std::printf("sequential choice digraph: proper-cycle states = %llu -> "
              "no update order can ever cycle (Theorem 1)\n",
              static_cast<unsigned long long>(seq.num_proper_cycle_states));
  return 0;
}
