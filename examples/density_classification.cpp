// density_classification — the classic CA benchmark task the paper's
// MAJORITY rule is the naive answer to: decide whether the initial
// configuration has more 1s than 0s, by converging to all-1s or all-0s.
//
// Local majority voting (the paper's rule) famously FAILS at this globally
// — it freezes into striped fixed points — while the hand-designed GKL
// (Gacs-Kurdyumov-Levin) rule classifies most inputs correctly. This
// example runs both on random initial densities and prints accuracy, plus
// the sequential-update twist: under sequential sweeps local majority
// behaves differently from its parallel self (no blinkers, different
// basins).

#include <cstdio>
#include <random>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"

using namespace tca;

namespace {

// GKL rule as an Automaton: node i looks at {i, i+1, i+3} if x_i = 0 and
// {i, i-1, i-3} if x_i = 1 and takes the majority. Not totalistic and not
// radius-1, so it is expressed as a radius-3 TableRule over the 7-cell
// neighborhood (left-to-right order, self in the middle at offset 3).
rules::TableRule gkl_rule() {
  rules::TableRule r;
  r.table.resize(128);
  for (std::size_t idx = 0; idx < 128; ++idx) {
    // bit j of idx (MSB-first) is the cell at offset j-3 relative to self.
    const auto cell = [idx](int offset) {
      const std::size_t j = static_cast<std::size_t>(offset + 3);
      return static_cast<int>((idx >> (6 - j)) & 1u);
    };
    const int self = cell(0);
    int votes;
    if (self == 0) {
      votes = self + cell(1) + cell(3);
    } else {
      votes = self + cell(-1) + cell(-3);
    }
    r.table[idx] = static_cast<rules::State>(votes >= 2);
  }
  return r;
}

struct TaskResult {
  int correct = 0;
  int undecided = 0;
  int trials = 0;
};

TaskResult run_task(const core::Automaton& a, std::size_t n, int trials,
                    std::mt19937_64& rng) {
  TaskResult result;
  result.trials = trials;
  for (int t = 0; t < trials; ++t) {
    core::Configuration c(n);
    // Random density in (0.2, 0.8), excluding exact balance (n odd).
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    const bool majority_ones = 2 * c.popcount() > n;
    core::advance_synchronous(a, c, 4 * n);
    if (c.popcount() == n) {
      result.correct += majority_ones ? 1 : 0;
    } else if (c.popcount() == 0) {
      result.correct += majority_ones ? 0 : 1;
    } else {
      ++result.undecided;
    }
  }
  return result;
}

}  // namespace

int main() {
  const std::size_t n = 149;  // the classic odd ring size from the GKL
                              // literature (no density ties)
  const int trials = 200;
  std::mt19937_64 rng(2026);

  std::printf("Density classification on a %zu-cell ring, %d random "
              "starts:\n\n", n, trials);

  const auto local_majority = core::Automaton::line(
      n, 1, core::Boundary::kRing, rules::majority(), core::Memory::kWith);
  const auto gkl = core::Automaton::line(n, 3, core::Boundary::kRing,
                                         rules::Rule{gkl_rule()},
                                         core::Memory::kWith);

  const auto maj_result = run_task(local_majority, n, trials, rng);
  std::printf("local MAJORITY (the paper's rule):\n");
  std::printf("  classified correctly: %d/%d, frozen undecided: %d\n",
              maj_result.correct, trials, maj_result.undecided);
  std::printf("  (local voting freezes into striped fixed points — it "
              "cannot move information far enough.)\n\n");

  const auto gkl_result = run_task(gkl, n, trials, rng);
  std::printf("GKL rule:\n");
  std::printf("  classified correctly: %d/%d, frozen undecided: %d\n",
              gkl_result.correct, trials, gkl_result.undecided);
  std::printf("  (GKL transports defects and classifies the large majority "
              "of random inputs.)\n\n");

  std::printf("Sequential twist: the SAME majority rule under sequential "
              "sweeps (one example start):\n");
  {
    core::Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.set(i, static_cast<core::State>(rng() & 1u));
    }
    auto par = c;
    core::advance_synchronous(local_majority, par, 4 * n);
    auto seq = c;
    const auto order = core::identity_order(n);
    core::run_sweeps_to_fixed_point(local_majority, seq, order, 4 * n);
    std::printf("  parallel fixed point ones: %zu, sequential fixed point "
                "ones: %zu (start had %zu)\n",
                par.popcount(), seq.popcount(), c.popcount());
    std::printf("  Different limits from the same start: update discipline "
                "changes the computation, which is the paper's point.\n");
  }
  return 0;
}
