// asynchrony_lab — side-by-side comparison of the four update disciplines
// on the same automaton and start: classical parallel, sequential sweeps,
// block-sequential, and the genuinely asynchronous (channel) model with a
// random scheduler. Prints the trajectory heads and the long-run outcome
// of each.

#include <cstdio>
#include <random>

#include "aca/aca.hpp"
#include "core/automaton.hpp"
#include "core/block_sequential.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"

using namespace tca;

int main() {
  const std::size_t n = 16;
  const auto ca = core::Automaton::line(n, 1, core::Boundary::kRing,
                                        rules::majority(), core::Memory::kWith);
  const auto start = core::Configuration::from_string("0101010101010101");

  std::printf("Majority ring n=%zu, start %s (the parallel blinker)\n\n", n,
              start.to_string().c_str());

  std::printf("1) Classical parallel CA:\n");
  {
    auto c = start;
    for (int t = 0; t < 4; ++t) {
      std::printf("   t=%d %s\n", t, c.to_string().c_str());
      core::advance_synchronous(ca, c, 1);
    }
    const auto orbit = core::find_orbit_synchronous(ca, start, 100);
    std::printf("   -> period %llu (blinks forever)\n\n",
                static_cast<unsigned long long>(orbit->period));
  }

  std::printf("2) Sequential CA (left-to-right sweeps):\n");
  {
    auto c = start;
    const auto order = core::identity_order(n);
    for (int sweep = 0; sweep < 3; ++sweep) {
      std::printf("   sweep=%d %s\n", sweep, c.to_string().c_str());
      core::apply_sequence(ca, c, order);
    }
    std::printf("   -> fixed point %s (Theorem 1: always converges)\n\n",
                c.to_string().c_str());
  }

  std::printf("3) Block-sequential (two half-ring blocks):\n");
  {
    auto c = start;
    std::vector<core::NodeId> first, second;
    for (std::size_t v = 0; v < n / 2; ++v) first.push_back(
        static_cast<core::NodeId>(v));
    for (std::size_t v = n / 2; v < n; ++v) second.push_back(
        static_cast<core::NodeId>(v));
    const core::BlockOrder order({first, second}, n);
    for (int sweep = 0; sweep < 3; ++sweep) {
      std::printf("   sweep=%d %s\n", sweep, c.to_string().c_str());
      core::step_block_sequential(ca, c, order);
    }
    std::printf("   -> interpolates between the two models\n\n");
  }

  std::printf("4) Asynchronous CA (fetch/compute/publish channels, random "
              "scheduler):\n");
  {
    const aca::AcaSystem sys(ca);
    std::printf("   %u nodes + %u channels = %u possible actions per step\n",
                sys.num_nodes(), sys.num_channels(), sys.num_actions());
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      const auto run = aca::run_random(sys, start.to_bits(), seed, 1u << 20);
      const auto final_config =
          core::Configuration::from_bits(run.final_config, n);
      std::printf("   seed %llu: quiesced=%s after %llu actions at %s\n",
                  static_cast<unsigned long long>(seed),
                  run.quiesced ? "yes" : "no",
                  static_cast<unsigned long long>(run.actions),
                  final_config.to_string().c_str());
    }
    std::printf("   Different schedules, different fixed points — the "
                "asynchronous nondeterminism subsumes both classical "
                "behaviours (Section 4).\n");
  }
  return 0;
}
