// consensus_voting — the multi-agent reading of the paper (its authors'
// home turf): nodes are agents holding binary opinions, local MAJORITY is
// a gossip/voting protocol, and the update discipline is the network's
// synchrony model. Measures, on random graphs:
//   * does local voting reach global consensus, or freeze in disagreement?
//   * does the answer depend on synchronous vs sequential execution?
//   * the blinker pathology: on bipartite topologies, perfectly
//     synchronous voting can oscillate forever — real asynchronous
//     networks cannot (the paper's point, operationally).

#include <cstdio>
#include <random>

#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"
#include "graph/builders.hpp"
#include "graph/properties.hpp"

using namespace tca;

namespace {

struct Outcome {
  int consensus = 0;
  int frozen = 0;
  int oscillating = 0;
};

}  // namespace

int main() {
  const std::size_t n = 60;
  const int trials = 100;
  std::mt19937_64 rng(777);

  std::printf("Local majority voting among %zu agents, %d random opinion "
              "vectors per row\n\n", n, trials);
  std::printf("%-22s %-12s | %9s %8s %12s | %9s %8s\n", "topology", "scheme",
              "consensus", "frozen", "oscillating", "seq cons.", "seq frz");

  struct Topology {
    const char* name;
    graph::Graph g;
  };
  Topology topologies[] = {
      {"ring C60", graph::ring(n)},
      {"random 4-regular", graph::random_regular(n, 4, 1)},
      {"G(n, 0.1)", graph::random_gnp(n, 0.1, 2)},
      {"G(n, 0.3)", graph::random_gnp(n, 0.3, 3)},
      {"complete K60", graph::complete(n)},
  };

  for (const auto& topology : topologies) {
    const auto a = core::Automaton::from_graph(topology.g, rules::majority(),
                                               core::Memory::kWith);
    Outcome sync, seq;
    for (int trial = 0; trial < trials; ++trial) {
      core::Configuration start(n);
      for (std::size_t i = 0; i < n; ++i) {
        start.set(i, static_cast<core::State>(rng() & 1u));
      }
      // Synchronous evolution.
      {
        const auto orbit = core::find_orbit_synchronous(a, start, 4 * n);
        if (orbit && orbit->period == 1) {
          const auto ones = orbit->entry.popcount();
          if (ones == 0 || ones == n) {
            ++sync.consensus;
          } else {
            ++sync.frozen;
          }
        } else {
          ++sync.oscillating;
        }
      }
      // Sequential (random fair schedule) evolution.
      {
        auto c = start;
        core::RandomSweepSchedule schedule(n, rng());
        const auto done =
            core::run_schedule_to_fixed_point(a, c, schedule, 10000 * 4);
        if (done) {
          const auto ones = c.popcount();
          if (ones == 0 || ones == n) {
            ++seq.consensus;
          } else {
            ++seq.frozen;
          }
        } else {
          ++seq.oscillating;  // cannot happen (Theorem 1) — kept honest
        }
      }
    }
    std::printf("%-22s %-12s | %8d%% %7d%% %11d%% | %8d%% %7d%%\n",
                topology.name, "sync", sync.consensus, sync.frozen,
                sync.oscillating, seq.consensus, seq.frozen);
  }

  std::printf("\nThe oscillation pathology, isolated (bipartite topology, "
              "polarized start):\n");
  {
    const auto g = graph::complete_bipartite(8, 8);
    const auto a = core::Automaton::from_graph(g, rules::majority(),
                                               core::Memory::kWith);
    core::Configuration sides(16);
    for (std::size_t v = 0; v < 8; ++v) sides.set(v, 1);
    const auto orbit = core::find_orbit_synchronous(a, sides, 64);
    std::printf("  K_{8,8}, one side all-1: synchronous period = %llu "
                "(oscillates forever)\n",
                static_cast<unsigned long long>(orbit->period));
    auto c = sides;
    core::RandomUniformSchedule schedule(16, 5);
    const auto steps = core::run_schedule_to_fixed_point(a, c, schedule, 100000);
    std::printf("  same start, asynchronous agents: fixed point %s after "
                "%llu updates (consensus: %s)\n",
                c.to_string().c_str(),
                steps ? static_cast<unsigned long long>(*steps) : 0ULL,
                c.popcount() == 0 || c.popcount() == 16 ? "yes" : "no");
  }

  std::printf("\nTakeaways: denser topologies make local voting a better "
              "consensus protocol; execution discipline barely changes the "
              "consensus RATE but completely decides whether oscillation "
              "is possible — synchronous bipartite networks can livelock, "
              "asynchronous ones provably cannot (Theorem 1).\n");
  return 0;
}
