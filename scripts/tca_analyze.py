#!/usr/bin/env python3
"""tca_analyze — AST-grounded concurrency analyzer for the TCA tree.

Where tca_lint.py enforces per-line project invariants and clang-tidy
runs off-the-shelf checks, this tool understands the *concurrency
contracts* of the codebase: atomics and their memory orders, CAS retry
idioms, condition-variable predicates, hot-path purity, and closure
capture lifetimes. It is driven by the same build artifacts as
run_clang_tidy.py (compile_commands.json names the translation units)
and mirrors its baseline discipline: findings are fingerprinted, a
committed baseline records the accepted set, and CI fails only on NEW
findings.

Frontends
---------
  --frontend libclang   Parse with clang.cindex (python libclang
                        bindings). Declaration tables (which names are
                        std::atomic, tca::CondVar, std::vector<thread>)
                        come from the real AST.
  --frontend builtin    A pure-python structural frontend: comment/
                        string-stripped token stream, brace/paren region
                        tree, declaration-driven symbol tables resolved
                        through the project's transitive include closure.
                        Always available; this is what CI uses on
                        runners without libclang.
  --frontend auto       libclang when importable, builtin otherwise
                        (default).

Without libclang, `--frontend libclang` SKIPs (exit 0) unless --require
is given, in which case it fails (exit 2) — same contract as
run_clang_tidy.py. `--frontend auto --require` never skips: the builtin
frontend can always run.

Checks (see docs/static-analysis.md for the catalogue, and
docs/memory_model.md for the ordering-contract table):

  atomics            atomic-implicit-order     every atomic load/store/
                     RMW must spell its memory_order (no silent
                     seq_cst);
                     atomic-unregistered-order every non-seq_cst site
                     must be registered in docs/memory_model.md;
                     contract-stale-row        every table row must
                     match live sites, both file/symbol and each
                     declared order (cross-verified both ways);
                     contract-malformed        unparseable row.
  cas-idiom          cas-single-order          compare_exchange must
                     declare success AND failure orders;
                     cas-reload-race           a CAS retry loop must
                     reuse the `expected` value the CAS updated, not
                     re-load it (the re-load re-opens the race window).
  condvar-predicate  condvar-no-predicate-loop every tca::CondVar::wait
                     call site must sit in a predicate loop.
  hot-path           hot-path-blocking         no mutex acquisition, IO,
                     or allocation inside loops of TCA_HOT_PATH roots or
                     inside for_each_range lambdas (src/testing/ is
                     exempt from the implicit-root rule: oracles trade
                     throughput for diagnostics by design).
  capture-lifetime   capture-lifetime          no by-reference captures
                     handed to std::thread / thread vectors unless the
                     spawn site carries TCA_JOINED_BEFORE_SCOPE_EXIT;
                     detached threads are always findings.

Suppression: `// tca-analyze: allow(<kind>) <reason>` on the finding
line or in the comment run directly above it.

Exit codes: 0 clean/skip, 1 findings changed vs baseline, 2 usage or
--require failure.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join("bench", "baselines",
                                "tca_analyze_baseline.json")
DEFAULT_CONTRACT = os.path.join("docs", "memory_model.md")
FIXTURE_DIR = os.path.join("tests", "analyze_fixtures")

ORDER_NAMES = ("relaxed", "consume", "acquire", "release", "acq_rel",
               "seq_cst")

ATOMIC_OPS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
              "fetch_or", "fetch_and", "fetch_xor", "compare_exchange_weak",
              "compare_exchange_strong", "test_and_set", "clear", "wait",
              "notify_one", "notify_all")
# Ops that take a memory_order argument and that the audit enforces.
ORDERED_OPS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
               "fetch_or", "fetch_and", "fetch_xor", "compare_exchange_weak",
               "compare_exchange_strong")
CAS_OPS = ("compare_exchange_weak", "compare_exchange_strong")

LOCK_TYPES = {"LockGuard", "lock_guard", "unique_lock", "scoped_lock",
              "shared_lock"}
IO_NAMES = {"fopen", "fclose", "fread", "fwrite", "fprintf", "printf",
            "fputs", "puts", "fsync", "fdatasync", "pread", "pwrite",
            "mmap", "munmap", "ifstream", "ofstream", "fstream",
            "getline", "system", "cout", "cerr", "clog"}
ALLOC_CALLS = {"make_unique", "make_shared", "to_string"}
ALLOC_MEMBERS = {"resize", "reserve", "push_back", "emplace_back",
                 "emplace", "insert", "append", "assign"}
CONTAINER_TYPES = {"vector", "string", "deque", "map", "unordered_map",
                   "set", "unordered_set", "basic_string", "stringstream",
                   "ostringstream"}

CHECKS = {
    "atomics": ("atomic-implicit-order", "atomic-unregistered-order",
                "contract-stale-row", "contract-malformed"),
    "cas-idiom": ("cas-single-order", "cas-reload-race"),
    "condvar-predicate": ("condvar-no-predicate-loop",),
    "hot-path": ("hot-path-blocking",),
    "capture-lifetime": ("capture-lifetime",),
}
ALL_KINDS = tuple(k for kinds in CHECKS.values() for k in kinds)

LOOP_KEYWORDS = {"for", "while", "do"}
TRANSPARENT_KEYWORDS = {"if", "else", "switch", "try", "case", "default"}


def fnv1a64(text: str) -> str:
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return f"{h:016x}"


# --------------------------------------------------------------------------
# Builtin frontend: lexical model
# --------------------------------------------------------------------------

def mask_source(text: str) -> str:
    """Blanks comments, string/char literals and preprocessor directives,
    preserving offsets and newlines so line math survives."""
    out = list(text)
    n = len(text)
    i = 0
    state = "code"
    raw_delim = None
    # Pre-blank preprocessor lines (incl. backslash continuations) so a
    # `#define TCA_HOT_PATH ...` never reads as an annotation root.
    line_start = 0
    while line_start < n:
        line_end = text.find("\n", line_start)
        if line_end < 0:
            line_end = n
        if text[line_start:line_end].lstrip().startswith("#"):
            end = line_end
            while end < n and text[line_start:end].rstrip().endswith("\\"):
                nxt = text.find("\n", end + 1)
                end = n if nxt < 0 else nxt
            for j in range(line_start, min(end, n)):
                if text[j] != "\n":
                    out[j] = " "
            line_start = end + 1
        else:
            line_start = line_end + 1
    masked_pp = "".join(out)
    i = 0
    while i < n:
        c = masked_pp[i]
        if state == "code":
            if c == "/" and i + 1 < n and masked_pp[i + 1] == "/":
                state = "line_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and i + 1 < n and masked_pp[i + 1] == "*":
                state = "block_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                if i >= 1 and masked_pp[i - 1] == "R":
                    m = re.match(r'R"([^(\s"\\]{0,16})\(',
                                 masked_pp[i - 1:i + 20])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw_string"
                        out[i] = " "
                        i += 1
                        continue
                state = "string"
                out[i] = " "
                i += 1
                continue
            if c == "'":
                prev = masked_pp[i - 1] if i > 0 else ""
                if prev.isalnum() or prev == "_":
                    i += 1  # digit separator (1'000) or suffix, not a char
                    continue
                state = "char"
                out[i] = " "
                i += 1
                continue
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            else:
                out[i] = " "
            i += 1
        elif state == "block_comment":
            if c == "*" and i + 1 < n and masked_pp[i + 1] == "/":
                out[i] = out[i + 1] = " "
                state = "code"
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state == "string" or state == "char":
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out[i] = " "
                if masked_pp[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                out[i] = " "
                state = "code"
            else:
                if c != "\n":
                    out[i] = " "
            i += 1
        elif state == "raw_string":
            if masked_pp.startswith(raw_delim, i):
                for j in range(i, i + len(raw_delim)):
                    out[j] = " "
                i += len(raw_delim)
                state = "code"
                continue
            if c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|\d[\w.]*|->|::|\+\+|--|&&|\|\||[{}()\[\];,<>=+\-*/&|!^~.?:#%@]"
)


@dataclass
class Tok:
    text: str
    start: int
    end: int


@dataclass
class FileModel:
    relpath: str
    text: str
    code: str
    tokens: list
    line_starts: list
    match: dict  # open offset <-> close offset, for {} () []
    brace_pairs: list  # (open, close) token indexes, sorted by open
    tok_at: dict  # start offset -> token index
    includes: list = field(default_factory=list)
    atomic_decls: set = field(default_factory=set)
    condvar_decls: set = field(default_factory=set)
    threadvec_decls: set = field(default_factory=set)
    reflambda_decls: set = field(default_factory=set)

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)

    def line_text(self, line: int) -> str:
        lo = self.line_starts[line - 1]
        hi = (self.line_starts[line] - 1
              if line < len(self.line_starts) else len(self.text))
        return self.text[lo:hi]


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)
THREADVEC_RE = re.compile(
    r"\bstd\s*::\s*vector\s*<\s*std\s*::\s*j?thread\s*>\s*([A-Za-z_]\w*)")
REFLAMBDA_RE = re.compile(
    r"\bauto\s+([A-Za-z_]\w*)\s*=\s*\[([^\]]*)\]")


def build_model(relpath: str, text: str) -> FileModel:
    code = mask_source(text)
    tokens = [Tok(m.group(0), m.start(), m.end())
              for m in TOKEN_RE.finditer(code)]
    line_starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            line_starts.append(i + 1)
    match = {}
    brace_pairs = []
    stacks = {"{": [], "(": [], "[": []}
    closer = {"}": "{", ")": "(", "]": "["}
    for idx, tok in enumerate(tokens):
        if tok.text in stacks:
            stacks[tok.text].append(idx)
        elif tok.text in closer:
            stack = stacks[closer[tok.text]]
            if stack:
                open_idx = stack.pop()
                match[open_idx] = idx
                match[idx] = open_idx
                if tok.text == "}":
                    brace_pairs.append((open_idx, idx))
    brace_pairs.sort()
    tok_at = {t.start: i for i, t in enumerate(tokens)}
    model = FileModel(relpath=relpath, text=text, code=code, tokens=tokens,
                      line_starts=line_starts, match=match,
                      brace_pairs=brace_pairs, tok_at=tok_at)
    model.includes = INCLUDE_RE.findall(text)
    _extract_decls(model)
    return model


def _extract_decls(model: FileModel) -> None:
    toks = model.tokens
    n = len(toks)
    for i, tok in enumerate(toks):
        if tok.text not in ("atomic", "atomic_ref", "CondVar"):
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev in (".", "->", "class", "struct", "using", "typename"):
            continue
        j = i + 1
        if tok.text in ("atomic", "atomic_ref"):
            if j >= n or toks[j].text != "<":
                continue
            depth = 0
            while j < n:
                t = toks[j].text
                if t == "<":
                    depth += 1
                elif t == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif t in (";", "{"):
                    break
                j += 1
            if j >= n or toks[j].text != ">":
                continue
            j += 1
        # Skip pointer/ref/extra closing-angle tokens between type and name.
        while j < n and toks[j].text in (">", "*", "&", "&&", "const"):
            j += 1
        if j >= n or not re.match(r"[A-Za-z_]\w*$", toks[j].text):
            continue
        name = toks[j].text
        nxt = toks[j + 1].text if j + 1 < n else ""
        if nxt not in (";", "=", "{", "(", "[", ",", ")"):
            continue
        if tok.text == "CondVar":
            model.condvar_decls.add(name)
        else:
            model.atomic_decls.add(name)
    for m in THREADVEC_RE.finditer(model.code):
        model.threadvec_decls.add(m.group(1))
    for m in REFLAMBDA_RE.finditer(model.code):
        captures = m.group(2)
        if "&" in captures:
            model.reflambda_decls.add(m.group(1))


# --------------------------------------------------------------------------
# Analysis universe + include closure
# --------------------------------------------------------------------------

class Universe:
    """All models under analysis, keyed by repo-relative path, with
    per-file symbol tables widened through the transitive include
    closure (a TU sees the atomics its project headers declare)."""

    def __init__(self, root: str):
        self.root = root
        self.models = {}
        self._closure_cache = {}

    def add_file(self, relpath: str) -> FileModel:
        relpath = relpath.replace(os.sep, "/")
        if relpath in self.models:
            return self.models[relpath]
        with open(os.path.join(self.root, relpath), "r",
                  encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        model = build_model(relpath, text)
        self.models[relpath] = model
        return model

    def _resolve_include(self, inc: str):
        cand = "src/" + inc
        if cand in self.models:
            return cand
        if os.path.isfile(os.path.join(self.root, cand)):
            return cand
        return None

    def closure(self, relpath: str) -> set:
        if relpath in self._closure_cache:
            return self._closure_cache[relpath]
        seen = set()
        stack = [relpath]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            model = self.models.get(cur)
            if model is None:
                if os.path.isfile(os.path.join(self.root, cur)):
                    model = self.add_file(cur)
                else:
                    continue
            for inc in model.includes:
                resolved = self._resolve_include(inc)
                if resolved is not None:
                    stack.append(resolved)
        self._closure_cache[relpath] = seen
        return seen

    def symbols(self, relpath: str, table: str) -> set:
        out = set()
        for dep in self.closure(relpath):
            model = self.models.get(dep)
            if model is not None:
                out |= getattr(model, table)
        return out


# --------------------------------------------------------------------------
# Findings, suppression, fingerprints
# --------------------------------------------------------------------------

@dataclass
class Finding:
    kind: str
    file: str
    line: int
    symbol: str
    message: str
    fingerprint: str = ""

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.kind}] {self.message}"


SUPPRESS_RE = re.compile(r"tca-analyze:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def _suppressed(model: FileModel, line: int, kind: str) -> bool:
    def line_allows(text: str) -> bool:
        m = SUPPRESS_RE.search(text)
        if not m:
            return False
        kinds = {k.strip() for k in m.group(1).split(",")}
        return kind in kinds

    if line_allows(model.line_text(line)):
        return True
    probe = line - 1
    while probe >= 1:
        text = model.line_text(probe).strip()
        if not text.startswith("//"):
            break
        if line_allows(text):
            return True
        probe -= 1
    return False


def fingerprint_findings(findings: list) -> None:
    seq = {}
    for f in findings:
        key = (f.kind, f.file, f.symbol)
        seq[key] = seq.get(key, 0) + 1
        f.fingerprint = fnv1a64(f"{f.kind}|{f.file}|{f.symbol}|{seq[key]}")


# --------------------------------------------------------------------------
# Structural helpers shared by checks
# --------------------------------------------------------------------------

def enclosing_braces(model: FileModel, tok_idx: int) -> list:
    """Brace pairs (open_idx, close_idx) containing token tok_idx,
    innermost first."""
    out = []
    for open_idx, close_idx in model.brace_pairs:
        if open_idx < tok_idx < close_idx:
            out.append((open_idx, close_idx))
        elif open_idx > tok_idx:
            break
    out.sort(key=lambda pair: pair[0], reverse=True)
    return out


def introducer_tokens(model: FileModel, open_idx: int) -> list:
    """Tokens between the previous statement boundary and an opening
    brace, with matched paren/bracket groups collapsed to their open
    token (so `for (a; b; c) {` reads [for, (])."""
    toks = model.tokens
    out = []
    i = open_idx - 1
    while i >= 0:
        t = toks[i].text
        if t in (")", "]"):
            open_match = model.match.get(i)
            if open_match is None:
                break
            out.append(toks[open_match].text)
            i = open_match - 1
            continue
        if t in (";", "{", "}"):
            break
        out.append(t)
        i -= 1
    out.reverse()
    return out


def classify_block(intro: list) -> str:
    if not intro:
        return "plain"
    head = intro[0]
    if head in LOOP_KEYWORDS:
        return "loop"
    if head == "catch":
        return "catch"
    if head in TRANSPARENT_KEYWORDS:
        return "transparent"
    if head in ("namespace", "class", "struct", "enum", "union", "extern"):
        return "opaque"
    return "opaque"  # function/lambda definitions, initializers, ...


def statement_leading_tokens(model: FileModel, tok_idx: int) -> list:
    """Tokens from the start of the statement containing tok_idx up to
    it, with paren groups collapsed — e.g. `while (p) cv.wait(l);` seen
    from `cv` gives [while, (]."""
    toks = model.tokens
    out = []
    i = tok_idx - 1
    while i >= 0:
        t = toks[i].text
        if t == ")":
            open_match = model.match.get(i)
            if open_match is None:
                break
            out.append(toks[open_match].text)
            i = open_match - 1
            continue
        if t in (";", "{", "}"):
            break
        out.append(t)
        i -= 1
    out.reverse()
    return out


def receiver_symbol(model: FileModel, dot_idx: int):
    """Resolves the receiver expression ending at the `.`/`->` token to
    its terminal identifier (`cursors[g]` -> cursors, `s.value` ->
    value). Returns None when the receiver is a call result."""
    toks = model.tokens
    i = dot_idx - 1
    while i >= 0 and toks[i].text == "]":
        open_match = model.match.get(i)
        if open_match is None:
            return None
        i = open_match - 1
    if i < 0:
        return None
    t = toks[i]
    if t.text == ")":
        # `(*word).op` style: a parenthesized deref is still a named
        # object if the parens hold only */& and one identifier.
        open_match = model.match.get(i)
        if open_match is None:
            return None
        inner = [x.text for x in toks[open_match + 1:i]]
        names = [x for x in inner if re.match(r"[A-Za-z_]\w*$", x)]
        if len(names) == 1 and all(x in ("*", "&") or x == names[0]
                                   for x in inner):
            return names[0]
        return None
    if re.match(r"[A-Za-z_]\w*$", t.text):
        return t.text
    return None


def call_args_span(model: FileModel, open_paren_idx: int):
    close = model.match.get(open_paren_idx)
    if close is None:
        return None
    return (open_paren_idx, close)


def split_call_args(model: FileModel, open_paren_idx: int) -> list:
    """Argument token-index ranges of a call, split on top-level commas."""
    close = model.match.get(open_paren_idx)
    if close is None:
        return []
    args = []
    depth = 0
    start = open_paren_idx + 1
    for i in range(open_paren_idx + 1, close):
        t = model.tokens[i].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == "," and depth == 0:
            args.append((start, i))
            start = i + 1
    if start < close:
        args.append((start, close))
    elif start == close and args:
        pass
    elif start == close and not args and close > open_paren_idx + 1:
        args.append((start, close))
    return args


def args_text(model: FileModel, open_paren_idx: int) -> str:
    span = call_args_span(model, open_paren_idx)
    if span is None:
        return ""
    return model.code[model.tokens[span[0]].end:model.tokens[span[1]].start]


ORDER_TOKEN_RE = re.compile(
    r"\bmemory_order(?:_(" + "|".join(ORDER_NAMES) + r")\b|\s*::\s*(" +
    "|".join(ORDER_NAMES) + r")\b)")


def orders_in(text: str) -> list:
    return [m.group(1) or m.group(2) for m in ORDER_TOKEN_RE.finditer(text)]


# --------------------------------------------------------------------------
# Atomic site extraction (shared by atomics + cas-idiom checks)
# --------------------------------------------------------------------------

@dataclass
class AtomicSite:
    file: str
    line: int
    symbol: str
    op: str
    orders: list
    op_tok: int
    paren_tok: int


def atomic_sites(model: FileModel, atomic_names: set) -> list:
    sites = []
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.text not in ORDERED_OPS:
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        symbol = receiver_symbol(model, i - 1)
        if symbol is None or symbol not in atomic_names:
            continue
        orders = orders_in(args_text(model, i + 1))
        sites.append(AtomicSite(file=model.relpath,
                                line=model.line_of(tok.start),
                                symbol=symbol, op=tok.text, orders=orders,
                                op_tok=i, paren_tok=i + 1))
    return sites


OPERATOR_FORM_RE = re.compile(
    r"(?:(\+\+|--)\s*([A-Za-z_]\w*))|"
    r"(?:([A-Za-z_]\w*)\s*(\+\+|--|[+\-|&^]=|(?<![=!<>+\-|&^*/%])=(?![=])))")


def operator_form_sites(model: FileModel) -> list:
    """Implicitly-seq_cst operator uses (++x, x += n, x = v) of atomics
    declared in the SAME file (same-file scope keeps this precise: a
    closure-wide name match would false-positive on common member names
    like `value`)."""
    out = []
    if not model.atomic_decls:
        return out
    for lineno, _ in enumerate(model.line_starts, start=1):
        lo = model.line_starts[lineno - 1]
        hi = (model.line_starts[lineno]
              if lineno < len(model.line_starts) else len(model.code))
        text = model.code[lo:hi]
        if "atomic" in text:
            continue  # the declaration/initializer line itself
        for m in OPERATOR_FORM_RE.finditer(text):
            name = m.group(2) or m.group(3)
            if name in model.atomic_decls:
                out.append((lineno, name, (m.group(1) or m.group(4))))
    return out


# --------------------------------------------------------------------------
# Ordering-contract table
# --------------------------------------------------------------------------

@dataclass
class ContractRow:
    file: str
    symbol: str
    orders: set
    rationale: str
    line: int


def parse_contract_table(path: str):
    """Parses the markdown ordering-contract table. Returns (rows,
    malformed) where malformed is a list of (line, message)."""
    rows = []
    malformed = []
    if not os.path.isfile(path):
        return rows, malformed
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line.startswith("|"):
            continue
        cells = [c.strip().strip("`").strip()
                 for c in line.strip("|").split("|")]
        if len(cells) < 4:
            continue
        if cells[0].lower() == "file" or set(cells[0]) <= {"-", ":", " "}:
            continue
        file_cell, symbol, orders_cell, rationale = (cells[0], cells[1],
                                                     cells[2],
                                                     " ".join(cells[3:]))
        orders = {o.strip().strip("`")
                  for o in re.split(r"[,\s]+", orders_cell) if o.strip()}
        bad = orders - set(ORDER_NAMES)
        if bad:
            malformed.append((lineno,
                              f"unknown memory order(s) {sorted(bad)} in "
                              f"contract row for {file_cell}:{symbol}"))
            continue
        if not orders or not file_cell or not symbol or not rationale:
            malformed.append((lineno,
                              "contract row needs file, symbol, orders and "
                              "a happens-before rationale"))
            continue
        rows.append(ContractRow(file=file_cell, symbol=symbol,
                                orders=orders, rationale=rationale,
                                line=lineno))
    return rows, malformed


# --------------------------------------------------------------------------
# Check implementations
# --------------------------------------------------------------------------

def check_atomics(universe: Universe, contract, enabled_kinds) -> list:
    findings = []
    contract_rows, malformed = ([], [])
    contract_path_rel = None
    if contract is not None:
        contract_rows, malformed = parse_contract_table(contract[0])
        contract_path_rel = contract[1]
    sites_by_key = {}
    for relpath, model in sorted(universe.models.items()):
        names = universe.symbols(relpath, "atomic_decls")
        for site in atomic_sites(model, names):
            sites_by_key.setdefault((site.file, site.symbol),
                                    []).append(site)
            if not site.orders:
                if _suppressed(model, site.line, "atomic-implicit-order"):
                    continue
                findings.append(Finding(
                    kind="atomic-implicit-order", file=site.file,
                    line=site.line, symbol=site.symbol,
                    message=f"`{site.symbol}.{site.op}` relies on implicit "
                            "seq_cst; spell the memory_order explicitly "
                            "(and register non-seq_cst orders in "
                            "docs/memory_model.md)"))
        for line, name, op in operator_form_sites(model):
            if _suppressed(model, line, "atomic-implicit-order"):
                continue
            findings.append(Finding(
                kind="atomic-implicit-order", file=relpath, line=line,
                symbol=name,
                message=f"operator form `{name} {op}` on an atomic is an "
                        "implicit seq_cst RMW; use an explicit "
                        "fetch_/store with a memory_order"))
    if contract is None:
        return [f for f in findings if f.kind in enabled_kinds]

    for lineno, message in malformed:
        findings.append(Finding(kind="contract-malformed",
                                file=contract_path_rel, line=lineno,
                                symbol="table", message=message))

    rows_by_key = {}
    for row in contract_rows:
        rows_by_key.setdefault((row.file, row.symbol), set()).update(
            row.orders)

    # Direction 1: every non-seq_cst site must be registered.
    for (file, symbol), sites in sorted(sites_by_key.items()):
        used = {o for s in sites for o in s.orders if o != "seq_cst"}
        if not used:
            continue
        registered = rows_by_key.get((file, symbol), set())
        missing = used - registered
        if missing:
            model = universe.models[file]
            site = next(s for s in sites
                        if any(o in missing for o in s.orders))
            if _suppressed(model, site.line, "atomic-unregistered-order"):
                continue
            findings.append(Finding(
                kind="atomic-unregistered-order", file=file,
                line=site.line, symbol=symbol,
                message=f"`{symbol}` uses {sorted(missing)} but "
                        f"docs/memory_model.md has no matching row — add "
                        "the happens-before argument to the contract "
                        "table"))

    # Direction 2: every row must match live sites and live orders.
    for row in contract_rows:
        key = (row.file, row.symbol)
        sites = sites_by_key.get(key)
        if row.file not in universe.models:
            findings.append(Finding(
                kind="contract-stale-row", file=contract_path_rel,
                line=row.line, symbol=row.symbol,
                message=f"contract row names `{row.file}` which is not in "
                        "the analyzed tree"))
            continue
        if not sites:
            findings.append(Finding(
                kind="contract-stale-row", file=contract_path_rel,
                line=row.line, symbol=row.symbol,
                message=f"contract row for `{row.file}:{row.symbol}` "
                        "matches no atomic site — symbol renamed or "
                        "gone"))
            continue
        used = {o for s in sites for o in s.orders if o != "seq_cst"}
        unused = row.orders - used
        if unused:
            findings.append(Finding(
                kind="contract-stale-row", file=contract_path_rel,
                line=row.line, symbol=row.symbol,
                message=f"contract row for `{row.file}:{row.symbol}` "
                        f"declares {sorted(unused)} but no live site uses "
                        "it — prune the row to match the code"))
    return [f for f in findings if f.kind in enabled_kinds]


def innermost_loop(model: FileModel, tok_idx: int):
    """The innermost loop containing tok_idx: returns (body_start_tok,
    body_end_tok) token range of the loop body, or None. Handles the
    token sitting in the loop *condition* (`while (cas(...))`)."""
    # In a condition: walk enclosing paren groups; a group opened right
    # after `while`/`for` is a loop head whose body follows the `)`.
    toks = model.tokens
    paren_opens = []
    depth_stack = []
    for idx in range(tok_idx, -1, -1):
        t = toks[idx].text
        if t in (")", "]", "}"):
            depth_stack.append(t)
        elif t in ("(", "[", "{"):
            if depth_stack:
                depth_stack.pop()
            elif t == "(":
                paren_opens.append(idx)
            elif t == "{":
                break
    for open_idx in paren_opens:
        head = toks[open_idx - 1].text if open_idx > 0 else ""
        if head in ("while", "for"):
            close_idx = model.match.get(open_idx)
            if close_idx is None:
                continue
            return _loop_body_range(model, close_idx)
    for open_idx, close_idx in enclosing_braces(model, tok_idx):
        intro = introducer_tokens(model, open_idx)
        cls = classify_block(intro)
        if cls == "loop":
            return (open_idx + 1, close_idx)
        if cls in ("transparent", "catch", "plain"):
            continue
        break
    return None


def _loop_body_range(model: FileModel, close_paren_idx: int):
    toks = model.tokens
    nxt = close_paren_idx + 1
    if nxt < len(toks) and toks[nxt].text == "{":
        close = model.match.get(nxt)
        if close is None:
            return None
        return (nxt + 1, close)
    # Unbraced body: a single statement up to the next top-level `;`.
    depth = 0
    for i in range(nxt, len(toks)):
        t = toks[i].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth == 0:
            return (nxt, i)
    return None


def check_cas_idiom(universe: Universe, enabled_kinds) -> list:
    findings = []
    for relpath, model in sorted(universe.models.items()):
        names = universe.symbols(relpath, "atomic_decls")
        for site in atomic_sites(model, names):
            if site.op not in CAS_OPS:
                continue
            if len(site.orders) == 1:
                if not _suppressed(model, site.line, "cas-single-order"):
                    findings.append(Finding(
                        kind="cas-single-order", file=site.file,
                        line=site.line, symbol=site.symbol,
                        message=f"`{site.symbol}.{site.op}` declares one "
                                "memory_order; spell both success and "
                                "failure orders explicitly"))
            args = split_call_args(model, site.paren_tok)
            if not args:
                continue
            expected_toks = [model.tokens[i].text
                             for i in range(args[0][0], args[0][1])]
            expected = None
            for t in reversed(expected_toks):
                if re.match(r"[A-Za-z_]\w*$", t):
                    expected = t
                    break
            if expected is None:
                continue
            body = innermost_loop(model, site.op_tok)
            if body is None:
                continue
            reload_line = _find_reload(model, body, expected, names)
            if reload_line is not None and not _suppressed(
                    model, reload_line, "cas-reload-race"):
                findings.append(Finding(
                    kind="cas-reload-race", file=site.file,
                    line=reload_line, symbol=site.symbol,
                    message=f"CAS retry loop re-loads `{expected}` instead "
                            "of reusing the value the failed "
                            f"{site.op} wrote back — the re-load re-opens "
                            "the race window"))
    return [f for f in findings if f.kind in enabled_kinds]


def _find_reload(model: FileModel, body, expected: str, atomic_names: set):
    toks = model.tokens
    start, end = body
    i = start
    while i < end:
        if (toks[i].text == expected and i + 1 < end
                and toks[i + 1].text == "="
                and (i + 2 >= len(toks) or toks[i + 2].text != "=")
                and (i == 0 or toks[i - 1].text not in
                     ("=", "!", "<", ">", "+", "-", "*", "/", "&", "|",
                      "^", "."))):
            j = i + 2
            while j < len(toks) and toks[j].text != ";":
                t = toks[j].text
                if t == "load" or t in atomic_names:
                    return model.line_of(toks[i].start)
                j += 1
        i += 1
    return None


def check_condvar(universe: Universe, enabled_kinds) -> list:
    findings = []
    for relpath, model in sorted(universe.models.items()):
        names = universe.symbols(relpath, "condvar_decls")
        if not names:
            continue
        toks = model.tokens
        for i, tok in enumerate(toks):
            if tok.text != "wait":
                continue
            if i == 0 or toks[i - 1].text not in (".", "->"):
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            symbol = receiver_symbol(model, i - 1)
            if symbol is None or symbol not in names:
                continue
            line = model.line_of(tok.start)
            if _in_predicate_loop(model, i):
                continue
            if _suppressed(model, line, "condvar-no-predicate-loop"):
                continue
            findings.append(Finding(
                kind="condvar-no-predicate-loop", file=relpath, line=line,
                symbol=symbol,
                message=f"`{symbol}.wait` is not inside a predicate loop — "
                        "spurious wakeups and missed notifies need "
                        "`while (!pred) wait(...)`"))
    return [f for f in findings if f.kind in enabled_kinds]


def _in_predicate_loop(model: FileModel, wait_tok: int) -> bool:
    leading = statement_leading_tokens(model, wait_tok)
    if any(t in LOOP_KEYWORDS for t in leading):
        return True
    for open_idx, close_idx in enclosing_braces(model, wait_tok):
        cls = classify_block(introducer_tokens(model, open_idx))
        if cls == "loop":
            return True
        if cls in ("transparent", "catch", "plain"):
            continue
        return False
    return False


def check_hot_path(universe: Universe, enabled_kinds) -> list:
    findings = []
    for relpath, model in sorted(universe.models.items()):
        roots = _hot_roots(model)
        for root_start, root_end, root_desc, whole_body in roots:
            regions = ([(root_start, root_end)] if whole_body
                       else _loop_regions(model, root_start, root_end))
            flagged_lines = set()
            for region in regions:
                for line, what in _blocking_in(model, region):
                    if line in flagged_lines:
                        continue
                    if _suppressed(model, line, "hot-path-blocking"):
                        continue
                    flagged_lines.add(line)
                    findings.append(Finding(
                        kind="hot-path-blocking", file=relpath, line=line,
                        symbol=root_desc,
                        message=f"{what} inside a {root_desc} hot loop — "
                                "hoist it to setup or move it to the "
                                "cold path"))
    return [f for f in findings if f.kind in enabled_kinds]


def _hot_roots(model: FileModel) -> list:
    """(body_start_tok, body_end_tok, description, whole_body) for each
    TCA_HOT_PATH annotation and (outside src/testing/) each lambda passed
    to for_each_range."""
    roots = []
    toks = model.tokens
    for i, tok in enumerate(toks):
        if tok.text == "TCA_HOT_PATH":
            depth = 0
            j = i + 1
            while j < len(toks):
                t = toks[j].text
                if t in ("(", "["):
                    depth += 1
                elif t in (")", "]"):
                    depth -= 1
                elif t == "{" and depth == 0:
                    close = model.match.get(j)
                    if close is not None:
                        roots.append((j + 1, close, "TCA_HOT_PATH", False))
                    break
                elif t == ";" and depth == 0:
                    break  # annotation on a declaration
                j += 1
    if not model.relpath.startswith("src/testing/"):
        for i, tok in enumerate(toks):
            if tok.text != "for_each_range":
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            close = model.match.get(i + 1)
            if close is None:
                continue
            j = i + 2
            while j < close:
                if toks[j].text == "[":
                    bracket_close = model.match.get(j)
                    if bracket_close is None:
                        break
                    k = bracket_close + 1
                    depth = 0
                    while k < close:
                        t = toks[k].text
                        if t == "(":
                            depth += 1
                        elif t == ")":
                            depth -= 1
                        elif t == "{" and depth == 0:
                            body_close = model.match.get(k)
                            if body_close is not None:
                                roots.append((k + 1, body_close,
                                              "for_each_range lambda",
                                              True))
                            k = close
                            break
                        k += 1
                    break
                j += 1
    return roots


def _loop_regions(model: FileModel, start: int, end: int) -> list:
    regions = []
    toks = model.tokens
    for open_idx, close_idx in model.brace_pairs:
        if open_idx <= start or close_idx >= end:
            continue
        if classify_block(introducer_tokens(model, open_idx)) == "loop":
            regions.append((open_idx + 1, close_idx))
    i = start
    while i < end:
        t = toks[i].text
        if t in ("for", "while"):
            if t == "while" and i > 0 and toks[i - 1].text == "}":
                i += 1
                continue  # do-while tail
            if i + 1 < end and toks[i + 1].text == "(":
                close = model.match.get(i + 1)
                if close is not None and close + 1 < end and \
                        toks[close + 1].text != "{":
                    body = _loop_body_range(model, close)
                    if body is not None and body[1] <= end:
                        regions.append(body)
        i += 1
    return regions


def _blocking_in(model: FileModel, region) -> list:
    """(line, what) blocking constructs in a token region, with catch
    blocks, throw statements and static declarations skipped."""
    toks = model.tokens
    start, end = region
    skip = set()
    for open_idx, close_idx in model.brace_pairs:
        if start <= open_idx and close_idx <= end:
            if classify_block(introducer_tokens(model, open_idx)) == \
                    "catch":
                skip.update(range(open_idx, close_idx + 1))
    i = start
    while i < end:
        t = toks[i].text
        if t in ("throw", "static") and i not in skip:
            stmt_ok = True
            if t == "static" and i > 0 and toks[i - 1].text not in (
                    ";", "{", "}"):
                stmt_ok = False
            if stmt_ok:
                depth = 0
                j = i
                while j < end:
                    tj = toks[j].text
                    if tj in ("(", "[", "{"):
                        depth += 1
                    elif tj in (")", "]", "}"):
                        depth -= 1
                    elif tj == ";" and depth <= 0:
                        break
                    j += 1
                skip.update(range(i, j + 1))
                i = j + 1
                continue
        i += 1
    out = []
    i = start
    while i < end:
        if i in skip:
            i += 1
            continue
        t = toks[i].text
        line = model.line_of(toks[i].start)
        prev = toks[i - 1].text if i > 0 else ""
        nxt = toks[i + 1].text if i + 1 < len(toks) else ""
        if t in LOCK_TYPES:
            out.append((line, f"lock acquisition (`{t}`)"))
        elif t == "lock" and prev in (".", "->") and nxt == "(":
            out.append((line, "lock acquisition (`.lock()`)"))
        elif t in IO_NAMES and prev not in (".", "->"):
            out.append((line, f"IO (`{t}`)"))
        elif t == "new" and prev != "operator":
            out.append((line, "allocation (`new`)"))
        elif t in ALLOC_CALLS and nxt == "(" and prev not in (".", "->"):
            out.append((line, f"allocation (`{t}`)"))
        elif t in ALLOC_MEMBERS and prev in (".", "->") and nxt == "(":
            out.append((line, f"allocation (`.{t}()`)"))
        elif t in CONTAINER_TYPES and prev == "::" and \
                re.match(r"[A-Za-z_<]", nxt or "x"):
            # `std::vector<...> local(...)` constructed inside the loop.
            j = i + 1
            if nxt == "<":
                depth = 0
                while j < end:
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            j += 1
                            break
                    elif toks[j].text in (";", "{"):
                        break
                    j += 1
            if j < end and toks[j].text in ("(", "{"):
                # `std::vector<int>(...)` temporary
                out.append((line, f"container construction (`{t}`)"))
            elif j < end and re.match(r"[A-Za-z_]\w*$", toks[j].text) and \
                    j + 1 < end and toks[j + 1].text in ("(", "{", "="):
                out.append((line, f"container construction (`{t}`)"))
        i += 1
    return out


def check_capture_lifetime(universe: Universe, enabled_kinds) -> list:
    findings = []
    for relpath, model in sorted(universe.models.items()):
        toks = model.tokens
        threadvecs = universe.symbols(relpath, "threadvec_decls")
        spawns = []
        for i, tok in enumerate(toks):
            if tok.text in ("thread", "jthread") and i >= 2 and \
                    toks[i - 1].text == "::" and toks[i - 2].text == "std":
                nxt = toks[i + 1].text if i + 1 < len(toks) else ""
                if nxt == "(":
                    spawns.append((i, i + 1))
                elif re.match(r"[A-Za-z_]\w*$", nxt) and i + 2 < len(toks) \
                        and toks[i + 2].text in ("(", "{"):
                    spawns.append((i, i + 2))
            elif tok.text in ("emplace_back", "push_back") and i > 0 and \
                    toks[i - 1].text in (".", "->") and \
                    i + 1 < len(toks) and toks[i + 1].text == "(":
                recv = receiver_symbol(model, i - 1)
                if recv in threadvecs:
                    spawns.append((i, i + 1))
            elif tok.text == "detach" and i > 0 and \
                    toks[i - 1].text in (".", "->") and \
                    i + 1 < len(toks) and toks[i + 1].text == "(":
                line = model.line_of(tok.start)
                if not _suppressed(model, line, "capture-lifetime"):
                    findings.append(Finding(
                        kind="capture-lifetime", file=relpath, line=line,
                        symbol="detach",
                        message="detached thread: its captures' lifetimes "
                                "cannot be verified — keep the handle and "
                                "join"))
        for name_tok, paren_tok in spawns:
            close = model.match.get(paren_tok)
            if close is None:
                continue
            line = model.line_of(toks[name_tok].start)
            risky = None
            j = paren_tok + 1
            while j < close:
                t = toks[j].text
                if t == "[":
                    bracket_close = model.match.get(j)
                    if bracket_close is not None:
                        caps = [toks[k].text
                                for k in range(j + 1, bracket_close)]
                        if "&" in caps:
                            risky = "a by-reference lambda capture"
                        j = bracket_close
                elif t in model.reflambda_decls:
                    risky = f"`{t}` (a by-reference-capturing lambda)"
                j += 1
            if risky is None:
                continue
            if _has_join_marker(model, line):
                continue
            if _suppressed(model, line, "capture-lifetime"):
                continue
            findings.append(Finding(
                kind="capture-lifetime", file=relpath, line=line,
                symbol=toks[name_tok].text,
                message=f"thread spawn hands {risky} to another thread "
                        "without TCA_JOINED_BEFORE_SCOPE_EXIT — annotate "
                        "the join guarantee or capture by value"))
    return [f for f in findings if f.kind in enabled_kinds]


def _has_join_marker(model: FileModel, line: int) -> bool:
    for probe in range(max(1, line - 6), line + 1):
        if "TCA_JOINED_BEFORE_SCOPE_EXIT" in model.line_text(probe):
            return True
    return False


# --------------------------------------------------------------------------
# Optional libclang refinement
# --------------------------------------------------------------------------

def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def refine_with_libclang(universe: Universe, build_dir: str) -> bool:
    """Replaces the regex declaration tables with AST-derived ones for
    every TU the compile DB knows. Best-effort: returns False when the
    bindings or the DB are unusable (the builtin tables stay)."""
    try:
        import clang.cindex as ci
    except Exception:
        return False
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return False
    try:
        db = ci.CompilationDatabase.fromDirectory(build_dir)
        index = ci.Index.create()
    except Exception:
        return False
    refined = set()
    for relpath, model in universe.models.items():
        if not relpath.endswith(".cpp"):
            continue
        full = os.path.join(universe.root, relpath)
        cmds = db.getCompileCommands(full)
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:-1]
                if a not in ("-c", "-o")]
        try:
            tu = index.parse(full, args=args)
        except Exception:
            continue
        atomics, condvars = set(), set()
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind in (ci.CursorKind.VAR_DECL,
                               ci.CursorKind.FIELD_DECL,
                               ci.CursorKind.PARM_DECL):
                spelling = cursor.type.get_canonical().spelling
                if "atomic" in spelling:
                    atomics.add(cursor.spelling)
                elif "CondVar" in spelling:
                    condvars.add(cursor.spelling)
        if atomics or condvars:
            model.atomic_decls |= atomics
            model.condvar_decls |= condvars
            refined.add(relpath)
    return bool(refined)


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

def load_baseline(path: str):
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != 1:
        raise SystemExit(f"error: unsupported baseline schema in {path}")
    return data.get("findings", {})


def write_baseline(path: str, findings: list) -> None:
    payload = {
        "schema": 1,
        "tool": "tca_analyze",
        "findings": {
            f.fingerprint: f"{f.kind} {f.file} {f.symbol}"
            for f in findings
        },
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def diff_baseline(findings: list, baseline: dict):
    current = {f.fingerprint: f for f in findings}
    new = [f for fp, f in current.items() if fp not in baseline]
    gone = {fp: desc for fp, desc in baseline.items() if fp not in current}
    return new, gone


# --------------------------------------------------------------------------
# Tree + fixture analysis drivers
# --------------------------------------------------------------------------

def tree_files(root: str) -> list:
    out = []
    for base, _dirs, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp", ".h")):
                rel = os.path.relpath(os.path.join(base, name), root)
                out.append(rel.replace(os.sep, "/"))
    return sorted(out)


def analyze(root: str, files: list, contract_path,
            checks=None, build_dir=None, use_libclang=False) -> list:
    universe = Universe(root)
    for rel in files:
        universe.add_file(rel)
    # Pull headers into the universe through the include closure so
    # header-declared atomics resolve AND header sites are audited.
    for rel in list(universe.models):
        universe.closure(rel)
    if use_libclang and build_dir:
        refine_with_libclang(universe, build_dir)
    enabled = set()
    for name, kinds in CHECKS.items():
        if checks is None or name in checks:
            enabled.update(kinds)
    contract = None
    if contract_path is not None:
        rel = os.path.relpath(contract_path, root).replace(os.sep, "/")
        contract = (contract_path, rel)
    findings = []
    findings += check_atomics(universe, contract, enabled)
    findings += check_cas_idiom(universe, enabled)
    findings += check_condvar(universe, enabled)
    findings += check_hot_path(universe, enabled)
    findings += check_capture_lifetime(universe, enabled)
    findings.sort(key=lambda f: (f.file, f.line, f.kind))
    fingerprint_findings(findings)
    return findings


# --------------------------------------------------------------------------
# Self-test
# --------------------------------------------------------------------------

def _fixture(name: str) -> str:
    return os.path.join(FIXTURE_DIR, name)


def self_test(root: str) -> int:
    import shutil
    import tempfile

    failures = []

    def expect(label, files, contract, expected_kinds, checks=None,
               tmp_root=None):
        found = analyze(tmp_root or root, files, contract, checks=checks)
        kinds = {f.kind for f in found}
        if kinds != set(expected_kinds):
            failures.append(
                f"{label}: expected kinds {sorted(set(expected_kinds))}, "
                f"got {sorted(kinds)}:\n  " +
                "\n  ".join(f.render() for f in found))
        return found

    fixture_contract = os.path.join(root, _fixture("atomics_contract.md"))
    stale_contract = os.path.join(root,
                                  _fixture("atomics_contract_stale.md"))

    # Each check fires on its bad fixture and stays silent on the good.
    expect("atomics/bad",
           [_fixture("atomics_bad.cpp"), _fixture("atomics_good.cpp")],
           stale_contract,
           ["atomic-implicit-order", "atomic-unregistered-order",
            "contract-stale-row"], checks=["atomics"])
    expect("atomics/good", [_fixture("atomics_good.cpp")],
           fixture_contract, [], checks=["atomics"])
    expect("cas/bad", [_fixture("cas_bad.cpp")], None,
           ["cas-single-order", "cas-reload-race"], checks=["cas-idiom"])
    expect("cas/good", [_fixture("cas_good.cpp")], None, [],
           checks=["cas-idiom"])
    expect("condvar/bad", [_fixture("condvar_bad.cpp")], None,
           ["condvar-no-predicate-loop"], checks=["condvar-predicate"])
    expect("condvar/good", [_fixture("condvar_good.cpp")], None, [],
           checks=["condvar-predicate"])
    expect("hotpath/bad", [_fixture("hotpath_bad.cpp")], None,
           ["hot-path-blocking"], checks=["hot-path"])
    expect("hotpath/good", [_fixture("hotpath_good.cpp")], None, [],
           checks=["hot-path"])
    expect("capture/bad", [_fixture("capture_bad.cpp")], None,
           ["capture-lifetime"], checks=["capture-lifetime"])
    expect("capture/good", [_fixture("capture_good.cpp")], None, [],
           checks=["capture-lifetime"])

    # Mutation test 1: dropping the row that registers the good
    # fixture's relaxed site must break the cross-verify.
    with open(fixture_contract, "r", encoding="utf-8") as fh:
        contract_lines = fh.readlines()
    good_rows = [i for i, l in enumerate(contract_lines)
                 if l.lstrip().startswith("|")
                 and "atomics_good.cpp" in l]
    if not good_rows:
        failures.append("mutation: atomics_contract.md has no row for "
                        "atomics_good.cpp to drop")
    else:
        tmp = tempfile.mkdtemp(prefix="tca_analyze_selftest_")
        try:
            fx_dst = os.path.join(tmp, FIXTURE_DIR)
            os.makedirs(fx_dst)
            for name in os.listdir(os.path.join(root, FIXTURE_DIR)):
                shutil.copy(os.path.join(root, FIXTURE_DIR, name),
                            os.path.join(fx_dst, name))
            mutated = os.path.join(tmp, "contract_dropped.md")
            with open(mutated, "w", encoding="utf-8") as fh:
                fh.writelines(l for i, l in enumerate(contract_lines)
                              if i != good_rows[0])
            expect("mutation/dropped-row",
                   [_fixture("atomics_good.cpp")], mutated,
                   ["atomic-unregistered-order"], checks=["atomics"],
                   tmp_root=tmp)
            # Mutation test 2: corrupting the registered order (relaxed ->
            # acquire) must fire BOTH directions: the relaxed site is now
            # unregistered and the acquire row is stale.
            corrupted = os.path.join(tmp, "contract_corrupted.md")
            with open(corrupted, "w", encoding="utf-8") as fh:
                for i, l in enumerate(contract_lines):
                    fh.write(l.replace("relaxed", "acquire")
                             if i == good_rows[0] else l)
            expect("mutation/corrupted-order",
                   [_fixture("atomics_good.cpp")], corrupted,
                   ["atomic-unregistered-order", "contract-stale-row"],
                   checks=["atomics"], tmp_root=tmp)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # Mutation test 3: the real tree's table is load-bearing — dropping
    # its first data row must produce a finding against the live tree.
    real_contract = os.path.join(root, DEFAULT_CONTRACT)
    if os.path.isfile(real_contract):
        rows, _ = parse_contract_table(real_contract)
        if rows:
            with open(real_contract, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
            tmp_table = tempfile.NamedTemporaryFile(
                "w", suffix=".md", delete=False, encoding="utf-8")
            try:
                tmp_table.writelines(
                    l for i, l in enumerate(lines, start=1)
                    if i != rows[0].line)
                tmp_table.close()
                found = analyze(root, tree_files(root), tmp_table.name,
                                checks=["atomics"])
                if not any(f.kind == "atomic-unregistered-order"
                           for f in found):
                    failures.append(
                        "mutation/tree-table: dropping the first contract "
                        "row produced no atomic-unregistered-order "
                        "finding — the cross-verify is not load-bearing")
            finally:
                os.unlink(tmp_table.name)
        else:
            failures.append("mutation/tree-table: docs/memory_model.md "
                            "has no parseable contract rows")

    # Suppression honored + fingerprints stable across runs.
    first = analyze(root, [_fixture("cas_bad.cpp")], None,
                    checks=["cas-idiom"])
    second = analyze(root, [_fixture("cas_bad.cpp")], None,
                     checks=["cas-idiom"])
    if [f.fingerprint for f in first] != [f.fingerprint for f in second]:
        failures.append("fingerprints are not stable across runs")
    if first and any(not f.fingerprint for f in first):
        failures.append("empty fingerprint on a finding")

    # Baseline diff logic: a fresh finding against an empty baseline is
    # NEW; a baselined one is not.
    if first:
        new, gone = diff_baseline(first, {})
        if len(new) != len(first) or gone:
            failures.append("baseline diff: empty baseline must mark all "
                            "findings NEW")
        accepted = {f.fingerprint: "x" for f in first}
        new, gone = diff_baseline(first, accepted)
        if new or gone:
            failures.append("baseline diff: accepted fingerprints must "
                            "not re-fire")

    if failures:
        print("tca_analyze --self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"tca_analyze --self-test OK ({len(CHECKS)} checks, "
          f"{len(ALL_KINDS)} finding kinds, fixtures + contract mutations "
          "verified)")
    return 0


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tca_analyze.py",
        description="AST-grounded concurrency analyzer "
                    "(see docs/static-analysis.md)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline path (default: {DEFAULT_BASELINE})")
    parser.add_argument("--contract", default=None,
                        help=f"ordering-contract table (default: "
                             f"{DEFAULT_CONTRACT})")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "builtin", "libclang"))
    parser.add_argument("--check", action="append", dest="checks",
                        choices=sorted(CHECKS),
                        help="run only this check (repeatable)")
    parser.add_argument("--require", action="store_true",
                        help="fail instead of SKIP when the requested "
                             "frontend cannot run")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="explicit files to analyze (default: src/ "
                             "tree)")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print(f"{name}: {', '.join(CHECKS[name])}")
        return 0

    root = os.path.abspath(args.root)

    if args.self_test:
        return self_test(root)

    use_libclang = False
    if args.frontend == "libclang":
        if not libclang_available():
            if args.require:
                print("error: --frontend libclang --require, but the "
                      "python clang bindings are not importable",
                      file=sys.stderr)
                return 2
            print("tca_analyze: SKIP — python libclang bindings not "
                  "available (builtin frontend via --frontend auto, or "
                  "--require to make this an error)")
            return 0
        use_libclang = True
    elif args.frontend == "auto":
        use_libclang = libclang_available()

    build_dir = args.build_dir
    if not os.path.isabs(build_dir):
        build_dir = os.path.join(root, build_dir)
    db = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db) and not args.paths:
        print(f"note: {os.path.relpath(db, root)} not found — analyzing "
              "the src/ tree directly (configure with cmake to export "
              "the compile DB)")

    if args.paths:
        files = [os.path.relpath(os.path.abspath(p), root)
                 .replace(os.sep, "/") for p in args.paths]
        contract_path = args.contract
    else:
        files = tree_files(root)
        contract_path = args.contract or os.path.join(root,
                                                      DEFAULT_CONTRACT)
        if not os.path.isfile(contract_path):
            print(f"error: ordering-contract table not found at "
                  f"{contract_path}", file=sys.stderr)
            return 2

    findings = analyze(root, files, contract_path, checks=args.checks,
                       build_dir=build_dir, use_libclang=use_libclang)

    frontend_name = "libclang+builtin" if use_libclang else "builtin"
    print(f"tca_analyze: {len(files)} files, frontend={frontend_name}, "
          f"{len(findings)} finding(s)")

    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(f"baseline updated: {os.path.relpath(baseline_path, root)} "
              f"({len(findings)} accepted finding(s))")
        for f in findings:
            print(f"  {f.render()}")
        return 0

    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"error: no baseline at {baseline_path} — run with "
              "--update-baseline to create one", file=sys.stderr)
        for f in findings:
            print(f"  {f.render()}", file=sys.stderr)
        return 1

    new, gone = diff_baseline(findings, baseline)
    if new:
        print(f"\n{len(new)} NEW finding(s) vs baseline:", file=sys.stderr)
        for f in new:
            print(f"  {f.render()}", file=sys.stderr)
        print("\nFix the findings, suppress with "
              "`// tca-analyze: allow(<kind>) <reason>`, or (for an "
              "accepted burn-down debt) --update-baseline.",
              file=sys.stderr)
        return 1
    if gone:
        print(f"\n{len(gone)} baselined finding(s) no longer fire — "
              "shrink the baseline with --update-baseline:",
              file=sys.stderr)
        for fp, desc in sorted(gone.items()):
            print(f"  {fp} {desc}", file=sys.stderr)
        return 1
    print("clean vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
