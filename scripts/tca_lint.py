#!/usr/bin/env python3
"""tca-lint: project-invariant linter for the TCA codebase.

Checks the invariants that Clang's thread-safety analysis and clang-tidy
cannot express because they are *project* conventions, not language rules
(docs/static-analysis.md):

  raw-throw      no `throw std::...` in src/ — errors go through the
                 tca::Error hierarchy (src/runtime/error.hpp) so every
                 failure carries an ErrorCode the sweeps can dispatch on.
  raw-stdio      no printf/fprintf/puts/fputs in src/ outside src/obs/ —
                 diagnostics go through the structured log sink
                 (obs/log.hpp) so they land in JSONL, not interleaved
                 stderr garbage under a thread pool.
  relaxed-order  `memory_order_relaxed` is allowed only in src/obs/ (the
                 metrics shards are relaxed by design) or in files that
                 carry a `tca-lint: relaxed-ok(<why>)` justification tag.
  explicit-bits  every explicit-enumeration entry point guards 2^n blowup
                 with tca::require_explicit_bits before allocating.
  span-required  every public engine entry emits a TCA_SPAN so exponential
                 wall-clock is attributable in Chrome traces.
  checkpoint-det no wall-clock / randomness in src/runtime/ (the
                 checkpointed paths): resume must be bit-identical, so
                 only steady_clock (monotonic, never serialized) is
                 allowed there.

Suppression policy (docs/static-analysis.md): a finding is suppressed by
`// tca-lint: allow(<rule>) <reason>` on the same line or the line(s)
immediately above; the reason is mandatory by convention and enforced in
review. The relaxed-order rule is file-granular: one
`// tca-lint: relaxed-ok(<why>)` tag covers the file, because a memory
-order argument is about the file's whole protocol, not one line.

Exit codes: 0 clean, 1 findings, 2 internal/self-test failure.

`--self-test` runs every rule against embedded good/bad fixtures and
fails if any rule misses its bad fixture (rule rot) or fires on its good
fixture (false positives). tests/CMakeLists.txt registers this as the
`lint_selftest` test; `lint_tree` runs the real tree.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys
import tempfile
from typing import Callable, Iterable

SRC_EXTENSIONS = {".hpp", ".cpp", ".h", ".cc", ".hpp.in"}

ALLOW_TAG = re.compile(r"tca-lint:\s*allow\(([\w,-]+)\)")
RELAXED_FILE_TAG = re.compile(r"tca-lint:\s*relaxed-ok\(")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based; 0 == whole file
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class SourceFile:
    relpath: str  # repo-relative, forward slashes
    text: str

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()


def _suppressed(lines: list[str], line_no: int, rule: str) -> bool:
    """True if `rule` is allowed on 1-based `line_no` (same line or the
    run of comment lines immediately above)."""
    candidates = [line_no]
    probe = line_no - 1
    while probe >= 1 and lines[probe - 1].lstrip().startswith("//"):
        candidates.append(probe)
        probe -= 1
    for cand in candidates:
        for match in ALLOW_TAG.finditer(lines[cand - 1]):
            if rule in match.group(1).split(","):
                return True
    return False


def _grep_rule(
    rule: str,
    pattern: re.Pattern[str],
    message: str,
    *,
    exempt_dirs: tuple[str, ...] = (),
) -> Callable[[SourceFile], list[Finding]]:
    def check(src: SourceFile) -> list[Finding]:
        if any(src.relpath.startswith(d) for d in exempt_dirs):
            return []
        out = []
        lines = src.lines
        for i, line in enumerate(lines, start=1):
            if pattern.search(line) and not _suppressed(lines, i, rule):
                out.append(Finding(src.relpath, i, rule, message))
        return out

    return check


# --- required-call rules (explicit-bits, span-required) -----------------


def _function_bodies(text: str, name_pattern: str) -> list[tuple[int, str]]:
    """Yields (1-based line, body) for each definition of a function whose
    signature matches `name_pattern` immediately before its '('. A match
    is a definition if a '{' appears after the closing paren of the
    argument list before any ';'. Brace-counted, comment-naive — fine for
    this codebase's formatting."""
    bodies = []
    for match in re.finditer(name_pattern + r"\s*\(", text):
        # Walk to the ')' closing the argument list.
        depth, i = 0, match.end() - 1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            continue
        # Definition? Find '{' before ';' (allowing initializer lists,
        # noexcept, attributes, TCA_* annotation macros in between).
        j = i + 1
        while j < len(text) and text[j] != "{" and text[j] != ";":
            j += 1
        if j >= len(text) or text[j] == ";":
            continue
        depth, k = 0, j
        while k < len(text):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        line = text.count("\n", 0, match.start()) + 1
        bodies.append((line, text[j : k + 1]))
    return bodies


@dataclasses.dataclass(frozen=True)
class EntryPoint:
    file: str  # repo-relative
    name: str  # regex matched immediately before '('
    short: str  # plain function name, for delegation detection


def _required_call_rule(
    rule: str,
    entries: tuple[EntryPoint, ...],
    required: str,
    message: str,
) -> Callable[[SourceFile], list[Finding]]:
    def check(src: SourceFile) -> list[Finding]:
        out = []
        lines = src.lines
        for entry in entries:
            if src.relpath != entry.file:
                continue
            bodies = _function_bodies(src.text, entry.name)
            if not bodies:
                out.append(
                    Finding(
                        src.relpath,
                        0,
                        rule,
                        f"entry point '{entry.name}' not found — the "
                        f"tca_lint.py config is stale; update ENTRY_POINTS",
                    )
                )
                continue
            for line, body in bodies:
                delegates = re.search(
                    re.escape(entry.short) + r"\s*\(", body
                )
                if required in body or delegates:
                    continue
                if not _suppressed(lines, line, rule):
                    out.append(
                        Finding(src.relpath, line, rule,
                                f"'{entry.short}': {message}")
                    )
        return out

    return check


# Every explicit-enumeration entry point: allocates or iterates 2^n and
# must refuse un-askable n with a budget-aware error instead of OOM.
EXPLICIT_BITS_ENTRIES = (
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraphBuild\s+build_serial", "build_serial"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::FunctionalGraph", "FunctionalGraph"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::from_table", "from_table"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::synchronous\b", "synchronous"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::sweep\b", "sweep"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::build_synchronous_parallel",
               "build_synchronous_parallel"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_ring", "count_gardens_of_eden_ring"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_explicit",
               "count_gardens_of_eden_explicit"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"GoeCensus\s+count_gardens_of_eden\b",
               "count_gardens_of_eden"),
    EntryPoint("src/phasespace/sharded_build.cpp",
               r"ShardedBuild\s+build_sharded", "build_sharded"),
    EntryPoint("src/phasespace/choice_digraph.cpp",
               r"ChoiceDigraph::ChoiceDigraph", "ChoiceDigraph"),
    EntryPoint("src/rules/analyze.cpp",
               r"truth_table", "truth_table"),
    EntryPoint("src/rules/enumerate.cpp",
               r"all_symmetric", "all_symmetric"),
)

# Every public engine entry: exponential wall-clock must show up as a
# named span in chrome://tracing (docs/observability.md).
SPAN_ENTRIES = (
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraphBuild\s+build_serial", "build_serial"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::FunctionalGraph", "FunctionalGraph"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::synchronous\b", "synchronous"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::sweep\b", "sweep"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::build_synchronous_parallel",
               "build_synchronous_parallel"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_ring", "count_gardens_of_eden_ring"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_explicit",
               "count_gardens_of_eden_explicit"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"GoeCensus\s+count_gardens_of_eden\b",
               "count_gardens_of_eden"),
    EntryPoint("src/phasespace/sharded_build.cpp",
               r"ShardedBuild\s+build_sharded", "build_sharded"),
    EntryPoint("src/aca/explorer.cpp", r"ReachSet\s+explore", "explore"),
    EntryPoint("src/interleave/explorer.cpp",
               r"interleaving_outcomes", "interleaving_outcomes"),
    EntryPoint("src/runtime/checkpoint.cpp",
               r"void\s+save_checkpoint", "save_checkpoint"),
    EntryPoint("src/runtime/checkpoint.cpp",
               r"Checkpoint\s+load_checkpoint", "load_checkpoint"),
)


def _relaxed_order_check(src: SourceFile) -> list[Finding]:
    if src.relpath.startswith("src/obs/"):
        return []  # sharded metrics cells are relaxed by design
    if not re.search(r"memory_order_relaxed", src.text):
        return []
    if RELAXED_FILE_TAG.search(src.text):
        return []
    out = []
    lines = src.lines
    for i, line in enumerate(lines, start=1):
        if "memory_order_relaxed" in line and not _suppressed(
            lines, i, "relaxed-order"
        ):
            out.append(
                Finding(
                    src.relpath, i, "relaxed-order",
                    "memory_order_relaxed outside src/obs/ needs a "
                    "file-level `tca-lint: relaxed-ok(<why>)` justification "
                    "tag (docs/static-analysis.md)",
                )
            )
    return out


RULES: dict[str, Callable[[SourceFile], list[Finding]]] = {
    "raw-throw": _grep_rule(
        "raw-throw",
        re.compile(r"\bthrow\s+std\s*::"),
        "raw std:: exception — throw a tca::Error subclass "
        "(src/runtime/error.hpp) so the failure carries an ErrorCode",
    ),
    "raw-stdio": _grep_rule(
        "raw-stdio",
        re.compile(r"(?<![\w.])(?:std\s*::\s*)?(?:fprintf|printf|puts|fputs)"
                   r"\s*\("),
        "raw stdio output — emit a structured event via obs::log_event "
        "(obs/log.hpp) instead",
        exempt_dirs=("src/obs/",),
    ),
    "relaxed-order": _relaxed_order_check,
    "explicit-bits": _required_call_rule(
        "explicit-bits",
        EXPLICIT_BITS_ENTRIES,
        "require_explicit_bits",
        "explicit-enumeration entry point must call "
        "tca::require_explicit_bits before allocating 2^n state",
    ),
    "span-required": _required_call_rule(
        "span-required",
        SPAN_ENTRIES,
        "TCA_SPAN",
        "public engine entry must open a TCA_SPAN "
        "(obs/trace.hpp) so its wall-clock is attributable",
    ),
    "checkpoint-det": _grep_rule(
        "checkpoint-det",
        re.compile(r"system_clock|random_device|\bstd::rand\b|\bsrand\b|"
                   r"\blocaltime\b|\bgmtime\b|\btime\s*\(\s*(?:NULL|nullptr|0)?"
                   r"\s*\)"),
        "wall-clock / randomness in a checkpointed path — resume must be "
        "deterministic; use steady_clock or plumb entropy in explicitly",
        exempt_dirs=(),
    ),
}

# checkpoint-det applies only to src/runtime/ (the checkpointed machinery).
CHECKPOINT_DET_SCOPE = "src/runtime/"


def lint_file(src: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for rule, check in RULES.items():
        if rule == "checkpoint-det" and not src.relpath.startswith(
            CHECKPOINT_DET_SCOPE
        ):
            continue
        findings.extend(check(src))
    return findings


def iter_sources(root: pathlib.Path) -> Iterable[SourceFile]:
    src_root = root / "src"
    for path in sorted(src_root.rglob("*")):
        if not path.is_file():
            continue
        name = path.name
        if not any(name.endswith(ext) for ext in SRC_EXTENSIONS):
            continue
        rel = path.relative_to(root).as_posix()
        yield SourceFile(rel, path.read_text(encoding="utf-8",
                                            errors="replace"))


def lint_tree(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for src in iter_sources(root):
        findings.extend(lint_file(src))
    return findings


# --- self-test ----------------------------------------------------------

# Each rule: fixtures that MUST fire and fixtures that MUST stay quiet.
# A rule whose bad fixture stops firing has rotted; a rule that fires on
# its good fixture is a false-positive generator. Both fail the build.
_SELFTEST = {
    "raw-throw": {
        "bad": [("src/core/x.cpp",
                 'void f() { throw std::runtime_error("boom"); }\n')],
        "good": [
            ("src/core/x.cpp",
             'void f() { throw tca::RuntimeError("boom", code); }\n'),
            ("src/core/x.cpp",
             "// tca-lint: allow(raw-throw) must look like the real thing\n"
             "void f() { throw std::bad_alloc(); }\n"),
        ],
    },
    "raw-stdio": {
        "bad": [
            ("src/core/x.cpp", 'void f() { std::fprintf(stderr, "x"); }\n'),
            ("src/aca/y.cpp", 'void f() { printf("x"); }\n'),
        ],
        "good": [
            ("src/obs/sink.cpp", 'void f() { std::fprintf(stderr, "x"); }\n'),
            ("src/core/x.cpp",
             'void f() { std::snprintf(buf, sizeof buf, "%d", v); }\n'),
            ("src/core/x.cpp",
             '// tca-lint: allow(raw-stdio) pre-main, sink unavailable\n'
             'void f() { std::fprintf(stderr, "x"); }\n'),
        ],
    },
    "relaxed-order": {
        "bad": [("src/core/x.cpp",
                 "auto v = flag.load(std::memory_order_relaxed);\n")],
        "good": [
            ("src/obs/m.cpp",
             "auto v = flag.load(std::memory_order_relaxed);\n"),
            ("src/core/x.cpp",
             "// tca-lint: relaxed-ok(monotonic one-shot flag)\n"
             "auto v = flag.load(std::memory_order_relaxed);\n"),
        ],
    },
    "explicit-bits": {
        "bad": [("src/rules/analyze.cpp",
                 "std::vector<State> truth_table(const Rule& r, "
                 "std::uint32_t arity) {\n"
                 "  return make_table(r, arity);\n"
                 "}\n")],
        "good": [
            ("src/rules/analyze.cpp",
             "std::vector<State> truth_table(const Rule& r, "
             "std::uint32_t arity) {\n"
             "  tca::require_explicit_bits(arity, 20, \"truth_table\");\n"
             "  return make_table(r, arity);\n"
             "}\n"),
            # Delegating overloads funnel into the checked definition.
            ("src/rules/analyze.cpp",
             "std::vector<State> truth_table(const Rule& r) {\n"
             "  return truth_table(r, default_arity(r));\n"
             "}\n"
             "std::vector<State> truth_table(const Rule& r, "
             "std::uint32_t arity) {\n"
             "  tca::require_explicit_bits(arity, 20, \"truth_table\");\n"
             "  return make_table(r, arity);\n"
             "}\n"),
        ],
    },
    "span-required": {
        "bad": [("src/runtime/checkpoint.cpp",
                 "void save_checkpoint(const std::string& p, "
                 "const Checkpoint& c) {\n"
                 "  write(p, c);\n"
                 "}\n"
                 "Checkpoint load_checkpoint(const std::string& p) {\n"
                 "  TCA_SPAN(\"checkpoint_load\");\n"
                 "  return read(p);\n"
                 "}\n")],
        "good": [("src/runtime/checkpoint.cpp",
                  "void save_checkpoint(const std::string& p, "
                  "const Checkpoint& c) {\n"
                  "  TCA_SPAN(\"checkpoint_save\");\n"
                  "  write(p, c);\n"
                  "}\n"
                  "Checkpoint load_checkpoint(const std::string& p) {\n"
                  "  TCA_SPAN(\"checkpoint_load\");\n"
                  "  return read(p);\n"
                  "}\n")],
    },
    "checkpoint-det": {
        "bad": [
            ("src/runtime/x.cpp",
             "auto t = std::chrono::system_clock::now();\n"),
            ("src/runtime/x.cpp", "std::random_device rd;\n"),
        ],
        "good": [
            ("src/runtime/x.cpp",
             "auto t = std::chrono::steady_clock::now();\n"),
            # Outside src/runtime/ the rule does not apply (log timestamps
            # are wall-clock on purpose).
            ("src/obs/log.cpp",
             "auto t = std::chrono::system_clock::now();\n"),
            ("src/runtime/x.cpp",
             "// tca-lint: allow(checkpoint-det) manifest stamp only\n"
             "auto t = std::chrono::system_clock::now();\n"),
        ],
    },
}


def self_test() -> int:
    failures = []
    for rule, cases in sorted(_SELFTEST.items()):
        for kind in ("bad", "good"):
            for relpath, text in cases[kind]:
                src = SourceFile(relpath, text)
                hits = [f for f in lint_file(src) if f.rule == rule]
                if kind == "bad" and not hits:
                    failures.append(
                        f"{rule}: MUST fire on bad fixture {relpath!r} "
                        f"but stayed quiet (rule rot)")
                if kind == "good" and hits:
                    failures.append(
                        f"{rule}: fired on good fixture {relpath!r}: "
                        f"{hits[0].render()} (false positive)")
    # The entry-point configs must also self-check staleness: a missing
    # function is a finding, not a silent pass.
    stale = SourceFile("src/rules/analyze.cpp", "int unrelated;\n")
    if not any(f.rule == "explicit-bits" and f.line == 0
               for f in lint_file(stale)):
        failures.append("explicit-bits: stale entry-point config must be "
                        "reported as a finding")
    if failures:
        print("tca-lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 2
    n_fixtures = sum(
        len(c["bad"]) + len(c["good"]) for c in _SELFTEST.values())
    print(f"tca-lint self-test OK: {len(RULES)} rules, "
          f"{n_fixtures} fixtures (every rule fires and stays quiet)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run every rule against embedded good/bad "
                             "fixtures and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test()

    if not (args.root / "src").is_dir():
        print(f"tca-lint: no src/ under {args.root}", file=sys.stderr)
        return 2
    findings = lint_tree(args.root)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"tca-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tca-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
