#!/usr/bin/env python3
"""tca-lint: project-invariant linter for the TCA codebase.

Checks the invariants that Clang's thread-safety analysis and clang-tidy
cannot express because they are *project* conventions, not language rules
(docs/static-analysis.md):

  raw-throw      no `throw std::...` in src/ — errors go through the
                 tca::Error hierarchy (src/runtime/error.hpp) so every
                 failure carries an ErrorCode the sweeps can dispatch on.
  raw-stdio      no printf/fprintf/puts/fputs in src/ outside src/obs/ —
                 diagnostics go through the structured log sink
                 (obs/log.hpp) so they land in JSONL, not interleaved
                 stderr garbage under a thread pool.
  relaxed-order  `memory_order_relaxed` is allowed only in src/obs/ (the
                 metrics shards are relaxed by design) or in files that
                 carry a `tca-lint: relaxed-ok(<why>)` justification tag.
  explicit-bits  every explicit-enumeration entry point guards 2^n blowup
                 with tca::require_explicit_bits before allocating.
  span-required  every public engine entry emits a TCA_SPAN so exponential
                 wall-clock is attributable in Chrome traces.
  checkpoint-det no wall-clock / randomness in src/runtime/ (the
                 checkpointed paths): resume must be bit-identical, so
                 only steady_clock (monotonic, never serialized) is
                 allowed there.
  memory-model-stale
                 every data row of docs/memory_model.md (the ordering-
                 contract table that scripts/tca_analyze.py cross-
                 verifies) must point at a file that still exists and a
                 symbol that still occurs in it. The deep semantic check
                 (orders match actual sites) lives in tca_analyze.py;
                 this rule is the cheap config-staleness guard that also
                 runs when the analyzer is skipped.
  hot-path-roots every entry in HOT_PATH_ROOTS — the registry of
                 TCA_HOT_PATH-annotated hot loops that tca_analyze.py's
                 hot-path check audits (src/core/contracts.hpp) — must
                 still match its file. Deleting or moving an annotation
                 without updating the registry is a finding, so the
                 hot-path audit can never silently lose coverage.

Suppression policy (docs/static-analysis.md): a finding is suppressed by
`// tca-lint: allow(<rule>) <reason>` on the same line or the line(s)
immediately above; the reason is mandatory by convention and enforced in
review. The relaxed-order rule is file-granular: one
`// tca-lint: relaxed-ok(<why>)` tag covers the file, because a memory
-order argument is about the file's whole protocol, not one line.

Exit codes: 0 clean, 1 findings, 2 internal/self-test failure.

`--self-test` runs every rule against embedded good/bad fixtures and
fails if any rule misses its bad fixture (rule rot) or fires on its good
fixture (false positives). tests/CMakeLists.txt registers this as the
`lint_selftest` test; `lint_tree` runs the real tree.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys
import tempfile
from typing import Callable, Iterable

SRC_EXTENSIONS = {".hpp", ".cpp", ".h", ".cc", ".hpp.in"}

ALLOW_TAG = re.compile(r"tca-lint:\s*allow\(([\w,-]+)\)")
RELAXED_FILE_TAG = re.compile(r"tca-lint:\s*relaxed-ok\(")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based; 0 == whole file
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass(frozen=True)
class SourceFile:
    relpath: str  # repo-relative, forward slashes
    text: str

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()


def _suppressed(lines: list[str], line_no: int, rule: str) -> bool:
    """True if `rule` is allowed on 1-based `line_no` (same line or the
    run of comment lines immediately above)."""
    candidates = [line_no]
    probe = line_no - 1
    while probe >= 1 and lines[probe - 1].lstrip().startswith("//"):
        candidates.append(probe)
        probe -= 1
    for cand in candidates:
        for match in ALLOW_TAG.finditer(lines[cand - 1]):
            if rule in match.group(1).split(","):
                return True
    return False


def _grep_rule(
    rule: str,
    pattern: re.Pattern[str],
    message: str,
    *,
    exempt_dirs: tuple[str, ...] = (),
) -> Callable[[SourceFile], list[Finding]]:
    def check(src: SourceFile) -> list[Finding]:
        if any(src.relpath.startswith(d) for d in exempt_dirs):
            return []
        out = []
        lines = src.lines
        for i, line in enumerate(lines, start=1):
            if pattern.search(line) and not _suppressed(lines, i, rule):
                out.append(Finding(src.relpath, i, rule, message))
        return out

    return check


# --- required-call rules (explicit-bits, span-required) -----------------


def _function_bodies(text: str, name_pattern: str) -> list[tuple[int, str]]:
    """Yields (1-based line, body) for each definition of a function whose
    signature matches `name_pattern` immediately before its '('. A match
    is a definition if a '{' appears after the closing paren of the
    argument list before any ';'. Brace-counted, comment-naive — fine for
    this codebase's formatting."""
    bodies = []
    for match in re.finditer(name_pattern + r"\s*\(", text):
        # Walk to the ')' closing the argument list.
        depth, i = 0, match.end() - 1
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        else:
            continue
        # Definition? Find '{' before ';' (allowing initializer lists,
        # noexcept, attributes, TCA_* annotation macros in between).
        j = i + 1
        while j < len(text) and text[j] != "{" and text[j] != ";":
            j += 1
        if j >= len(text) or text[j] == ";":
            continue
        depth, k = 0, j
        while k < len(text):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        line = text.count("\n", 0, match.start()) + 1
        bodies.append((line, text[j : k + 1]))
    return bodies


@dataclasses.dataclass(frozen=True)
class EntryPoint:
    file: str  # repo-relative
    name: str  # regex matched immediately before '('
    short: str  # plain function name, for delegation detection


def _required_call_rule(
    rule: str,
    entries: tuple[EntryPoint, ...],
    required: str,
    message: str,
) -> Callable[[SourceFile], list[Finding]]:
    def check(src: SourceFile) -> list[Finding]:
        out = []
        lines = src.lines
        for entry in entries:
            if src.relpath != entry.file:
                continue
            bodies = _function_bodies(src.text, entry.name)
            if not bodies:
                out.append(
                    Finding(
                        src.relpath,
                        0,
                        rule,
                        f"entry point '{entry.name}' not found — the "
                        f"tca_lint.py config is stale; update ENTRY_POINTS",
                    )
                )
                continue
            for line, body in bodies:
                delegates = re.search(
                    re.escape(entry.short) + r"\s*\(", body
                )
                if required in body or delegates:
                    continue
                if not _suppressed(lines, line, rule):
                    out.append(
                        Finding(src.relpath, line, rule,
                                f"'{entry.short}': {message}")
                    )
        return out

    return check


# Every explicit-enumeration entry point: allocates or iterates 2^n and
# must refuse un-askable n with a budget-aware error instead of OOM.
EXPLICIT_BITS_ENTRIES = (
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraphBuild\s+build_serial", "build_serial"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::FunctionalGraph", "FunctionalGraph"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::from_table", "from_table"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::synchronous\b", "synchronous"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::sweep\b", "sweep"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::build_synchronous_parallel",
               "build_synchronous_parallel"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_ring", "count_gardens_of_eden_ring"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_explicit",
               "count_gardens_of_eden_explicit"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"GoeCensus\s+count_gardens_of_eden\b",
               "count_gardens_of_eden"),
    EntryPoint("src/phasespace/sharded_build.cpp",
               r"ShardedBuild\s+build_sharded", "build_sharded"),
    EntryPoint("src/phasespace/choice_digraph.cpp",
               r"ChoiceDigraph::ChoiceDigraph", "ChoiceDigraph"),
    EntryPoint("src/rules/analyze.cpp",
               r"truth_table", "truth_table"),
    EntryPoint("src/rules/enumerate.cpp",
               r"all_symmetric", "all_symmetric"),
)

# Every public engine entry: exponential wall-clock must show up as a
# named span in chrome://tracing (docs/observability.md).
SPAN_ENTRIES = (
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraphBuild\s+build_serial", "build_serial"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::FunctionalGraph", "FunctionalGraph"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::synchronous\b", "synchronous"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::sweep\b", "sweep"),
    EntryPoint("src/phasespace/functional_graph.cpp",
               r"FunctionalGraph::build_synchronous_parallel",
               "build_synchronous_parallel"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_ring", "count_gardens_of_eden_ring"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"count_gardens_of_eden_explicit",
               "count_gardens_of_eden_explicit"),
    EntryPoint("src/phasespace/preimage.cpp",
               r"GoeCensus\s+count_gardens_of_eden\b",
               "count_gardens_of_eden"),
    EntryPoint("src/phasespace/sharded_build.cpp",
               r"ShardedBuild\s+build_sharded", "build_sharded"),
    EntryPoint("src/aca/explorer.cpp", r"ReachSet\s+explore", "explore"),
    EntryPoint("src/interleave/explorer.cpp",
               r"interleaving_outcomes", "interleaving_outcomes"),
    EntryPoint("src/runtime/checkpoint.cpp",
               r"void\s+save_checkpoint", "save_checkpoint"),
    EntryPoint("src/runtime/checkpoint.cpp",
               r"Checkpoint\s+load_checkpoint", "load_checkpoint"),
)


def _relaxed_order_check(src: SourceFile) -> list[Finding]:
    if src.relpath.startswith("src/obs/"):
        return []  # sharded metrics cells are relaxed by design
    if not re.search(r"memory_order_relaxed", src.text):
        return []
    if RELAXED_FILE_TAG.search(src.text):
        return []
    out = []
    lines = src.lines
    for i, line in enumerate(lines, start=1):
        if "memory_order_relaxed" in line and not _suppressed(
            lines, i, "relaxed-order"
        ):
            out.append(
                Finding(
                    src.relpath, i, "relaxed-order",
                    "memory_order_relaxed outside src/obs/ needs a "
                    "file-level `tca-lint: relaxed-ok(<why>)` justification "
                    "tag (docs/static-analysis.md)",
                )
            )
    return out


RULES: dict[str, Callable[[SourceFile], list[Finding]]] = {
    "raw-throw": _grep_rule(
        "raw-throw",
        re.compile(r"\bthrow\s+std\s*::"),
        "raw std:: exception — throw a tca::Error subclass "
        "(src/runtime/error.hpp) so the failure carries an ErrorCode",
    ),
    "raw-stdio": _grep_rule(
        "raw-stdio",
        re.compile(r"(?<![\w.])(?:std\s*::\s*)?(?:fprintf|printf|puts|fputs)"
                   r"\s*\("),
        "raw stdio output — emit a structured event via obs::log_event "
        "(obs/log.hpp) instead",
        exempt_dirs=("src/obs/",),
    ),
    "relaxed-order": _relaxed_order_check,
    "explicit-bits": _required_call_rule(
        "explicit-bits",
        EXPLICIT_BITS_ENTRIES,
        "require_explicit_bits",
        "explicit-enumeration entry point must call "
        "tca::require_explicit_bits before allocating 2^n state",
    ),
    "span-required": _required_call_rule(
        "span-required",
        SPAN_ENTRIES,
        "TCA_SPAN",
        "public engine entry must open a TCA_SPAN "
        "(obs/trace.hpp) so its wall-clock is attributable",
    ),
    "checkpoint-det": _grep_rule(
        "checkpoint-det",
        re.compile(r"system_clock|random_device|\bstd::rand\b|\bsrand\b|"
                   r"\blocaltime\b|\bgmtime\b|\btime\s*\(\s*(?:NULL|nullptr|0)?"
                   r"\s*\)"),
        "wall-clock / randomness in a checkpointed path — resume must be "
        "deterministic; use steady_clock or plumb entropy in explicitly",
        exempt_dirs=(),
    ),
}

# checkpoint-det applies only to src/runtime/ (the checkpointed machinery).
CHECKPOINT_DET_SCOPE = "src/runtime/"


# --- tree-level rules (memory-model-stale, hot-path-roots) --------------

MEMORY_MODEL_DOC = "docs/memory_model.md"

# Registry of TCA_HOT_PATH-annotated roots (src/core/contracts.hpp).
# scripts/tca_analyze.py audits the loops under these for blocking
# constructs; this registry pins each annotation in place so removing
# one is a visible config change, not silent coverage loss. Format:
# (repo-relative file, regex that must match the file text).
HOT_PATH_ROOTS: tuple[tuple[str, str], ...] = (
    ("src/core/thread_pool.cpp",
     r"TCA_HOT_PATH\s+void\s+ThreadPool::drain\b"),
    ("src/core/batch_kernels.cpp",
     r"TCA_HOT_PATH\s+void\s+BatchStepper::step\b"),
    ("src/core/batch_kernels.cpp",
     r"TCA_HOT_PATH\s+void\s+BatchStepper::sweep\b"),
    ("src/core/batch_kernels_impl.hpp",
     r"TCA_HOT_PATH\s+void\s+step\b"),
    ("src/core/batch_kernels_impl.hpp",
     r"TCA_HOT_PATH\s+void\s+sweep\b"),
    ("src/core/batch_kernels_impl.hpp",
     r"TCA_HOT_PATH\s+void\s+step_code_range\b"),
    ("src/core/batch_kernels_impl.hpp",
     r"TCA_HOT_PATH\s+void\s+sweep_code_range\b"),
    ("src/phasespace/sharded_build.cpp",
     r"\(unsigned\s+worker_id\)\s*TCA_HOT_PATH\s*\{"),
    ("src/phasespace/successor_store.cpp",
     r"TCA_HOT_PATH\s+inline\s+void\s+merge_word\b"),
    ("src/phasespace/successor_store.cpp",
     r"TCA_HOT_PATH\s+void\s+FlatStore::put_range\b"),
    ("src/phasespace/successor_store.cpp",
     r"TCA_HOT_PATH\s+void\s+PackedStore::put_range\b"),
)

_CONTRACT_ORDERS = {"relaxed", "consume", "acquire", "release",
                    "acq_rel", "seq_cst"}


def _contract_rows(doc_text: str) -> list[tuple[int, str, str]]:
    """(1-based line, file, symbol) for each data row of the ordering-
    contract table. Header/separator rows and rows whose orders cell
    contains no known order token are skipped — tca_analyze.py owns the
    malformed-row diagnostics; here we only need the pointers."""
    rows = []
    for i, line in enumerate(doc_text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [c.strip().strip("`").strip()
                 for c in stripped.strip("|").split("|")]
        if len(cells) < 4:
            continue
        file_cell, symbol_cell, orders_cell = cells[0], cells[1], cells[2]
        order_tokens = set(re.findall(r"[a-z_]+", orders_cell))
        if not (order_tokens & _CONTRACT_ORDERS):
            continue  # header / separator / prose row
        if not file_cell or not symbol_cell:
            continue
        rows.append((i, file_cell, symbol_cell))
    return rows


def check_memory_model(
    doc_text: str | None, sources: dict[str, str]
) -> list[Finding]:
    """memory-model-stale: every contract row must point at an existing
    file and a symbol that still occurs in it. `sources` maps repo-
    relative paths to file text; `doc_text` is None when the doc itself
    is missing."""
    rule = "memory-model-stale"
    if doc_text is None:
        return [Finding(MEMORY_MODEL_DOC, 0, rule,
                        "docs/memory_model.md is missing but the codebase "
                        "uses atomics — the ordering-contract table is "
                        "load-bearing (scripts/tca_analyze.py)")]
    out = []
    for line, file_cell, symbol_cell in _contract_rows(doc_text):
        text = sources.get(file_cell)
        if text is None:
            out.append(Finding(
                MEMORY_MODEL_DOC, line, rule,
                f"contract row points at '{file_cell}' which does not "
                f"exist — delete or retarget the row"))
            continue
        if not re.search(r"\b" + re.escape(symbol_cell) + r"\b", text):
            out.append(Finding(
                MEMORY_MODEL_DOC, line, rule,
                f"contract row registers symbol '{symbol_cell}' which no "
                f"longer occurs in '{file_cell}' — stale row"))
    return out


def check_hot_path_roots(
    roots: tuple[tuple[str, str], ...], sources: dict[str, str]
) -> list[Finding]:
    """hot-path-roots: every registered TCA_HOT_PATH annotation must
    still match its file (stale registry == silent audit-coverage loss,
    same policy as the ENTRY_POINTS staleness findings)."""
    rule = "hot-path-roots"
    out = []
    for relpath, pattern in roots:
        text = sources.get(relpath)
        if text is None:
            out.append(Finding(
                relpath, 0, rule,
                f"HOT_PATH_ROOTS entry points at missing file — the "
                f"tca_lint.py registry is stale"))
            continue
        if not re.search(pattern, text):
            out.append(Finding(
                relpath, 0, rule,
                f"registered hot-path root /{pattern}/ no longer matches "
                f"— restore the TCA_HOT_PATH annotation or update "
                f"HOT_PATH_ROOTS (and docs/memory_model.md if orderings "
                f"moved)"))
    return out


def lint_file(src: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    for rule, check in RULES.items():
        if rule == "checkpoint-det" and not src.relpath.startswith(
            CHECKPOINT_DET_SCOPE
        ):
            continue
        findings.extend(check(src))
    return findings


def iter_sources(root: pathlib.Path) -> Iterable[SourceFile]:
    src_root = root / "src"
    for path in sorted(src_root.rglob("*")):
        if not path.is_file():
            continue
        name = path.name
        if not any(name.endswith(ext) for ext in SRC_EXTENSIONS):
            continue
        rel = path.relative_to(root).as_posix()
        yield SourceFile(rel, path.read_text(encoding="utf-8",
                                            errors="replace"))


def lint_tree(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    sources: dict[str, str] = {}
    for src in iter_sources(root):
        sources[src.relpath] = src.text
        findings.extend(lint_file(src))
    doc = root / MEMORY_MODEL_DOC
    doc_text = (doc.read_text(encoding="utf-8", errors="replace")
                if doc.is_file() else None)
    findings.extend(check_memory_model(doc_text, sources))
    findings.extend(check_hot_path_roots(HOT_PATH_ROOTS, sources))
    return findings


# --- self-test ----------------------------------------------------------

# Each rule: fixtures that MUST fire and fixtures that MUST stay quiet.
# A rule whose bad fixture stops firing has rotted; a rule that fires on
# its good fixture is a false-positive generator. Both fail the build.
_SELFTEST = {
    "raw-throw": {
        "bad": [("src/core/x.cpp",
                 'void f() { throw std::runtime_error("boom"); }\n')],
        "good": [
            ("src/core/x.cpp",
             'void f() { throw tca::RuntimeError("boom", code); }\n'),
            ("src/core/x.cpp",
             "// tca-lint: allow(raw-throw) must look like the real thing\n"
             "void f() { throw std::bad_alloc(); }\n"),
        ],
    },
    "raw-stdio": {
        "bad": [
            ("src/core/x.cpp", 'void f() { std::fprintf(stderr, "x"); }\n'),
            ("src/aca/y.cpp", 'void f() { printf("x"); }\n'),
        ],
        "good": [
            ("src/obs/sink.cpp", 'void f() { std::fprintf(stderr, "x"); }\n'),
            ("src/core/x.cpp",
             'void f() { std::snprintf(buf, sizeof buf, "%d", v); }\n'),
            ("src/core/x.cpp",
             '// tca-lint: allow(raw-stdio) pre-main, sink unavailable\n'
             'void f() { std::fprintf(stderr, "x"); }\n'),
        ],
    },
    "relaxed-order": {
        "bad": [("src/core/x.cpp",
                 "auto v = flag.load(std::memory_order_relaxed);\n")],
        "good": [
            ("src/obs/m.cpp",
             "auto v = flag.load(std::memory_order_relaxed);\n"),
            ("src/core/x.cpp",
             "// tca-lint: relaxed-ok(monotonic one-shot flag)\n"
             "auto v = flag.load(std::memory_order_relaxed);\n"),
        ],
    },
    "explicit-bits": {
        "bad": [("src/rules/analyze.cpp",
                 "std::vector<State> truth_table(const Rule& r, "
                 "std::uint32_t arity) {\n"
                 "  return make_table(r, arity);\n"
                 "}\n")],
        "good": [
            ("src/rules/analyze.cpp",
             "std::vector<State> truth_table(const Rule& r, "
             "std::uint32_t arity) {\n"
             "  tca::require_explicit_bits(arity, 20, \"truth_table\");\n"
             "  return make_table(r, arity);\n"
             "}\n"),
            # Delegating overloads funnel into the checked definition.
            ("src/rules/analyze.cpp",
             "std::vector<State> truth_table(const Rule& r) {\n"
             "  return truth_table(r, default_arity(r));\n"
             "}\n"
             "std::vector<State> truth_table(const Rule& r, "
             "std::uint32_t arity) {\n"
             "  tca::require_explicit_bits(arity, 20, \"truth_table\");\n"
             "  return make_table(r, arity);\n"
             "}\n"),
        ],
    },
    "span-required": {
        "bad": [("src/runtime/checkpoint.cpp",
                 "void save_checkpoint(const std::string& p, "
                 "const Checkpoint& c) {\n"
                 "  write(p, c);\n"
                 "}\n"
                 "Checkpoint load_checkpoint(const std::string& p) {\n"
                 "  TCA_SPAN(\"checkpoint_load\");\n"
                 "  return read(p);\n"
                 "}\n")],
        "good": [("src/runtime/checkpoint.cpp",
                  "void save_checkpoint(const std::string& p, "
                  "const Checkpoint& c) {\n"
                  "  TCA_SPAN(\"checkpoint_save\");\n"
                  "  write(p, c);\n"
                  "}\n"
                  "Checkpoint load_checkpoint(const std::string& p) {\n"
                  "  TCA_SPAN(\"checkpoint_load\");\n"
                  "  return read(p);\n"
                  "}\n")],
    },
    "checkpoint-det": {
        "bad": [
            ("src/runtime/x.cpp",
             "auto t = std::chrono::system_clock::now();\n"),
            ("src/runtime/x.cpp", "std::random_device rd;\n"),
        ],
        "good": [
            ("src/runtime/x.cpp",
             "auto t = std::chrono::steady_clock::now();\n"),
            # Outside src/runtime/ the rule does not apply (log timestamps
            # are wall-clock on purpose).
            ("src/obs/log.cpp",
             "auto t = std::chrono::system_clock::now();\n"),
            ("src/runtime/x.cpp",
             "// tca-lint: allow(checkpoint-det) manifest stamp only\n"
             "auto t = std::chrono::system_clock::now();\n"),
        ],
    },
}


def self_test() -> int:
    failures = []
    for rule, cases in sorted(_SELFTEST.items()):
        for kind in ("bad", "good"):
            for relpath, text in cases[kind]:
                src = SourceFile(relpath, text)
                hits = [f for f in lint_file(src) if f.rule == rule]
                if kind == "bad" and not hits:
                    failures.append(
                        f"{rule}: MUST fire on bad fixture {relpath!r} "
                        f"but stayed quiet (rule rot)")
                if kind == "good" and hits:
                    failures.append(
                        f"{rule}: fired on good fixture {relpath!r}: "
                        f"{hits[0].render()} (false positive)")
    # The entry-point configs must also self-check staleness: a missing
    # function is a finding, not a silent pass.
    stale = SourceFile("src/rules/analyze.cpp", "int unrelated;\n")
    if not any(f.rule == "explicit-bits" and f.line == 0
               for f in lint_file(stale)):
        failures.append("explicit-bits: stale entry-point config must be "
                        "reported as a finding")

    # memory-model-stale: good table quiet, dead file / dead symbol fire,
    # missing doc fires.
    mm_sources = {"src/core/x.cpp":
                  "std::atomic<int> flag;\n"
                  "int f() { return flag.load(std::memory_order_relaxed); }"
                  "\n"}
    mm_header = ("| file | symbol | orders | happens-before |\n"
                 "|------|--------|--------|----------------|\n")
    good_doc = mm_header + \
        "| `src/core/x.cpp` | `flag` | `relaxed` | advisory poll |\n"
    if check_memory_model(good_doc, mm_sources):
        failures.append("memory-model-stale: fired on a live contract row "
                        "(false positive)")
    dead_file_doc = mm_header + \
        "| `src/core/gone.cpp` | `flag` | `relaxed` | advisory |\n"
    if not check_memory_model(dead_file_doc, mm_sources):
        failures.append("memory-model-stale: MUST fire on a row whose "
                        "file is gone (rule rot)")
    dead_symbol_doc = mm_header + \
        "| `src/core/x.cpp` | `retired` | `relaxed` | advisory |\n"
    if not check_memory_model(dead_symbol_doc, mm_sources):
        failures.append("memory-model-stale: MUST fire on a row whose "
                        "symbol is gone (rule rot)")
    if not check_memory_model(None, mm_sources):
        failures.append("memory-model-stale: MUST fire when the doc "
                        "itself is missing (rule rot)")

    # hot-path-roots: live annotation quiet; stripped annotation and
    # missing file fire.
    hp_roots = (("src/core/x.cpp", r"TCA_HOT_PATH\s+void\s+step\b"),)
    live = {"src/core/x.cpp": "TCA_HOT_PATH void step(int* p) { ++*p; }\n"}
    if check_hot_path_roots(hp_roots, live):
        failures.append("hot-path-roots: fired on a live annotation "
                        "(false positive)")
    stripped = {"src/core/x.cpp": "void step(int* p) { ++*p; }\n"}
    if not check_hot_path_roots(hp_roots, stripped):
        failures.append("hot-path-roots: MUST fire when the annotation "
                        "is stripped (rule rot)")
    if not check_hot_path_roots(hp_roots, {}):
        failures.append("hot-path-roots: MUST fire when the registered "
                        "file is gone (rule rot)")

    # The in-tree registry itself must be live (otherwise lint_tree on
    # this very checkout would fail anyway — surface it here with a
    # clearer message).
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    if (repo_root / "src").is_dir():
        tree_sources = {s.relpath: s.text for s in iter_sources(repo_root)}
        stale_roots = check_hot_path_roots(HOT_PATH_ROOTS, tree_sources)
        for f in stale_roots:
            failures.append(f"hot-path-roots: in-tree registry stale: "
                            f"{f.render()}")
    if failures:
        print("tca-lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 2
    n_fixtures = sum(
        len(c["bad"]) + len(c["good"]) for c in _SELFTEST.values())
    print(f"tca-lint self-test OK: {len(RULES) + 2} rules, "
          f"{n_fixtures} fixtures (every rule fires and stays quiet)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run every rule against embedded good/bad "
                             "fixtures and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        print("memory-model-stale")
        print("hot-path-roots")
        return 0
    if args.self_test:
        return self_test()

    if not (args.root / "src").is_dir():
        print(f"tca-lint: no src/ under {args.root}", file=sys.stderr)
        return 2
    findings = lint_tree(args.root)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"tca-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tca-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
