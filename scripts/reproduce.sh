#!/usr/bin/env bash
# Full reproduction: configure, build, run the test suite, regenerate every
# experiment and benchmark. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
#
# Robustness (docs/robustness.md): every bench binary runs under its own
# wall-clock timeout, a crashing or hanging binary is recorded as CRASH
# instead of taking the whole script down, and the script exits nonzero if
# ANY stage failed — so CI and humans can trust a 0 exit.
set -uo pipefail
cd "$(dirname "$0")/.."

# Per-binary wall-clock limit (seconds); override: BENCH_TIMEOUT=60 ...
BENCH_TIMEOUT="${BENCH_TIMEOUT:-300}"

failures=0

cmake -B build -G Ninja || exit 1
cmake --build build -j || exit 1

ctest --test-dir build --timeout 240 2>&1 | tee test_output.txt
ctest_status=${PIPESTATUS[0]}
if [ "$ctest_status" -ne 0 ]; then
  echo "ctest exited with status $ctest_status" >&2
  failures=$((failures + 1))
fi

# Every bench binary is standalone; experiment binaries end with
# "<ID>: PASS|FAIL", google-benchmark binaries print their tables. Each one
# gets its own timeout and its exit status is tallied: nonzero -> FAIL,
# killed/crashed (signal or timeout) -> CRASH.
: > bench_output.txt
declare -a summary=()
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name ==" | tee -a bench_output.txt
  timeout --signal=TERM --kill-after=10 "$BENCH_TIMEOUT" "$b" \
    >> bench_output.txt 2>&1
  status=$?
  if [ "$status" -eq 0 ]; then
    summary+=("PASS  $name")
  elif [ "$status" -ge 124 ]; then
    # 124 = timeout, 137 = SIGKILL, 128+N = died on signal N.
    summary+=("CRASH $name (exit $status)")
    failures=$((failures + 1))
  else
    summary+=("FAIL  $name (exit $status)")
    failures=$((failures + 1))
  fi
done
tail -n 40 bench_output.txt

echo
echo "== experiment verdicts =="
grep -E "^[A-Z0-9-]+: (PASS|FAIL)$" bench_output.txt || true

echo
echo "== binary summary =="
printf '%s\n' "${summary[@]}"

if [ "$failures" -ne 0 ]; then
  echo
  echo "reproduce.sh: $failures stage(s) failed" >&2
  exit 1
fi
echo
echo "reproduce.sh: all stages passed"
