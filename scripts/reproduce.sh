#!/usr/bin/env bash
# Full reproduction: configure, build, run the test suite, regenerate every
# experiment and benchmark. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
#
# Robustness (docs/robustness.md): every bench binary runs under its own
# wall-clock timeout, a crashing or hanging binary is recorded as CRASH
# instead of taking the whole script down, and the script exits nonzero if
# ANY stage failed — so CI and humans can trust a 0 exit.
set -uo pipefail
cd "$(dirname "$0")/.."

# --lint: run only the static-analysis stage (docs/static-analysis.md)
# and exit. tca-lint needs no build; clang-tidy skips gracefully when it
# is not installed (CI passes --require instead, so a missing tool can
# never silently pass there).
if [ "${1:-}" = "--lint" ]; then
  python3 scripts/tca_lint.py --self-test || exit 1
  python3 scripts/tca_lint.py || exit 1
  python3 scripts/run_clang_tidy.py --self-test || exit 1
  python3 scripts/run_clang_tidy.py --diff-baseline || exit 1
  # Concurrency analyzer: fixture/mutation self-test, then audit the
  # tree against docs/memory_model.md and the committed zero baseline.
  # The builtin frontend needs only python3; the libclang refinement is
  # picked up automatically when the bindings are importable.
  python3 scripts/tca_analyze.py --self-test || exit 1
  python3 scripts/tca_analyze.py || exit 1
  echo "reproduce.sh --lint: all static-analysis stages passed"
  exit 0
fi

# --chaos: build the chaos-sweep harness and run the full seeded
# multi-fault sweep (docs/robustness.md); exits nonzero on any invariant
# violation. CHAOS_SEEDS overrides the scenario count.
if [ "${1:-}" = "--chaos" ]; then
  export TCA_RESULTS_DIR="${TCA_RESULTS_DIR:-$PWD/results}"
  mkdir -p "$TCA_RESULTS_DIR"
  cmake -B build -G Ninja || exit 1
  cmake --build build -j --target chaos_sweep || exit 1
  python3 scripts/chaos.py --seeds "${CHAOS_SEEDS:-200}" || exit 1
  echo "reproduce.sh --chaos: zero invariant violations"
  exit 0
fi

# --serve: build the tcad daemon and its saturation bench, let the bench
# spawn/drive/SIGTERM the daemon (docs/service.md), and diff the bench's
# deterministic counters against the committed baseline. Timings are
# published in the manifest but not gated (the huge --threshold disables
# the timing comparison on purpose; counters are exact-match).
if [ "${1:-}" = "--serve" ]; then
  export TCA_RESULTS_DIR="${TCA_RESULTS_DIR:-$PWD/results}"
  mkdir -p "$TCA_RESULTS_DIR"
  cmake -B build -G Ninja || exit 1
  cmake --build build -j --target tcad loadgen_tcad || exit 1
  ./build/bench/loadgen_tcad --tcad ./build/src/service/tcad || exit 1
  python3 scripts/check_bench.py \
    bench/baselines/loadgen_tcad.manifest.json \
    "$TCA_RESULTS_DIR/loadgen_tcad.manifest.json" \
    --threshold 100000 \
    --metric counters.loadgen.requests \
    --metric counters.loadgen.ok \
    --metric counters.loadgen.errors \
    --metric counters.loadgen.mismatch \
    --metric counters.loadgen.coalesce_ok \
    --metric counters.loadgen.server_counters_ok \
    --metric counters.loadgen.server_clean_shutdown || exit 1
  echo "reproduce.sh --serve: service smoke passed"
  exit 0
fi

# Per-binary wall-clock limit (seconds); override: BENCH_TIMEOUT=60 ...
BENCH_TIMEOUT="${BENCH_TIMEOUT:-300}"

# Every binary writes its RunManifest here (docs/observability.md), and
# this script writes its own stage summary as results/reproduce.manifest.json.
export TCA_RESULTS_DIR="${TCA_RESULTS_DIR:-$PWD/results}"
mkdir -p "$TCA_RESULTS_DIR"

failures=0

cmake -B build -G Ninja || exit 1
cmake --build build -j || exit 1

ctest --test-dir build --timeout 240 2>&1 | tee test_output.txt
ctest_status=${PIPESTATUS[0]}
if [ "$ctest_status" -ne 0 ]; then
  echo "ctest exited with status $ctest_status" >&2
  failures=$((failures + 1))
fi

# Every bench binary is standalone; experiment binaries end with
# "<ID>: PASS|FAIL", google-benchmark binaries print their tables. Each one
# gets its own timeout and its exit status is tallied: nonzero -> FAIL,
# killed/crashed (signal or timeout) -> CRASH.
: > bench_output.txt
declare -a summary=()
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name ==" | tee -a bench_output.txt
  timeout --signal=TERM --kill-after=10 "$BENCH_TIMEOUT" "$b" \
    >> bench_output.txt 2>&1
  status=$?
  if [ "$status" -eq 0 ]; then
    summary+=("PASS  $name")
  elif [ "$status" -ge 124 ]; then
    # 124 = timeout, 137 = SIGKILL, 128+N = died on signal N.
    summary+=("CRASH $name (exit $status)")
    failures=$((failures + 1))
  else
    summary+=("FAIL  $name (exit $status)")
    failures=$((failures + 1))
  fi
done
tail -n 40 bench_output.txt

echo
echo "== experiment verdicts =="
grep -E "^[A-Z0-9-]+: (PASS|FAIL)$" bench_output.txt || true

echo
echo "== binary summary =="
printf '%s\n' "${summary[@]}"

# Machine-readable stage summary, same RunManifest schema the binaries
# write (scripts/check_bench.py reads it; see docs/observability.md).
CTEST_STATUS="$ctest_status" FAILURES="$failures" \
  MANIFEST="$TCA_RESULTS_DIR/reproduce.manifest.json" \
  python3 - "${summary[@]}" <<'PYEOF'
import json, os, subprocess, sys, time

def git(*args):
    try:
        return subprocess.run(("git",) + args, capture_output=True,
                              text=True, check=True).stdout.strip()
    except Exception:
        return "unknown"

checks = [{"id": "ctest",
           "status": "PASS" if os.environ["CTEST_STATUS"] == "0" else "FAIL",
           "detail": "exit " + os.environ["CTEST_STATUS"]}]
for line in sys.argv[1:]:
    status, _, rest = line.partition(" ")
    name, _, detail = rest.strip().partition(" ")
    checks.append({"id": name, "status": status, "detail": detail.strip("()")})

manifest = {
    "schema_version": 1,
    "tool": "reproduce",
    "status": "PASS" if os.environ["FAILURES"] == "0" else "FAIL",
    "created_unix_ms": int(time.time() * 1000),
    "build": {"git_sha": git("rev-parse", "HEAD"),
              "git_dirty": bool(git("status", "--porcelain"))},
    "checks": checks,
}
path = os.environ["MANIFEST"]
with open(path + ".tmp", "w", encoding="utf-8") as f:
    json.dump(manifest, f)
    f.write("\n")
os.replace(path + ".tmp", path)
print(f"manifest: {path}")
PYEOF

if [ "$failures" -ne 0 ]; then
  echo
  echo "reproduce.sh: $failures stage(s) failed" >&2
  exit 1
fi
echo
echo "reproduce.sh: all stages passed"
