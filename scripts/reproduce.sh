#!/usr/bin/env bash
# Full reproduction: configure, build, run the test suite, regenerate every
# experiment and benchmark. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Every bench binary is standalone; experiment binaries end with
# "<ID>: PASS|FAIL", google-benchmark binaries print their tables.
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  "$b"
done 2>&1 | tee bench_output.txt

echo
echo "== experiment verdicts =="
grep -E "^[A-Z0-9-]+: (PASS|FAIL)$" bench_output.txt
