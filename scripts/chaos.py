#!/usr/bin/env python3
"""Chaos-sweep driver (docs/robustness.md).

Runs bench/chaos_sweep over N seeded multi-fault scenarios, parses its
RunManifest, and fails loudly on any invariant violation:

  * exit 0  — every scenario ended bit-identical to the fault-free
              baseline, as a well-formed truncated partial, or
              resumed-from-last-good;
  * exit 1  — at least one violation. The failing seeds are re-run
              verbosely, and the first seed is written to
              <results>/chaos_failing_seed.txt so CI can upload it as an
              artifact (one-line local repro: chaos_sweep --seed <s>).

Usage: scripts/chaos.py [--binary PATH] [--seeds N] [--base-seed S]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import subprocess
import sys

REPRO_RE = re.compile(r"^CHAOS-REPRO: \S+ --seed (\d+)", re.MULTILINE)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="build/bench/chaos_sweep",
                        help="chaos_sweep binary (default: %(default)s)")
    parser.add_argument("--seeds", type=int, default=200,
                        help="number of seeded scenarios (default: 200)")
    parser.add_argument("--base-seed", type=int, default=None,
                        help="override the scenario seed stream")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary)
    if not binary.exists():
        print(f"chaos.py: binary not found: {binary}", file=sys.stderr)
        return 2

    results_dir = pathlib.Path(os.environ.get("TCA_RESULTS_DIR", "results"))
    results_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ, TCA_RESULTS_DIR=str(results_dir))

    cmd = [str(binary), "--seeds", str(args.seeds)]
    if args.base_seed is not None:
        cmd += ["--base-seed", str(args.base_seed)]
    print(f"chaos.py: {' '.join(cmd)}")
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    sys.stdout.write(proc.stdout)

    failing = [int(s) for s in REPRO_RE.findall(proc.stdout)]

    manifest_path = results_dir / "CHAOS.manifest.json"
    counters = {}
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        counters = manifest.get("metrics", {}).get("counters", {})
        print("chaos.py: leg distribution:",
              {k: v for k, v in sorted(counters.items())
               if k.startswith("chaos.")})
        if manifest.get("status") != "PASS" and not failing:
            print("chaos.py: manifest status is "
                  f"{manifest.get('status')} with no repro line; "
                  "treating as a violation", file=sys.stderr)
            failing = [-1]
    elif proc.returncode != 0:
        print("chaos.py: sweep crashed before writing a manifest "
              f"(exit {proc.returncode})", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        return 1

    scenarios = int(counters.get("chaos.scenarios", 0))
    if not failing and scenarios < args.seeds:
        print(f"chaos.py: only {scenarios}/{args.seeds} scenarios ran",
              file=sys.stderr)
        return 1

    if failing:
        seed_file = results_dir / "chaos_failing_seed.txt"
        seed_file.write_text("\n".join(str(s) for s in failing) + "\n")
        print(f"chaos.py: {len(failing)} violating seed(s) -> {seed_file}",
              file=sys.stderr)
        for seed in failing[:3]:
            if seed < 0:
                continue
            print(f"chaos.py: verbose repro of seed {seed}:", file=sys.stderr)
            repro = subprocess.run([str(binary), "--seed", str(seed)],
                                   capture_output=True, text=True, env=env)
            sys.stderr.write(repro.stdout)
        return 1

    print(f"chaos.py: {scenarios} scenarios, zero invariant violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
