#!/usr/bin/env python3
"""Baseline-diffing clang-tidy driver (docs/static-analysis.md).

Runs the curated `.clang-tidy` profile over every src/ translation unit in
compile_commands.json and compares the findings against the committed
baseline (bench/baselines/clang_tidy_baseline.json):

  * a NEW finding key — a (file, check) pair absent from the baseline, or
    one whose count grew — fails the run (exit 1): new code must not add
    findings even while old ones are being burned down;
  * findings that disappeared are reported as burn-down progress with a
    reminder to shrink the baseline via --update-baseline (still exit 0:
    shrinking is a deliberate commit, not a side effect of CI).

Counts are keyed by (repo-relative file, check) and deliberately NOT by
line number, so unrelated edits that shift lines do not churn the
baseline.

Tool discovery: $CLANG_TIDY, then `clang-tidy`, then versioned names
(clang-tidy-21 .. clang-tidy-14). Without the tool the run SKIPs with
exit 0 (so `reproduce.sh --lint` works on gcc-only boxes) unless
--require is given (the CI static-analysis job passes --require so a
missing tool can never silently pass).

`--self-test` exercises the parse + diff logic on canned output without
needing clang-tidy installed; tests/CMakeLists.txt registers it.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

BASELINE_DEFAULT = "bench/baselines/clang_tidy_baseline.json"
BASELINE_SCHEMA = 1

# clang-tidy diagnostic line: /abs/path/file.cpp:12:3: warning: msg [check]
DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<sev>warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$"
)


def find_clang_tidy() -> str | None:
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    candidates = ["clang-tidy"] + [
        f"clang-tidy-{v}" for v in range(21, 13, -1)
    ]
    for name in candidates:
        if shutil.which(name):
            return name
    return None


def parse_diagnostics(output: str, repo_root: pathlib.Path) -> dict[str, int]:
    """Aggregates diagnostics to {"relfile\t check": count}. Diagnostics in
    files outside the repo (system/gtest headers) are dropped — the
    HeaderFilterRegex should already exclude them, this is belt and
    braces."""
    counts: dict[str, int] = {}
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        path = pathlib.Path(m.group("file"))
        try:
            rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
        except ValueError:
            continue  # outside the repo
        for check in m.group("check").split(","):
            key = f"{rel}\t{check.strip()}"
            counts[key] = counts.get(key, 0) + 1
    return counts


def diff_counts(
    baseline: dict[str, int], current: dict[str, int]
) -> tuple[list[str], list[str]]:
    """Returns (regressions, burned_down) as printable lines."""
    regressions = []
    for key, count in sorted(current.items()):
        base = baseline.get(key, 0)
        if count > base:
            file, check = key.split("\t")
            regressions.append(
                f"NEW  {file} [{check}]: {count} finding(s), baseline {base}"
            )
    burned = []
    for key, base in sorted(baseline.items()):
        cur = current.get(key, 0)
        if cur < base:
            file, check = key.split("\t")
            burned.append(
                f"GONE {file} [{check}]: {base} -> {cur} (shrink the "
                f"baseline with --update-baseline)"
            )
    return regressions, burned


def load_baseline(path: pathlib.Path) -> dict[str, int]:
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(
            f"{path}: baseline schema {doc.get('schema')!r} != "
            f"{BASELINE_SCHEMA}")
    return {
        f"{f['file']}\t{f['check']}": int(f["count"])
        for f in doc.get("findings", [])
    }


def write_baseline(path: pathlib.Path, counts: dict[str, int]) -> None:
    findings = [
        {"file": key.split("\t")[0], "check": key.split("\t")[1],
         "count": count}
        for key, count in sorted(counts.items())
    ]
    doc = {
        "schema": BASELINE_SCHEMA,
        "profile": ".clang-tidy",
        "note": ("Committed clang-tidy burn-down baseline: CI fails on any "
                 "finding not recorded here. Shrink via "
                 "scripts/run_clang_tidy.py --update-baseline after fixing; "
                 "never grow it without a review discussion."),
        "findings": findings,
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def src_translation_units(build_dir: pathlib.Path,
                          repo_root: pathlib.Path) -> list[str]:
    ccj = build_dir / "compile_commands.json"
    if not ccj.is_file():
        raise SystemExit(
            f"{ccj} not found — configure with "
            f"cmake -B {build_dir} (CMAKE_EXPORT_COMPILE_COMMANDS is ON "
            f"in CMakeLists.txt)")
    src_prefix = (repo_root / "src").resolve().as_posix() + "/"
    files = []
    for entry in json.loads(ccj.read_text(encoding="utf-8")):
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry["directory"]) / f
        if f.resolve().as_posix().startswith(src_prefix):
            files.append(str(f))
    return sorted(set(files))


def run_tool(tool: str, files: list[str], build_dir: pathlib.Path,
             jobs: int) -> str:
    def one(path: str) -> str:
        proc = subprocess.run(
            [tool, "-p", str(build_dir), "--quiet", path],
            capture_output=True, text=True)
        return proc.stdout
    chunks = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for out in pool.map(one, files):
            chunks.append(out)
    return "\n".join(chunks)


# --- self-test ----------------------------------------------------------

_CANNED_OUTPUT = """\
{root}/src/core/thread_pool.cpp:42:3: warning: use of a blocking call [concurrency-mt-unsafe]
{root}/src/core/thread_pool.cpp:77:5: warning: use of a blocking call [concurrency-mt-unsafe]
{root}/src/obs/metrics.cpp:10:1: warning: something bugprone [bugprone-branch-clone]
/usr/include/gtest/gtest.h:999:1: warning: outside the repo [bugprone-macro-parentheses]
garbage line that is not a diagnostic
"""


def self_test() -> int:
    root = pathlib.Path("/repo")
    counts = parse_diagnostics(_CANNED_OUTPUT.format(root=root), root)
    expect = {
        "src/core/thread_pool.cpp\tconcurrency-mt-unsafe": 2,
        "src/obs/metrics.cpp\tbugprone-branch-clone": 1,
    }
    failures = []
    if counts != expect:
        failures.append(f"parse: got {counts!r}, want {expect!r}")

    # Same findings -> no regressions, no burn-down.
    reg, burn = diff_counts(expect, dict(expect))
    if reg or burn:
        failures.append(f"identity diff not empty: {reg} {burn}")
    # A brand-new (file, check) and a grown count both regress.
    grown = dict(expect)
    grown["src/core/thread_pool.cpp\tconcurrency-mt-unsafe"] = 3
    grown["src/aca/aca.cpp\tbugprone-use-after-move"] = 1
    reg, _ = diff_counts(expect, grown)
    if len(reg) != 2:
        failures.append(f"regression diff: want 2 NEW lines, got {reg}")
    # A burned-down finding is progress, not failure.
    shrunk = {"src/core/thread_pool.cpp\tconcurrency-mt-unsafe": 1}
    reg, burn = diff_counts(expect, shrunk)
    if reg or len(burn) != 2:
        failures.append(f"burn-down diff: want 0 NEW / 2 GONE, got "
                        f"{reg} / {burn}")
    # Baseline round-trip through JSON.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "baseline.json"
        write_baseline(path, expect)
        if load_baseline(path) != expect:
            failures.append("baseline round-trip mismatch")

    if failures:
        print("run_clang_tidy self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 2
    print("run_clang_tidy self-test OK: parse, diff, and baseline "
          "round-trip verified")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=pathlib.Path,
                        default=pathlib.Path("build"))
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path(BASELINE_DEFAULT))
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("--diff-baseline", action="store_true",
                        help="diff findings against the baseline (default "
                             "behavior; flag kept for explicit CI wiring)")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) if clang-tidy is not installed "
                             "instead of skipping")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    tool = find_clang_tidy()
    if tool is None:
        msg = ("clang-tidy not found (tried $CLANG_TIDY, clang-tidy, "
               "clang-tidy-21..14)")
        if args.require:
            print(f"run_clang_tidy: {msg}", file=sys.stderr)
            return 2
        print(f"run_clang_tidy: SKIP — {msg}")
        return 0

    files = src_translation_units(args.build_dir, repo_root)
    if not files:
        print("run_clang_tidy: no src/ translation units in "
              "compile_commands.json", file=sys.stderr)
        return 2
    print(f"run_clang_tidy: {tool} over {len(files)} TU(s), "
          f"profile .clang-tidy")
    output = run_tool(tool, files, args.build_dir, args.jobs)
    counts = parse_diagnostics(output, repo_root)
    total = sum(counts.values())

    if args.update_baseline:
        write_baseline(args.baseline, counts)
        print(f"run_clang_tidy: baseline rewritten with {total} finding(s) "
              f"across {len(counts)} key(s) -> {args.baseline}")
        return 0

    baseline = (load_baseline(args.baseline) if args.baseline.is_file()
                else {})
    regressions, burned = diff_counts(baseline, counts)
    for line in burned:
        print(line)
    for line in regressions:
        print(line)
    if regressions:
        print(f"run_clang_tidy: {len(regressions)} NEW finding key(s) vs "
              f"baseline {args.baseline}", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: no new findings ({total} total, "
          f"{len(baseline)} baseline key(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
