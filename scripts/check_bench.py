#!/usr/bin/env python3
"""Compare two RunManifest JSON files for performance/metric regressions.

Reads the schema described in docs/observability.md (written by every
perf_* / ablation_* binary via bench/perf_main.cpp, and by the experiment
harnesses via bench/experiment_util.hpp) and diffs:

  * benchmarks — matched by name; `real_time` is lower-is-better,
    `items_per_second` is higher-is-better. A change worse than
    --threshold percent is a regression.
  * selected metrics (--metric counters.NAME) — deterministic counters
    (states visited, steps executed) must not drift in EITHER direction
    beyond --metric-threshold percent (default 0: exact match), which
    catches silent algorithmic changes that timing noise would hide.

Exit codes: 0 = no regression, 1 = regression(s) found, 2 = bad
invocation or unreadable/invalid input. Unknown JSON fields are ignored
(the manifest versioning policy); a schema_version ahead of this script
is an error.

Self-test (runs without any files, used by CI):
    check_bench.py --self-test
injects a 50% slowdown into a synthetic manifest pair and asserts it is
detected, and asserts a clean pair passes.
"""

import argparse
import json
import sys

SUPPORTED_SCHEMA = 1


def fail_usage(msg):
    print(f"check_bench: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_manifest(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"cannot read manifest '{path}': {e}")
    version = doc.get("schema_version")
    if not isinstance(version, int) or version > SUPPORTED_SCHEMA:
        fail_usage(
            f"'{path}' has schema_version {version!r}; this script "
            f"understands <= {SUPPORTED_SCHEMA}")
    return doc


def pct_change(baseline, current):
    """Signed percent change from baseline; None when undefined."""
    if baseline == 0:
        return None if current == 0 else float("inf")
    return (current - baseline) / baseline * 100.0


def lookup_metric(doc, dotted):
    """Resolve 'counters.NAME' / 'gauges.NAME' inside manifest['metrics']."""
    kind, _, name = dotted.partition(".")
    if kind not in ("counters", "gauges") or not name:
        fail_usage(f"--metric must look like counters.NAME, got '{dotted}'")
    return doc.get("metrics", {}).get(kind, {}).get(name)


def compare_benchmarks(baseline, current, threshold, report):
    base_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    cur_by_name = {b["name"]: b for b in current.get("benchmarks", [])}
    regressions = 0
    for name, base in sorted(base_by_name.items()):
        cur = cur_by_name.get(name)
        if cur is None:
            report(f"MISSING  {name}: present in baseline, absent in current")
            regressions += 1
            continue
        # real_time: lower is better → positive change is a slowdown.
        change = pct_change(base.get("real_time", 0), cur.get("real_time", 0))
        if change is not None and change > threshold:
            report(f"REGRESS  {name}: real_time {base['real_time']:.6g} -> "
                   f"{cur['real_time']:.6g} {cur.get('time_unit', '')} "
                   f"(+{change:.1f}% > {threshold:.1f}%)")
            regressions += 1
        else:
            detail = "n/a" if change is None else f"{change:+.1f}%"
            report(f"ok       {name}: real_time {detail}")
        # items_per_second: higher is better → negative change beyond the
        # threshold is a regression. Only compared when both sides report it.
        base_ips = base.get("items_per_second", 0)
        cur_ips = cur.get("items_per_second", 0)
        if base_ips > 0 and cur_ips > 0:
            change = pct_change(base_ips, cur_ips)
            if change is not None and change < -threshold:
                report(f"REGRESS  {name}: items_per_second {base_ips:.4g} -> "
                       f"{cur_ips:.4g} ({change:.1f}% < -{threshold:.1f}%)")
                regressions += 1
    return regressions


def compare_metrics(baseline, current, metric_names, threshold, report):
    regressions = 0
    for dotted in metric_names:
        base_v = lookup_metric(baseline, dotted)
        cur_v = lookup_metric(current, dotted)
        if base_v is None or cur_v is None:
            side = "baseline" if base_v is None else "current"
            report(f"MISSING  metric {dotted}: absent in {side} manifest")
            regressions += 1
            continue
        change = pct_change(base_v, cur_v)
        drift = abs(change) if change is not None else 0.0
        if drift > threshold:
            report(f"DRIFT    metric {dotted}: {base_v} -> {cur_v} "
                   f"({change:+.2f}%, allowed ±{threshold:.2f}%)")
            regressions += 1
        else:
            report(f"ok       metric {dotted}: {base_v} -> {cur_v}")
    return regressions


def run_compare(baseline_doc, current_doc, args, report=print):
    regressions = compare_benchmarks(
        baseline_doc, current_doc, args.threshold, report)
    if args.metric:
        regressions += compare_metrics(
            baseline_doc, current_doc, args.metric, args.metric_threshold,
            report)
    return regressions


def synthetic_manifest(scale=1.0, counter_value=645120):
    return {
        "schema_version": 1,
        "tool": "selftest",
        "status": "PASS",
        "benchmarks": [
            {"name": "BM_Fast/1024", "real_time": 100.0 * scale,
             "time_unit": "ns", "items_per_second": 1.0e7 / scale,
             "iterations": 1000},
            {"name": "BM_Slow/4096", "real_time": 900.0 * scale,
             "time_unit": "ns", "items_per_second": 4.5e6 / scale,
             "iterations": 200},
        ],
        "metrics": {"counters": {"phasespace.build.states": counter_value},
                    "gauges": {}, "histograms": {}},
    }


def self_test():
    class Args:
        threshold = 10.0
        metric = ["counters.phasespace.build.states"]
        metric_threshold = 0.0

    quiet = lambda *_: None  # noqa: E731

    clean = run_compare(synthetic_manifest(), synthetic_manifest(),
                        Args(), quiet)
    assert clean == 0, f"clean pair flagged {clean} regressions"

    # Injected 50% slowdown: both timing directions must fire on both
    # benchmarks (real_time up 50%, items_per_second down 33%).
    slow = run_compare(synthetic_manifest(), synthetic_manifest(scale=1.5),
                       Args(), quiet)
    assert slow == 4, f"50% slowdown produced {slow} findings, expected 4"

    drift = run_compare(synthetic_manifest(),
                        synthetic_manifest(counter_value=645121),
                        Args(), quiet)
    assert drift == 1, f"counter drift produced {drift} findings, expected 1"

    fast = run_compare(synthetic_manifest(), synthetic_manifest(scale=0.5),
                       Args(), quiet)
    assert fast == 0, f"speedup flagged {fast} regressions"

    print("check_bench self-test: PASS")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two RunManifest files for regressions.")
    parser.add_argument("baseline", nargs="?", help="baseline manifest JSON")
    parser.add_argument("current", nargs="?", help="current manifest JSON")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="allowed benchmark slowdown in percent "
                             "(default: 10)")
    parser.add_argument("--metric", action="append", default=[],
                        metavar="counters.NAME",
                        help="deterministic metric to compare exactly "
                             "(repeatable)")
    parser.add_argument("--metric-threshold", type=float, default=0.0,
                        help="allowed metric drift in percent (default: 0)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify this script detects an injected "
                             "50%% regression, then exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        fail_usage("need BASELINE and CURRENT manifest paths "
                   "(or --self-test)")

    baseline_doc = load_manifest(args.baseline)
    current_doc = load_manifest(args.current)
    print(f"baseline: {args.baseline} ({baseline_doc.get('tool', '?')}, "
          f"git {baseline_doc.get('build', {}).get('git_sha', '?')[:12]})")
    print(f"current:  {args.current} ({current_doc.get('tool', '?')}, "
          f"git {current_doc.get('build', {}).get('git_sha', '?')[:12]})")
    regressions = run_compare(baseline_doc, current_doc, args)
    if regressions:
        print(f"check_bench: {regressions} regression(s) found")
        sys.exit(1)
    print("check_bench: no regressions")
    sys.exit(0)


if __name__ == "__main__":
    main()
