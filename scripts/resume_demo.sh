#!/usr/bin/env bash
# Kill-and-resume demo for the fault-tolerant experiment runtime
# (docs/robustness.md): run the robustness sweep to completion, then run it
# again, SIGKILL it mid-sweep, resume from its checkpoint, and assert the
# resumed run's final summary is bit-identical to the uninterrupted one.
#
# Usage: resume_demo.sh <path-to-robustness_sweep-binary>
set -u

BIN="${1:?usage: resume_demo.sh <robustness_sweep binary>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

summary() {  # extract the machine-diffable summary section
  sed -n '/^== summary ==$/,$p' "$1"
}

echo "== reference run (uninterrupted) =="
"$BIN" --checkpoint "$WORK/ref.ckpt" >"$WORK/ref.out" 2>&1
REF_STATUS=$?
summary "$WORK/ref.out"

echo
echo "== interrupted run (SIGKILL mid-sweep) =="
"$BIN" --checkpoint "$WORK/demo.ckpt" >"$WORK/killed.out" 2>&1 &
PID=$!
# Wait until at least one experiment has been checkpointed (or the run
# finishes first — then the kill below is a no-op and resume is trivial).
for _ in $(seq 1 200); do
  [ -f "$WORK/demo.ckpt" ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "$PID" 2>/dev/null; then
  echo "killed pid $PID mid-sweep"
else
  echo "run finished before the kill landed (still a valid resume test)"
fi
wait "$PID" 2>/dev/null

if [ ! -f "$WORK/demo.ckpt" ]; then
  echo "FAIL: no checkpoint was written before the kill" >&2
  exit 1
fi

echo
echo "== resumed run =="
"$BIN" --checkpoint "$WORK/demo.ckpt" --resume >"$WORK/resumed.out" 2>&1
RESUMED_STATUS=$?
summary "$WORK/resumed.out"

echo
summary "$WORK/ref.out" >"$WORK/ref.summary"
summary "$WORK/resumed.out" >"$WORK/resumed.summary"
if ! diff -u "$WORK/ref.summary" "$WORK/resumed.summary"; then
  echo "FAIL: resumed summary differs from the uninterrupted run" >&2
  exit 1
fi
if [ "$REF_STATUS" -ne "$RESUMED_STATUS" ]; then
  echo "FAIL: exit codes differ (ref=$REF_STATUS resumed=$RESUMED_STATUS)" >&2
  exit 1
fi
if [ "$REF_STATUS" -ne 0 ]; then
  echo "FAIL: sweep itself failed (exit $REF_STATUS)" >&2
  exit 1
fi
echo "PASS: resumed summary is bit-identical to the uninterrupted run"
