#!/usr/bin/env bash
# Kill-and-resume demo for the fault-tolerant experiment runtime
# (docs/robustness.md): run the robustness sweep to completion, then run it
# again, SIGKILL it mid-sweep, resume from its checkpoint, and assert the
# resumed run's final summary is bit-identical to the uninterrupted one.
# A final stage truncates a checkpoint and asserts resume rejects it
# (ErrorCode kCheckpointTruncated -> start from scratch) and still
# converges to the same summary.
#
# Usage: resume_demo.sh <path-to-robustness_sweep-binary>
set -u

BIN="${1:?usage: resume_demo.sh <robustness_sweep binary>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
# Keep the sweep's RunManifests inside the scratch dir, not the test cwd.
export TCA_RESULTS_DIR="$WORK/results"

summary() {  # extract the machine-diffable summary section
  sed -n '/^== summary ==$/,$p' "$1"
}

echo "== reference run (uninterrupted) =="
"$BIN" --checkpoint "$WORK/ref.ckpt" >"$WORK/ref.out" 2>&1
REF_STATUS=$?
summary "$WORK/ref.out"

echo
echo "== interrupted run (SIGKILL mid-sweep) =="
"$BIN" --checkpoint "$WORK/demo.ckpt" >"$WORK/killed.out" 2>&1 &
PID=$!
# Wait until at least one experiment has been checkpointed (or the run
# finishes first — then the kill below is a no-op and resume is trivial).
for _ in $(seq 1 200); do
  [ -f "$WORK/demo.ckpt" ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "$PID" 2>/dev/null; then
  echo "killed pid $PID mid-sweep"
else
  echo "run finished before the kill landed (still a valid resume test)"
fi
wait "$PID" 2>/dev/null

if [ ! -f "$WORK/demo.ckpt" ]; then
  echo "FAIL: no checkpoint was written before the kill" >&2
  exit 1
fi

echo
echo "== resumed run =="
"$BIN" --checkpoint "$WORK/demo.ckpt" --resume >"$WORK/resumed.out" 2>&1
RESUMED_STATUS=$?
summary "$WORK/resumed.out"

echo
summary "$WORK/ref.out" >"$WORK/ref.summary"
summary "$WORK/resumed.out" >"$WORK/resumed.summary"
if ! diff -u "$WORK/ref.summary" "$WORK/resumed.summary"; then
  echo "FAIL: resumed summary differs from the uninterrupted run" >&2
  exit 1
fi
if [ "$REF_STATUS" -ne "$RESUMED_STATUS" ]; then
  echo "FAIL: exit codes differ (ref=$REF_STATUS resumed=$RESUMED_STATUS)" >&2
  exit 1
fi
if [ "$REF_STATUS" -ne 0 ]; then
  echo "FAIL: sweep itself failed (exit $REF_STATUS)" >&2
  exit 1
fi
echo "PASS: resumed summary is bit-identical to the uninterrupted run"

echo
echo "== resume from a truncated checkpoint =="
# Chop the tail off a complete checkpoint: the loader must reject it
# (payload shorter than the framed byte count -> kCheckpointTruncated),
# fall back to a from-scratch run, and still produce the reference summary.
SIZE=$(wc -c <"$WORK/ref.ckpt")
head -c "$((SIZE - 7))" "$WORK/ref.ckpt" >"$WORK/trunc.ckpt"
"$BIN" --checkpoint "$WORK/trunc.ckpt" --resume >"$WORK/trunc.out" 2>&1
TRUNC_STATUS=$?
if grep -q "resuming from" "$WORK/trunc.out"; then
  echo "FAIL: truncated checkpoint was accepted for resume" >&2
  exit 1
fi
summary "$WORK/trunc.out" >"$WORK/trunc.summary"
if ! diff -u "$WORK/ref.summary" "$WORK/trunc.summary"; then
  echo "FAIL: from-scratch run after truncation differs from reference" >&2
  exit 1
fi
if [ "$TRUNC_STATUS" -ne "$REF_STATUS" ]; then
  echo "FAIL: exit codes differ (ref=$REF_STATUS trunc=$TRUNC_STATUS)" >&2
  exit 1
fi
echo "PASS: truncated checkpoint rejected; from-scratch run matches reference"
