# Clang thread-safety analysis wiring (docs/static-analysis.md).
#
# On Clang this adds -Wthread-safety -Wthread-safety-beta to the shared
# tca_warnings interface (escalated to errors by TCA_WERROR like every
# other warning), then PROVES at configure time that the analysis is
# really firing: a deliberately ill-locked translation unit that includes
# the project's own src/core/annotations.hpp must FAIL to compile under
# -Werror=thread-safety-analysis, and a correctly-locked one must
# succeed. Without that probe, a macro-gating bug (annotations silently
# expanding to nothing under Clang) would turn the whole CI
# static-analysis job into a green no-op.
#
# On other compilers the annotations expand to no-ops by design
# (src/core/annotations.hpp gates on __clang__ + __has_attribute) and
# this module just reports that the analysis is unavailable.

include_guard(GLOBAL)

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS
    "Thread-safety analysis: unavailable (compiler is "
    "${CMAKE_CXX_COMPILER_ID}); TCA_* annotations compile to no-ops")
  return()
endif()

include(CheckCXXCompilerFlag)
check_cxx_compiler_flag("-Wthread-safety" TCA_HAS_WTHREAD_SAFETY)
if(NOT TCA_HAS_WTHREAD_SAFETY)
  message(FATAL_ERROR
    "Compiler identifies as Clang but rejects -Wthread-safety; the "
    "static-analysis contract cannot be met. Use a mainline clang >= 10.")
endif()

target_compile_options(tca_warnings INTERFACE
  -Wthread-safety -Wthread-safety-beta)

set(_tca_tsa_dir "${CMAKE_BINARY_DIR}/tsa_probe")
file(MAKE_DIRECTORY "${_tca_tsa_dir}")

# Probe 1: an ill-locked read of a TCA_GUARDED_BY variable MUST fail.
file(WRITE "${_tca_tsa_dir}/bad.cpp" [=[
#include "core/annotations.hpp"
namespace {
tca::Mutex mu;
int guarded TCA_GUARDED_BY(mu) = 0;
int read_without_lock() { return guarded; }  // must be diagnosed
}  // namespace
int main() { return read_without_lock(); }
]=])

try_compile(_tca_tsa_bad_compiled
  "${_tca_tsa_dir}/bad"
  "${_tca_tsa_dir}/bad.cpp"
  COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety-analysis"
  CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
  CXX_STANDARD 20 CXX_STANDARD_REQUIRED ON)
if(_tca_tsa_bad_compiled)
  message(FATAL_ERROR
    "Thread-safety probe failure: a deliberately ill-locked TU compiled "
    "cleanly under -Werror=thread-safety-analysis. Either the analysis "
    "is inactive or src/core/annotations.hpp is expanding to no-ops on "
    "this Clang — the static-analysis guarantees would be silently void.")
endif()

# Probe 2: a correctly-locked TU MUST compile (annotations don't reject
# valid code).
file(WRITE "${_tca_tsa_dir}/good.cpp" [=[
#include "core/annotations.hpp"
namespace {
tca::Mutex mu;
int guarded TCA_GUARDED_BY(mu) = 0;
int read_locked() {
  const tca::LockGuard lock(mu);
  return guarded;
}
}  // namespace
int main() { return read_locked(); }
]=])

try_compile(_tca_tsa_good_compiled
  "${_tca_tsa_dir}/good"
  "${_tca_tsa_dir}/good.cpp"
  COMPILE_DEFINITIONS "-Wthread-safety -Werror=thread-safety-analysis"
  CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
  CXX_STANDARD 20 CXX_STANDARD_REQUIRED ON)
if(NOT _tca_tsa_good_compiled)
  message(FATAL_ERROR
    "Thread-safety probe failure: a correctly-locked TU was rejected "
    "under -Werror=thread-safety-analysis; src/core/annotations.hpp is "
    "broken on this Clang.")
endif()

message(STATUS
  "Thread-safety analysis: ACTIVE (-Wthread-safety -Wthread-safety-beta; "
  "probe verified the analysis diagnoses ill-locked code)")
