file(REMOVE_RECURSE
  "CMakeFiles/tca_analysis.dir/basin_sampling.cpp.o"
  "CMakeFiles/tca_analysis.dir/basin_sampling.cpp.o.d"
  "CMakeFiles/tca_analysis.dir/census.cpp.o"
  "CMakeFiles/tca_analysis.dir/census.cpp.o.d"
  "CMakeFiles/tca_analysis.dir/damage.cpp.o"
  "CMakeFiles/tca_analysis.dir/damage.cpp.o.d"
  "CMakeFiles/tca_analysis.dir/energy.cpp.o"
  "CMakeFiles/tca_analysis.dir/energy.cpp.o.d"
  "CMakeFiles/tca_analysis.dir/gf2.cpp.o"
  "CMakeFiles/tca_analysis.dir/gf2.cpp.o.d"
  "CMakeFiles/tca_analysis.dir/linear_ca.cpp.o"
  "CMakeFiles/tca_analysis.dir/linear_ca.cpp.o.d"
  "CMakeFiles/tca_analysis.dir/stats.cpp.o"
  "CMakeFiles/tca_analysis.dir/stats.cpp.o.d"
  "libtca_analysis.a"
  "libtca_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
