# Empty dependencies file for tca_analysis.
# This may be replaced when dependencies are built.
