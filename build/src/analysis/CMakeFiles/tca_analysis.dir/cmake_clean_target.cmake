file(REMOVE_RECURSE
  "libtca_analysis.a"
)
