
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/basin_sampling.cpp" "src/analysis/CMakeFiles/tca_analysis.dir/basin_sampling.cpp.o" "gcc" "src/analysis/CMakeFiles/tca_analysis.dir/basin_sampling.cpp.o.d"
  "/root/repo/src/analysis/census.cpp" "src/analysis/CMakeFiles/tca_analysis.dir/census.cpp.o" "gcc" "src/analysis/CMakeFiles/tca_analysis.dir/census.cpp.o.d"
  "/root/repo/src/analysis/damage.cpp" "src/analysis/CMakeFiles/tca_analysis.dir/damage.cpp.o" "gcc" "src/analysis/CMakeFiles/tca_analysis.dir/damage.cpp.o.d"
  "/root/repo/src/analysis/energy.cpp" "src/analysis/CMakeFiles/tca_analysis.dir/energy.cpp.o" "gcc" "src/analysis/CMakeFiles/tca_analysis.dir/energy.cpp.o.d"
  "/root/repo/src/analysis/gf2.cpp" "src/analysis/CMakeFiles/tca_analysis.dir/gf2.cpp.o" "gcc" "src/analysis/CMakeFiles/tca_analysis.dir/gf2.cpp.o.d"
  "/root/repo/src/analysis/linear_ca.cpp" "src/analysis/CMakeFiles/tca_analysis.dir/linear_ca.cpp.o" "gcc" "src/analysis/CMakeFiles/tca_analysis.dir/linear_ca.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/tca_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/tca_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phasespace/CMakeFiles/tca_phasespace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tca_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/tca_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
