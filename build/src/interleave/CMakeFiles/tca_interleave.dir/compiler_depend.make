# Empty compiler generated dependencies file for tca_interleave.
# This may be replaced when dependencies are built.
