file(REMOVE_RECURSE
  "libtca_interleave.a"
)
