file(REMOVE_RECURSE
  "CMakeFiles/tca_interleave.dir/ca_interleave.cpp.o"
  "CMakeFiles/tca_interleave.dir/ca_interleave.cpp.o.d"
  "CMakeFiles/tca_interleave.dir/explorer.cpp.o"
  "CMakeFiles/tca_interleave.dir/explorer.cpp.o.d"
  "CMakeFiles/tca_interleave.dir/vm.cpp.o"
  "CMakeFiles/tca_interleave.dir/vm.cpp.o.d"
  "libtca_interleave.a"
  "libtca_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
