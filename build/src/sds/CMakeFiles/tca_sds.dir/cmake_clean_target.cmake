file(REMOVE_RECURSE
  "libtca_sds.a"
)
