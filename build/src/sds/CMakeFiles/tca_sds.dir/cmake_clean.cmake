file(REMOVE_RECURSE
  "CMakeFiles/tca_sds.dir/order_equivalence.cpp.o"
  "CMakeFiles/tca_sds.dir/order_equivalence.cpp.o.d"
  "CMakeFiles/tca_sds.dir/sds.cpp.o"
  "CMakeFiles/tca_sds.dir/sds.cpp.o.d"
  "CMakeFiles/tca_sds.dir/word.cpp.o"
  "CMakeFiles/tca_sds.dir/word.cpp.o.d"
  "libtca_sds.a"
  "libtca_sds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_sds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
