# Empty dependencies file for tca_sds.
# This may be replaced when dependencies are built.
