file(REMOVE_RECURSE
  "libtca_phasespace.a"
)
