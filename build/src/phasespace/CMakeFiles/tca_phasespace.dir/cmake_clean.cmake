file(REMOVE_RECURSE
  "CMakeFiles/tca_phasespace.dir/choice_digraph.cpp.o"
  "CMakeFiles/tca_phasespace.dir/choice_digraph.cpp.o.d"
  "CMakeFiles/tca_phasespace.dir/classify.cpp.o"
  "CMakeFiles/tca_phasespace.dir/classify.cpp.o.d"
  "CMakeFiles/tca_phasespace.dir/ctl.cpp.o"
  "CMakeFiles/tca_phasespace.dir/ctl.cpp.o.d"
  "CMakeFiles/tca_phasespace.dir/dot.cpp.o"
  "CMakeFiles/tca_phasespace.dir/dot.cpp.o.d"
  "CMakeFiles/tca_phasespace.dir/functional_graph.cpp.o"
  "CMakeFiles/tca_phasespace.dir/functional_graph.cpp.o.d"
  "CMakeFiles/tca_phasespace.dir/isomorphism.cpp.o"
  "CMakeFiles/tca_phasespace.dir/isomorphism.cpp.o.d"
  "CMakeFiles/tca_phasespace.dir/preimage.cpp.o"
  "CMakeFiles/tca_phasespace.dir/preimage.cpp.o.d"
  "CMakeFiles/tca_phasespace.dir/scc.cpp.o"
  "CMakeFiles/tca_phasespace.dir/scc.cpp.o.d"
  "libtca_phasespace.a"
  "libtca_phasespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_phasespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
