
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phasespace/choice_digraph.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/choice_digraph.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/choice_digraph.cpp.o.d"
  "/root/repo/src/phasespace/classify.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/classify.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/classify.cpp.o.d"
  "/root/repo/src/phasespace/ctl.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/ctl.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/ctl.cpp.o.d"
  "/root/repo/src/phasespace/dot.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/dot.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/dot.cpp.o.d"
  "/root/repo/src/phasespace/functional_graph.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/functional_graph.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/functional_graph.cpp.o.d"
  "/root/repo/src/phasespace/isomorphism.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/isomorphism.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/isomorphism.cpp.o.d"
  "/root/repo/src/phasespace/preimage.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/preimage.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/preimage.cpp.o.d"
  "/root/repo/src/phasespace/scc.cpp" "src/phasespace/CMakeFiles/tca_phasespace.dir/scc.cpp.o" "gcc" "src/phasespace/CMakeFiles/tca_phasespace.dir/scc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tca_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/tca_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
