# Empty dependencies file for tca_phasespace.
# This may be replaced when dependencies are built.
