file(REMOVE_RECURSE
  "libtca_core.a"
)
