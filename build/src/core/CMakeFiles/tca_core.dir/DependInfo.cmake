
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/automaton.cpp" "src/core/CMakeFiles/tca_core.dir/automaton.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/automaton.cpp.o.d"
  "/root/repo/src/core/block_sequential.cpp" "src/core/CMakeFiles/tca_core.dir/block_sequential.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/block_sequential.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "src/core/CMakeFiles/tca_core.dir/configuration.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/configuration.cpp.o.d"
  "/root/repo/src/core/packed2d.cpp" "src/core/CMakeFiles/tca_core.dir/packed2d.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/packed2d.cpp.o.d"
  "/root/repo/src/core/packed_kernels.cpp" "src/core/CMakeFiles/tca_core.dir/packed_kernels.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/packed_kernels.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/tca_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/render.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/tca_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/sequential.cpp" "src/core/CMakeFiles/tca_core.dir/sequential.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/sequential.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/tca_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/synchronous.cpp" "src/core/CMakeFiles/tca_core.dir/synchronous.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/synchronous.cpp.o.d"
  "/root/repo/src/core/synchronous_fast.cpp" "src/core/CMakeFiles/tca_core.dir/synchronous_fast.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/synchronous_fast.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/core/CMakeFiles/tca_core.dir/thread_pool.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/thread_pool.cpp.o.d"
  "/root/repo/src/core/threaded.cpp" "src/core/CMakeFiles/tca_core.dir/threaded.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/threaded.cpp.o.d"
  "/root/repo/src/core/trajectory.cpp" "src/core/CMakeFiles/tca_core.dir/trajectory.cpp.o" "gcc" "src/core/CMakeFiles/tca_core.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tca_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/tca_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
