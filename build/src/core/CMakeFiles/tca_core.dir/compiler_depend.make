# Empty compiler generated dependencies file for tca_core.
# This may be replaced when dependencies are built.
