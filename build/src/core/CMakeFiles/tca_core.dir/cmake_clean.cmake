file(REMOVE_RECURSE
  "CMakeFiles/tca_core.dir/automaton.cpp.o"
  "CMakeFiles/tca_core.dir/automaton.cpp.o.d"
  "CMakeFiles/tca_core.dir/block_sequential.cpp.o"
  "CMakeFiles/tca_core.dir/block_sequential.cpp.o.d"
  "CMakeFiles/tca_core.dir/configuration.cpp.o"
  "CMakeFiles/tca_core.dir/configuration.cpp.o.d"
  "CMakeFiles/tca_core.dir/packed2d.cpp.o"
  "CMakeFiles/tca_core.dir/packed2d.cpp.o.d"
  "CMakeFiles/tca_core.dir/packed_kernels.cpp.o"
  "CMakeFiles/tca_core.dir/packed_kernels.cpp.o.d"
  "CMakeFiles/tca_core.dir/render.cpp.o"
  "CMakeFiles/tca_core.dir/render.cpp.o.d"
  "CMakeFiles/tca_core.dir/schedule.cpp.o"
  "CMakeFiles/tca_core.dir/schedule.cpp.o.d"
  "CMakeFiles/tca_core.dir/sequential.cpp.o"
  "CMakeFiles/tca_core.dir/sequential.cpp.o.d"
  "CMakeFiles/tca_core.dir/simulation.cpp.o"
  "CMakeFiles/tca_core.dir/simulation.cpp.o.d"
  "CMakeFiles/tca_core.dir/synchronous.cpp.o"
  "CMakeFiles/tca_core.dir/synchronous.cpp.o.d"
  "CMakeFiles/tca_core.dir/synchronous_fast.cpp.o"
  "CMakeFiles/tca_core.dir/synchronous_fast.cpp.o.d"
  "CMakeFiles/tca_core.dir/thread_pool.cpp.o"
  "CMakeFiles/tca_core.dir/thread_pool.cpp.o.d"
  "CMakeFiles/tca_core.dir/threaded.cpp.o"
  "CMakeFiles/tca_core.dir/threaded.cpp.o.d"
  "CMakeFiles/tca_core.dir/trajectory.cpp.o"
  "CMakeFiles/tca_core.dir/trajectory.cpp.o.d"
  "libtca_core.a"
  "libtca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
