# Empty dependencies file for tca_graph.
# This may be replaced when dependencies are built.
