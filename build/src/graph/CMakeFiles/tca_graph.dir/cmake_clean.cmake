file(REMOVE_RECURSE
  "CMakeFiles/tca_graph.dir/builders.cpp.o"
  "CMakeFiles/tca_graph.dir/builders.cpp.o.d"
  "CMakeFiles/tca_graph.dir/graph.cpp.o"
  "CMakeFiles/tca_graph.dir/graph.cpp.o.d"
  "CMakeFiles/tca_graph.dir/properties.cpp.o"
  "CMakeFiles/tca_graph.dir/properties.cpp.o.d"
  "libtca_graph.a"
  "libtca_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
