file(REMOVE_RECURSE
  "libtca_graph.a"
)
