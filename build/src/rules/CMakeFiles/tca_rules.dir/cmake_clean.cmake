file(REMOVE_RECURSE
  "CMakeFiles/tca_rules.dir/analyze.cpp.o"
  "CMakeFiles/tca_rules.dir/analyze.cpp.o.d"
  "CMakeFiles/tca_rules.dir/enumerate.cpp.o"
  "CMakeFiles/tca_rules.dir/enumerate.cpp.o.d"
  "CMakeFiles/tca_rules.dir/rule.cpp.o"
  "CMakeFiles/tca_rules.dir/rule.cpp.o.d"
  "libtca_rules.a"
  "libtca_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
