file(REMOVE_RECURSE
  "libtca_rules.a"
)
