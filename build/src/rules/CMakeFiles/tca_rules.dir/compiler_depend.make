# Empty compiler generated dependencies file for tca_rules.
# This may be replaced when dependencies are built.
