file(REMOVE_RECURSE
  "libtca_aca.a"
)
