file(REMOVE_RECURSE
  "CMakeFiles/tca_aca.dir/aca.cpp.o"
  "CMakeFiles/tca_aca.dir/aca.cpp.o.d"
  "CMakeFiles/tca_aca.dir/delayed.cpp.o"
  "CMakeFiles/tca_aca.dir/delayed.cpp.o.d"
  "CMakeFiles/tca_aca.dir/explorer.cpp.o"
  "CMakeFiles/tca_aca.dir/explorer.cpp.o.d"
  "libtca_aca.a"
  "libtca_aca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tca_aca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
