# Empty dependencies file for tca_aca.
# This may be replaced when dependencies are built.
