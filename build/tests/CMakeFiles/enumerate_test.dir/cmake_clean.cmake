file(REMOVE_RECURSE
  "CMakeFiles/enumerate_test.dir/enumerate_test.cpp.o"
  "CMakeFiles/enumerate_test.dir/enumerate_test.cpp.o.d"
  "enumerate_test"
  "enumerate_test.pdb"
  "enumerate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
