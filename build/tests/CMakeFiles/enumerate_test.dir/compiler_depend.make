# Empty compiler generated dependencies file for enumerate_test.
# This may be replaced when dependencies are built.
