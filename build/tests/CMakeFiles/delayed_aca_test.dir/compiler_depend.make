# Empty compiler generated dependencies file for delayed_aca_test.
# This may be replaced when dependencies are built.
