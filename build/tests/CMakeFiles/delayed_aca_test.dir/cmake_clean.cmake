file(REMOVE_RECURSE
  "CMakeFiles/delayed_aca_test.dir/delayed_aca_test.cpp.o"
  "CMakeFiles/delayed_aca_test.dir/delayed_aca_test.cpp.o.d"
  "delayed_aca_test"
  "delayed_aca_test.pdb"
  "delayed_aca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delayed_aca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
