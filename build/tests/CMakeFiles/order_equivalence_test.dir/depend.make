# Empty dependencies file for order_equivalence_test.
# This may be replaced when dependencies are built.
