file(REMOVE_RECURSE
  "CMakeFiles/order_equivalence_test.dir/order_equivalence_test.cpp.o"
  "CMakeFiles/order_equivalence_test.dir/order_equivalence_test.cpp.o.d"
  "order_equivalence_test"
  "order_equivalence_test.pdb"
  "order_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
