file(REMOVE_RECURSE
  "CMakeFiles/random_graph_test.dir/random_graph_test.cpp.o"
  "CMakeFiles/random_graph_test.dir/random_graph_test.cpp.o.d"
  "random_graph_test"
  "random_graph_test.pdb"
  "random_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
