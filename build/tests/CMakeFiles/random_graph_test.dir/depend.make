# Empty dependencies file for random_graph_test.
# This may be replaced when dependencies are built.
