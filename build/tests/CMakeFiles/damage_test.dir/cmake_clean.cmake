file(REMOVE_RECURSE
  "CMakeFiles/damage_test.dir/damage_test.cpp.o"
  "CMakeFiles/damage_test.dir/damage_test.cpp.o.d"
  "damage_test"
  "damage_test.pdb"
  "damage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
