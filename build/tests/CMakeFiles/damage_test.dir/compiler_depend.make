# Empty compiler generated dependencies file for damage_test.
# This may be replaced when dependencies are built.
