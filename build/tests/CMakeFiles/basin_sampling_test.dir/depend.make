# Empty dependencies file for basin_sampling_test.
# This may be replaced when dependencies are built.
