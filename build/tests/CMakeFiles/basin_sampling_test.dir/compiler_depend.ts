# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for basin_sampling_test.
