file(REMOVE_RECURSE
  "CMakeFiles/basin_sampling_test.dir/basin_sampling_test.cpp.o"
  "CMakeFiles/basin_sampling_test.dir/basin_sampling_test.cpp.o.d"
  "basin_sampling_test"
  "basin_sampling_test.pdb"
  "basin_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basin_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
