# Empty compiler generated dependencies file for outer_totalistic_test.
# This may be replaced when dependencies are built.
