# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for outer_totalistic_test.
