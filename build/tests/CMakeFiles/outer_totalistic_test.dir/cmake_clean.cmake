file(REMOVE_RECURSE
  "CMakeFiles/outer_totalistic_test.dir/outer_totalistic_test.cpp.o"
  "CMakeFiles/outer_totalistic_test.dir/outer_totalistic_test.cpp.o.d"
  "outer_totalistic_test"
  "outer_totalistic_test.pdb"
  "outer_totalistic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outer_totalistic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
