# Empty compiler generated dependencies file for packed_kernels_test.
# This may be replaced when dependencies are built.
