file(REMOVE_RECURSE
  "CMakeFiles/packed_kernels_test.dir/packed_kernels_test.cpp.o"
  "CMakeFiles/packed_kernels_test.dir/packed_kernels_test.cpp.o.d"
  "packed_kernels_test"
  "packed_kernels_test.pdb"
  "packed_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
