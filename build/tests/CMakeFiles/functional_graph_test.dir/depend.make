# Empty dependencies file for functional_graph_test.
# This may be replaced when dependencies are built.
