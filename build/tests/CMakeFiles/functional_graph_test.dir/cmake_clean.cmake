file(REMOVE_RECURSE
  "CMakeFiles/functional_graph_test.dir/functional_graph_test.cpp.o"
  "CMakeFiles/functional_graph_test.dir/functional_graph_test.cpp.o.d"
  "functional_graph_test"
  "functional_graph_test.pdb"
  "functional_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
