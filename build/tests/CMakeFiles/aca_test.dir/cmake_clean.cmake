file(REMOVE_RECURSE
  "CMakeFiles/aca_test.dir/aca_test.cpp.o"
  "CMakeFiles/aca_test.dir/aca_test.cpp.o.d"
  "aca_test"
  "aca_test.pdb"
  "aca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
