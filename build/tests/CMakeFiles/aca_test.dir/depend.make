# Empty dependencies file for aca_test.
# This may be replaced when dependencies are built.
