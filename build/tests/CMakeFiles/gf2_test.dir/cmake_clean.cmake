file(REMOVE_RECURSE
  "CMakeFiles/gf2_test.dir/gf2_test.cpp.o"
  "CMakeFiles/gf2_test.dir/gf2_test.cpp.o.d"
  "gf2_test"
  "gf2_test.pdb"
  "gf2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
