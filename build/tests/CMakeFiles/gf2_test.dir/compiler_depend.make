# Empty compiler generated dependencies file for gf2_test.
# This may be replaced when dependencies are built.
