# Empty dependencies file for simulation_test.
# This may be replaced when dependencies are built.
