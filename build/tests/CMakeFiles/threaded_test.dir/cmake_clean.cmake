file(REMOVE_RECURSE
  "CMakeFiles/threaded_test.dir/threaded_test.cpp.o"
  "CMakeFiles/threaded_test.dir/threaded_test.cpp.o.d"
  "threaded_test"
  "threaded_test.pdb"
  "threaded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
