# Empty compiler generated dependencies file for analyze_test.
# This may be replaced when dependencies are built.
