file(REMOVE_RECURSE
  "CMakeFiles/analyze_test.dir/analyze_test.cpp.o"
  "CMakeFiles/analyze_test.dir/analyze_test.cpp.o.d"
  "analyze_test"
  "analyze_test.pdb"
  "analyze_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
