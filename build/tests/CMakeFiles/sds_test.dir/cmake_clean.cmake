file(REMOVE_RECURSE
  "CMakeFiles/sds_test.dir/sds_test.cpp.o"
  "CMakeFiles/sds_test.dir/sds_test.cpp.o.d"
  "sds_test"
  "sds_test.pdb"
  "sds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
