# Empty dependencies file for sds_test.
# This may be replaced when dependencies are built.
