file(REMOVE_RECURSE
  "CMakeFiles/configuration_test.dir/configuration_test.cpp.o"
  "CMakeFiles/configuration_test.dir/configuration_test.cpp.o.d"
  "configuration_test"
  "configuration_test.pdb"
  "configuration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configuration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
