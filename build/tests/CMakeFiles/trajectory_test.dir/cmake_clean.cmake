file(REMOVE_RECURSE
  "CMakeFiles/trajectory_test.dir/trajectory_test.cpp.o"
  "CMakeFiles/trajectory_test.dir/trajectory_test.cpp.o.d"
  "trajectory_test"
  "trajectory_test.pdb"
  "trajectory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
