# Empty compiler generated dependencies file for trajectory_test.
# This may be replaced when dependencies are built.
