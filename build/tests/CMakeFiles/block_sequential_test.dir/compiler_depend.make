# Empty compiler generated dependencies file for block_sequential_test.
# This may be replaced when dependencies are built.
