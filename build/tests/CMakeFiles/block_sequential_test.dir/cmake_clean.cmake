file(REMOVE_RECURSE
  "CMakeFiles/block_sequential_test.dir/block_sequential_test.cpp.o"
  "CMakeFiles/block_sequential_test.dir/block_sequential_test.cpp.o.d"
  "block_sequential_test"
  "block_sequential_test.pdb"
  "block_sequential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
