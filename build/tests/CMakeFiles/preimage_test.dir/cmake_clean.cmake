file(REMOVE_RECURSE
  "CMakeFiles/preimage_test.dir/preimage_test.cpp.o"
  "CMakeFiles/preimage_test.dir/preimage_test.cpp.o.d"
  "preimage_test"
  "preimage_test.pdb"
  "preimage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preimage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
