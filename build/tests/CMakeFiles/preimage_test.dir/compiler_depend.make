# Empty compiler generated dependencies file for preimage_test.
# This may be replaced when dependencies are built.
