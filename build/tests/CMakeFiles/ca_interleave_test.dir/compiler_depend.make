# Empty compiler generated dependencies file for ca_interleave_test.
# This may be replaced when dependencies are built.
