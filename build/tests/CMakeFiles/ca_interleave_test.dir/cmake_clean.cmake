file(REMOVE_RECURSE
  "CMakeFiles/ca_interleave_test.dir/ca_interleave_test.cpp.o"
  "CMakeFiles/ca_interleave_test.dir/ca_interleave_test.cpp.o.d"
  "ca_interleave_test"
  "ca_interleave_test.pdb"
  "ca_interleave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_interleave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
