file(REMOVE_RECURSE
  "CMakeFiles/boundary_test.dir/boundary_test.cpp.o"
  "CMakeFiles/boundary_test.dir/boundary_test.cpp.o.d"
  "boundary_test"
  "boundary_test.pdb"
  "boundary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
