# Empty compiler generated dependencies file for boundary_test.
# This may be replaced when dependencies are built.
