# Empty dependencies file for choice_digraph_test.
# This may be replaced when dependencies are built.
