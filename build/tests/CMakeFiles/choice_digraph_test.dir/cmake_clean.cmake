file(REMOVE_RECURSE
  "CMakeFiles/choice_digraph_test.dir/choice_digraph_test.cpp.o"
  "CMakeFiles/choice_digraph_test.dir/choice_digraph_test.cpp.o.d"
  "choice_digraph_test"
  "choice_digraph_test.pdb"
  "choice_digraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choice_digraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
