# Empty compiler generated dependencies file for word_test.
# This may be replaced when dependencies are built.
