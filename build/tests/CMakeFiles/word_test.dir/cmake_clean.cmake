file(REMOVE_RECURSE
  "CMakeFiles/word_test.dir/word_test.cpp.o"
  "CMakeFiles/word_test.dir/word_test.cpp.o.d"
  "word_test"
  "word_test.pdb"
  "word_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
