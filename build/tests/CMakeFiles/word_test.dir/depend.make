# Empty dependencies file for word_test.
# This may be replaced when dependencies are built.
