file(REMOVE_RECURSE
  "CMakeFiles/packed2d_test.dir/packed2d_test.cpp.o"
  "CMakeFiles/packed2d_test.dir/packed2d_test.cpp.o.d"
  "packed2d_test"
  "packed2d_test.pdb"
  "packed2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
