# Empty dependencies file for packed2d_test.
# This may be replaced when dependencies are built.
