file(REMOVE_RECURSE
  "CMakeFiles/census_test.dir/census_test.cpp.o"
  "CMakeFiles/census_test.dir/census_test.cpp.o.d"
  "census_test"
  "census_test.pdb"
  "census_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
