file(REMOVE_RECURSE
  "CMakeFiles/sequential_test.dir/sequential_test.cpp.o"
  "CMakeFiles/sequential_test.dir/sequential_test.cpp.o.d"
  "sequential_test"
  "sequential_test.pdb"
  "sequential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
