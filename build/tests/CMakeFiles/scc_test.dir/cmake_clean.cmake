file(REMOVE_RECURSE
  "CMakeFiles/scc_test.dir/scc_test.cpp.o"
  "CMakeFiles/scc_test.dir/scc_test.cpp.o.d"
  "scc_test"
  "scc_test.pdb"
  "scc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
