# Empty dependencies file for synchronous_test.
# This may be replaced when dependencies are built.
