file(REMOVE_RECURSE
  "CMakeFiles/synchronous_test.dir/synchronous_test.cpp.o"
  "CMakeFiles/synchronous_test.dir/synchronous_test.cpp.o.d"
  "synchronous_test"
  "synchronous_test.pdb"
  "synchronous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
