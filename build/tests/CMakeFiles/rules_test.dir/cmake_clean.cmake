file(REMOVE_RECURSE
  "CMakeFiles/rules_test.dir/rules_test.cpp.o"
  "CMakeFiles/rules_test.dir/rules_test.cpp.o.d"
  "rules_test"
  "rules_test.pdb"
  "rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
