# Empty compiler generated dependencies file for rules_test.
# This may be replaced when dependencies are built.
