file(REMOVE_RECURSE
  "CMakeFiles/ctl_test.dir/ctl_test.cpp.o"
  "CMakeFiles/ctl_test.dir/ctl_test.cpp.o.d"
  "ctl_test"
  "ctl_test.pdb"
  "ctl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
