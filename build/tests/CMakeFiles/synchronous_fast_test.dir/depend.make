# Empty dependencies file for synchronous_fast_test.
# This may be replaced when dependencies are built.
