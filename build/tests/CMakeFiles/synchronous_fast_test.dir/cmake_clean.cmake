file(REMOVE_RECURSE
  "CMakeFiles/synchronous_fast_test.dir/synchronous_fast_test.cpp.o"
  "CMakeFiles/synchronous_fast_test.dir/synchronous_fast_test.cpp.o.d"
  "synchronous_fast_test"
  "synchronous_fast_test.pdb"
  "synchronous_fast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synchronous_fast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
