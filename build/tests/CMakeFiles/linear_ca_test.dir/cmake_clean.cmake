file(REMOVE_RECURSE
  "CMakeFiles/linear_ca_test.dir/linear_ca_test.cpp.o"
  "CMakeFiles/linear_ca_test.dir/linear_ca_test.cpp.o.d"
  "linear_ca_test"
  "linear_ca_test.pdb"
  "linear_ca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_ca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
