# Empty compiler generated dependencies file for linear_ca_test.
# This may be replaced when dependencies are built.
