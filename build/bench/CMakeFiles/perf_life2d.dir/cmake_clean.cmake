file(REMOVE_RECURSE
  "CMakeFiles/perf_life2d.dir/perf_life2d.cpp.o"
  "CMakeFiles/perf_life2d.dir/perf_life2d.cpp.o.d"
  "perf_life2d"
  "perf_life2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_life2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
