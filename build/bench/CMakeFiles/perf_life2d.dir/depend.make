# Empty dependencies file for perf_life2d.
# This may be replaced when dependencies are built.
