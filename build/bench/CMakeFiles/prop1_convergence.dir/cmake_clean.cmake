file(REMOVE_RECURSE
  "CMakeFiles/prop1_convergence.dir/prop1_convergence.cpp.o"
  "CMakeFiles/prop1_convergence.dir/prop1_convergence.cpp.o.d"
  "prop1_convergence"
  "prop1_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop1_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
