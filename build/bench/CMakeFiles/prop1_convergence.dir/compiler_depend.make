# Empty compiler generated dependencies file for prop1_convergence.
# This may be replaced when dependencies are built.
