file(REMOVE_RECURSE
  "CMakeFiles/bounded_asynchrony.dir/bounded_asynchrony.cpp.o"
  "CMakeFiles/bounded_asynchrony.dir/bounded_asynchrony.cpp.o.d"
  "bounded_asynchrony"
  "bounded_asynchrony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_asynchrony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
