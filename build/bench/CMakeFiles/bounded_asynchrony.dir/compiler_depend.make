# Empty compiler generated dependencies file for bounded_asynchrony.
# This may be replaced when dependencies are built.
