file(REMOVE_RECURSE
  "CMakeFiles/seq_richness_census.dir/seq_richness_census.cpp.o"
  "CMakeFiles/seq_richness_census.dir/seq_richness_census.cpp.o.d"
  "seq_richness_census"
  "seq_richness_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_richness_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
