# Empty dependencies file for seq_richness_census.
# This may be replaced when dependencies are built.
