file(REMOVE_RECURSE
  "CMakeFiles/aca_subsumption.dir/aca_subsumption.cpp.o"
  "CMakeFiles/aca_subsumption.dir/aca_subsumption.cpp.o.d"
  "aca_subsumption"
  "aca_subsumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aca_subsumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
