# Empty compiler generated dependencies file for aca_subsumption.
# This may be replaced when dependencies are built.
