file(REMOVE_RECURSE
  "CMakeFiles/ablation_cycle_detection.dir/ablation_cycle_detection.cpp.o"
  "CMakeFiles/ablation_cycle_detection.dir/ablation_cycle_detection.cpp.o.d"
  "ablation_cycle_detection"
  "ablation_cycle_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cycle_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
