# Empty compiler generated dependencies file for ablation_cycle_detection.
# This may be replaced when dependencies are built.
