# Empty dependencies file for rare_cycles_census.
# This may be replaced when dependencies are built.
