file(REMOVE_RECURSE
  "CMakeFiles/rare_cycles_census.dir/rare_cycles_census.cpp.o"
  "CMakeFiles/rare_cycles_census.dir/rare_cycles_census.cpp.o.d"
  "rare_cycles_census"
  "rare_cycles_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rare_cycles_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
