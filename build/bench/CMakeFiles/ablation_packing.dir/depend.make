# Empty dependencies file for ablation_packing.
# This may be replaced when dependencies are built.
