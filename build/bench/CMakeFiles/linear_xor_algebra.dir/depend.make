# Empty dependencies file for linear_xor_algebra.
# This may be replaced when dependencies are built.
