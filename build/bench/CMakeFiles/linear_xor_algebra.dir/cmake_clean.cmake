file(REMOVE_RECURSE
  "CMakeFiles/linear_xor_algebra.dir/linear_xor_algebra.cpp.o"
  "CMakeFiles/linear_xor_algebra.dir/linear_xor_algebra.cpp.o.d"
  "linear_xor_algebra"
  "linear_xor_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_xor_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
