# Empty dependencies file for lemma2_majority_r2.
# This may be replaced when dependencies are built.
