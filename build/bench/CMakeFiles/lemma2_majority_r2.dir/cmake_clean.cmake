file(REMOVE_RECURSE
  "CMakeFiles/lemma2_majority_r2.dir/lemma2_majority_r2.cpp.o"
  "CMakeFiles/lemma2_majority_r2.dir/lemma2_majority_r2.cpp.o.d"
  "lemma2_majority_r2"
  "lemma2_majority_r2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma2_majority_r2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
