# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lemma2_majority_r2.
