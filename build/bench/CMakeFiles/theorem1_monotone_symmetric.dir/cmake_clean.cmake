file(REMOVE_RECURSE
  "CMakeFiles/theorem1_monotone_symmetric.dir/theorem1_monotone_symmetric.cpp.o"
  "CMakeFiles/theorem1_monotone_symmetric.dir/theorem1_monotone_symmetric.cpp.o.d"
  "theorem1_monotone_symmetric"
  "theorem1_monotone_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem1_monotone_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
