# Empty dependencies file for theorem1_monotone_symmetric.
# This may be replaced when dependencies are built.
