# Empty compiler generated dependencies file for theorem1_monotone_symmetric.
# This may be replaced when dependencies are built.
