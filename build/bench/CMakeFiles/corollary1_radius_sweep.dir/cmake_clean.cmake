file(REMOVE_RECURSE
  "CMakeFiles/corollary1_radius_sweep.dir/corollary1_radius_sweep.cpp.o"
  "CMakeFiles/corollary1_radius_sweep.dir/corollary1_radius_sweep.cpp.o.d"
  "corollary1_radius_sweep"
  "corollary1_radius_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corollary1_radius_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
