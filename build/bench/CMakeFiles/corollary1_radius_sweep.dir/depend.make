# Empty dependencies file for corollary1_radius_sweep.
# This may be replaced when dependencies are built.
