# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for corollary1_radius_sweep.
