# Empty dependencies file for ablation_dispatch.
# This may be replaced when dependencies are built.
