file(REMOVE_RECURSE
  "CMakeFiles/ablation_dispatch.dir/ablation_dispatch.cpp.o"
  "CMakeFiles/ablation_dispatch.dir/ablation_dispatch.cpp.o.d"
  "ablation_dispatch"
  "ablation_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
