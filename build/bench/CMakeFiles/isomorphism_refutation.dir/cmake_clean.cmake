file(REMOVE_RECURSE
  "CMakeFiles/isomorphism_refutation.dir/isomorphism_refutation.cpp.o"
  "CMakeFiles/isomorphism_refutation.dir/isomorphism_refutation.cpp.o.d"
  "isomorphism_refutation"
  "isomorphism_refutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isomorphism_refutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
