# Empty dependencies file for isomorphism_refutation.
# This may be replaced when dependencies are built.
