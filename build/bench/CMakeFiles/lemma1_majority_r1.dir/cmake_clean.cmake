file(REMOVE_RECURSE
  "CMakeFiles/lemma1_majority_r1.dir/lemma1_majority_r1.cpp.o"
  "CMakeFiles/lemma1_majority_r1.dir/lemma1_majority_r1.cpp.o.d"
  "lemma1_majority_r1"
  "lemma1_majority_r1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma1_majority_r1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
