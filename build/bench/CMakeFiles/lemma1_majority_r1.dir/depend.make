# Empty dependencies file for lemma1_majority_r1.
# This may be replaced when dependencies are built.
