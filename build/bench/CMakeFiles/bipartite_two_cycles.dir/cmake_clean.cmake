file(REMOVE_RECURSE
  "CMakeFiles/bipartite_two_cycles.dir/bipartite_two_cycles.cpp.o"
  "CMakeFiles/bipartite_two_cycles.dir/bipartite_two_cycles.cpp.o.d"
  "bipartite_two_cycles"
  "bipartite_two_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_two_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
