# Empty dependencies file for bipartite_two_cycles.
# This may be replaced when dependencies are built.
