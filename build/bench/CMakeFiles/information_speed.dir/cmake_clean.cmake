file(REMOVE_RECURSE
  "CMakeFiles/information_speed.dir/information_speed.cpp.o"
  "CMakeFiles/information_speed.dir/information_speed.cpp.o.d"
  "information_speed"
  "information_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/information_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
