# Empty dependencies file for information_speed.
# This may be replaced when dependencies are built.
