# Empty dependencies file for totalistic_survey.
# This may be replaced when dependencies are built.
