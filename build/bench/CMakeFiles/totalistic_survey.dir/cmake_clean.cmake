file(REMOVE_RECURSE
  "CMakeFiles/totalistic_survey.dir/totalistic_survey.cpp.o"
  "CMakeFiles/totalistic_survey.dir/totalistic_survey.cpp.o.d"
  "totalistic_survey"
  "totalistic_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/totalistic_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
