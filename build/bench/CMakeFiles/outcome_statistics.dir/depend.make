# Empty dependencies file for outcome_statistics.
# This may be replaced when dependencies are built.
