file(REMOVE_RECURSE
  "CMakeFiles/outcome_statistics.dir/outcome_statistics.cpp.o"
  "CMakeFiles/outcome_statistics.dir/outcome_statistics.cpp.o.d"
  "outcome_statistics"
  "outcome_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outcome_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
