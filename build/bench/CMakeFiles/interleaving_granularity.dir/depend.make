# Empty dependencies file for interleaving_granularity.
# This may be replaced when dependencies are built.
