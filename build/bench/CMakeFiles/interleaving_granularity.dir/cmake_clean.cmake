file(REMOVE_RECURSE
  "CMakeFiles/interleaving_granularity.dir/interleaving_granularity.cpp.o"
  "CMakeFiles/interleaving_granularity.dir/interleaving_granularity.cpp.o.d"
  "interleaving_granularity"
  "interleaving_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaving_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
