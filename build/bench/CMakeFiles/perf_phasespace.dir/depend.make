# Empty dependencies file for perf_phasespace.
# This may be replaced when dependencies are built.
