file(REMOVE_RECURSE
  "CMakeFiles/perf_phasespace.dir/perf_phasespace.cpp.o"
  "CMakeFiles/perf_phasespace.dir/perf_phasespace.cpp.o.d"
  "perf_phasespace"
  "perf_phasespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_phasespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
