file(REMOVE_RECURSE
  "CMakeFiles/perf_preimage.dir/perf_preimage.cpp.o"
  "CMakeFiles/perf_preimage.dir/perf_preimage.cpp.o.d"
  "perf_preimage"
  "perf_preimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_preimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
