# Empty dependencies file for perf_preimage.
# This may be replaced when dependencies are built.
