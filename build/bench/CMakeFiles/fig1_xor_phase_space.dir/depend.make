# Empty dependencies file for fig1_xor_phase_space.
# This may be replaced when dependencies are built.
