file(REMOVE_RECURSE
  "CMakeFiles/fig1_xor_phase_space.dir/fig1_xor_phase_space.cpp.o"
  "CMakeFiles/fig1_xor_phase_space.dir/fig1_xor_phase_space.cpp.o.d"
  "fig1_xor_phase_space"
  "fig1_xor_phase_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_xor_phase_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
