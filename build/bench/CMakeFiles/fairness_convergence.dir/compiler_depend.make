# Empty compiler generated dependencies file for fairness_convergence.
# This may be replaced when dependencies are built.
