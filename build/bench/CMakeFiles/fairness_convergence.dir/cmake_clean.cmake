file(REMOVE_RECURSE
  "CMakeFiles/fairness_convergence.dir/fairness_convergence.cpp.o"
  "CMakeFiles/fairness_convergence.dir/fairness_convergence.cpp.o.d"
  "fairness_convergence"
  "fairness_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
