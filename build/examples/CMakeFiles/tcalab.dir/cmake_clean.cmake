file(REMOVE_RECURSE
  "CMakeFiles/tcalab.dir/tcalab.cpp.o"
  "CMakeFiles/tcalab.dir/tcalab.cpp.o.d"
  "tcalab"
  "tcalab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcalab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
