# Empty compiler generated dependencies file for tcalab.
# This may be replaced when dependencies are built.
