# Empty dependencies file for asynchrony_lab.
# This may be replaced when dependencies are built.
