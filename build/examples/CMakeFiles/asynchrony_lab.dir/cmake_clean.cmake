file(REMOVE_RECURSE
  "CMakeFiles/asynchrony_lab.dir/asynchrony_lab.cpp.o"
  "CMakeFiles/asynchrony_lab.dir/asynchrony_lab.cpp.o.d"
  "asynchrony_lab"
  "asynchrony_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asynchrony_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
