file(REMOVE_RECURSE
  "CMakeFiles/game_of_life.dir/game_of_life.cpp.o"
  "CMakeFiles/game_of_life.dir/game_of_life.cpp.o.d"
  "game_of_life"
  "game_of_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_of_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
