# Empty compiler generated dependencies file for game_of_life.
# This may be replaced when dependencies are built.
