# Empty compiler generated dependencies file for traffic_rule184.
# This may be replaced when dependencies are built.
