file(REMOVE_RECURSE
  "CMakeFiles/traffic_rule184.dir/traffic_rule184.cpp.o"
  "CMakeFiles/traffic_rule184.dir/traffic_rule184.cpp.o.d"
  "traffic_rule184"
  "traffic_rule184.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_rule184.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
