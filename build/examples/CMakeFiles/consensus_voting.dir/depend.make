# Empty dependencies file for consensus_voting.
# This may be replaced when dependencies are built.
