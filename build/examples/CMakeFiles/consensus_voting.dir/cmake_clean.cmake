file(REMOVE_RECURSE
  "CMakeFiles/consensus_voting.dir/consensus_voting.cpp.o"
  "CMakeFiles/consensus_voting.dir/consensus_voting.cpp.o.d"
  "consensus_voting"
  "consensus_voting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_voting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
