file(REMOVE_RECURSE
  "CMakeFiles/density_classification.dir/density_classification.cpp.o"
  "CMakeFiles/density_classification.dir/density_classification.cpp.o.d"
  "density_classification"
  "density_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
