# Empty compiler generated dependencies file for density_classification.
# This may be replaced when dependencies are built.
