
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/density_classification.cpp" "examples/CMakeFiles/density_classification.dir/density_classification.cpp.o" "gcc" "examples/CMakeFiles/density_classification.dir/density_classification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tca_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/tca_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phasespace/CMakeFiles/tca_phasespace.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tca_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sds/CMakeFiles/tca_sds.dir/DependInfo.cmake"
  "/root/repo/build/src/interleave/CMakeFiles/tca_interleave.dir/DependInfo.cmake"
  "/root/repo/build/src/aca/CMakeFiles/tca_aca.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
