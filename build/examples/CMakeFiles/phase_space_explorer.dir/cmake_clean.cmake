file(REMOVE_RECURSE
  "CMakeFiles/phase_space_explorer.dir/phase_space_explorer.cpp.o"
  "CMakeFiles/phase_space_explorer.dir/phase_space_explorer.cpp.o.d"
  "phase_space_explorer"
  "phase_space_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_space_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
