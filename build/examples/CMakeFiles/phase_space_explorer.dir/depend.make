# Empty dependencies file for phase_space_explorer.
# This may be replaced when dependencies are built.
