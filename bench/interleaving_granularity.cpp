// Experiment ILV — Section 1.1: the x := x+1 || x := x+2 exercise.
// At statement granularity no interleaving reproduces the parallel (lost
// update) outcomes; at machine (LOAD/ADDI/STORE) granularity they reappear.
// Then the same question is asked of CA node updates: for threshold CA the
// answer is NO at every granularity of whole-node updates — motivating the
// paper's finer fetch/compute/publish decomposition (see experiment ACA).

#include <cstdio>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "graph/builders.hpp"
#include "interleave/ca_interleave.hpp"
#include "interleave/explorer.hpp"
#include "interleave/vm.hpp"

using namespace tca;
using namespace tca::interleave;

namespace {

std::string outcomes_to_string(const std::set<std::vector<std::int64_t>>& s) {
  std::string out = "{";
  bool first = true;
  for (const auto& v : s) {
    if (!first) out += ", ";
    first = false;
    out += "x=" + std::to_string(v[0]);
  }
  return out + "}";
}

}  // namespace

int main() {
  bench::banner(
      "ILV",
      "Section 1.1: x:=x+1 || x:=x+2 from x=0. Statement-level "
      "interleavings give {3}; truly parallel execution gives {1,2}; "
      "machine-level interleavings give {1,2,3} — granularity refinement "
      "restores interleaving semantics for programs, but NOT for threshold "
      "CA node updates.");

  bench::Verdict verdict;

  const Machine stmt = statement_level_example(1, 2);
  const Machine mach = machine_level_example(1, 2);

  std::printf("\nPrograms (machine granularity):\n");
  for (std::size_t p = 0; p < mach.num_processes(); ++p) {
    std::printf("  P%zu:\n", p + 1);
    for (const auto& instr : mach.program(p)) {
      std::printf("    %s\n", to_string(instr).c_str());
    }
  }

  const auto stmt_outcomes = interleaving_outcomes(stmt, stmt.initial({0}));
  const auto par_outcomes = parallel_outcomes(stmt, stmt.initial({0}));
  const auto mach_outcomes = interleaving_outcomes(mach, mach.initial({0}));

  std::printf("\n%-38s %s\n", "statement-level interleavings:",
              outcomes_to_string(stmt_outcomes).c_str());
  std::printf("%-38s %s\n", "parallel (simultaneous) execution:",
              outcomes_to_string(par_outcomes).c_str());
  std::printf("%-38s %s\n", "machine-level interleavings:",
              outcomes_to_string(mach_outcomes).c_str());
  std::printf("distinct schedules: statement-level %llu, machine-level %llu\n",
              static_cast<unsigned long long>(count_interleavings(stmt)),
              static_cast<unsigned long long>(count_interleavings(mach)));

  verdict.check("statement-level interleavings always give x=3",
                stmt_outcomes ==
                    std::set<std::vector<std::int64_t>>{{3}});
  verdict.check("parallel execution gives x in {1,2} (lost update)",
                par_outcomes ==
                    (std::set<std::vector<std::int64_t>>{{1}, {2}}));
  verdict.check("machine-level interleavings give {1,2,3}",
                mach_outcomes ==
                    (std::set<std::vector<std::int64_t>>{{1}, {2}, {3}}));
  bool parallel_in_machine = true;
  for (const auto& o : par_outcomes) {
    if (!mach_outcomes.contains(o)) parallel_in_machine = false;
  }
  verdict.check("parallel outcomes recovered at machine granularity",
                parallel_in_machine);
  verdict.check("20 = C(6,3) machine schedules",
                count_interleavings(mach) == 20);

  std::printf("\n--- Lock-free repair: CAS retry loops ---\n");
  {
    const Machine cas = cas_level_example(1, 2);
    std::printf("P1 (P2 analogous):\n");
    for (const auto& instr : cas.program(0)) {
      std::printf("    %s\n", to_string(instr).c_str());
    }
    const auto cas_outcomes = interleaving_outcomes(cas, cas.initial({0}));
    std::printf("%-38s %s\n", "CAS-loop interleavings:",
                outcomes_to_string(cas_outcomes).c_str());
    verdict.check(
        "optimistic CAS loops restore atomicity: every interleaving gives 3",
        cas_outcomes == (std::set<std::vector<std::int64_t>>{{3}}));
  }

  std::printf("\n--- The same question for CA node updates ---\n");
  {
    const auto a = core::Automaton::line(8, 1, core::Boundary::kRing,
                                         rules::majority(), core::Memory::kWith);
    const auto blinker = core::Configuration::from_string("01010101");
    const auto reach = reach_parallel_step(a, blinker);
    std::printf("majority ring n=8, state 01010101: parallel successor "
                "reachable by node-update interleavings: %s\n",
                reach ? "yes" : "no");
    verdict.check("whole-node-update interleavings CANNOT reproduce the "
                  "parallel step (Lemma 1 consequence)",
                  !reach.has_value());

    const auto first_fail = first_irreproducible_step(a, blinker);
    std::printf("first irreproducible step along the orbit: %s\n",
                first_fail ? std::to_string(*first_fail).c_str() : "none");
    verdict.check("the failure happens immediately (step 0)",
                  first_fail == 0u);
  }

  std::printf("\nConclusion: for programs, refining granularity restored the "
              "interleaving semantics; for classical CA, whole node updates "
              "are NOT fine enough — the paper proposes splitting a node "
              "update into fetch/compute/publish (see experiment ACA).\n");
  return verdict.finish("ILV");
}
