// Experiment BIP — Section 3.2 extension: threshold CA over ANY bipartite
// cellular space (2-D grids/tori, hypercubes, complete bipartite graphs)
// have temporal two-cycles: energize one side of the bipartition and
// MAJORITY flips sides forever. Also exhaustively verifies period <= 2 on
// the small spaces and shows a NON-bipartite space (odd ring, Moore grid)
// where the same construction does not apply.

#include <cstdio>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/trajectory.hpp"
#include "graph/builders.hpp"
#include "graph/properties.hpp"
#include "phasespace/classify.hpp"

using namespace tca;

namespace {

struct Space {
  const char* name;
  graph::Graph g;
};

}  // namespace

int main() {
  bench::banner(
      "BIP",
      "Section 3.2: for any bipartite cellular space (2-D grids, hypercubes, "
      "complete bipartite graphs), nontrivial threshold CA have temporal "
      "two-cycles.");

  bench::Verdict verdict;

  Space spaces[] = {
      {"torus 4x4", graph::grid2d(4, 4, true)},
      {"torus 4x6", graph::grid2d(4, 6, true)},
      {"grid 3x5 (open)", graph::grid2d(3, 5, false)},
      {"hypercube Q3", graph::hypercube(3)},
      {"hypercube Q4", graph::hypercube(4)},
      {"hypercube Q10", graph::hypercube(10)},
      {"K_{3,3}", graph::complete_bipartite(3, 3)},
      {"K_{4,7}", graph::complete_bipartite(4, 7)},
      {"even ring C12", graph::ring(12)},
  };

  std::printf("\n%-18s %8s %8s %11s %8s\n", "space", "nodes", "edges",
              "bipartite", "period");
  for (const auto& space : spaces) {
    const auto coloring = graph::bipartition(space.g);
    const bool bip = coloring.has_value();
    std::uint64_t period = 0;
    if (bip) {
      const auto a = core::Automaton::from_graph(space.g, rules::majority(),
                                                 core::Memory::kWith);
      core::Configuration c(space.g.num_nodes());
      for (graph::NodeId v = 0; v < space.g.num_nodes(); ++v) {
        if ((*coloring)[v] == 1) c.set(v, 1);
      }
      const auto orbit = core::find_orbit_synchronous(a, c, 16);
      if (orbit && orbit->transient == 0) period = orbit->period;
    }
    std::printf("%-18s %8u %8zu %11s %8llu\n", space.name,
                space.g.num_nodes(), space.g.num_edges(), bip ? "yes" : "no",
                static_cast<unsigned long long>(period));
    verdict.check(std::string(space.name) +
                      ": one-side-hot configuration is a two-cycle",
                  period == 2);
  }

  std::printf("\nExhaustive period check (every state), small bipartite "
              "spaces:\n");
  {
    Space small[] = {
        {"torus 4x4", graph::grid2d(4, 4, true)},
        {"hypercube Q4", graph::hypercube(4)},
        {"K_{3,3}", graph::complete_bipartite(3, 3)},
    };
    for (const auto& space : small) {
      const auto a = core::Automaton::from_graph(space.g, rules::majority(),
                                                 core::Memory::kWith);
      const auto cls =
          phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
      std::printf("  %-18s max period %llu, 2-cycle states %llu\n", space.name,
                  static_cast<unsigned long long>(cls.max_period()),
                  static_cast<unsigned long long>(cls.num_cycle_states));
      verdict.check(std::string(space.name) + ": exhaustive max period == 2",
                    cls.max_period() == 2);
    }
  }

  std::printf("\nNon-bipartite contrast (no one-side-hot construction):\n");
  for (const auto& g : {graph::ring(9), graph::grid2d(3, 3, false,
                                                      graph::GridNeighborhood::kMoore)}) {
    std::printf("  %-18s bipartite: %s\n", g.summary().c_str(),
                graph::is_bipartite(g) ? "yes" : "no");
    verdict.check(g.summary() + " is not bipartite", !graph::is_bipartite(g));
  }

  return verdict.finish("BIP");
}
