// Experiment LEM1 — Lemma 1: radius-1 MAJORITY rings.
//  (i)  parallel CA have temporal two-cycles (the alternating pair);
//  (ii) sequential CA have NO cycles for ANY update order — verified three
//       independent ways: SCC over the full choice digraph (exhaustive,
//       n <= 14), all 7! sweep permutations (n = 7), and random fair
//       schedules on larger rings (n <= 24) with the Lyapunov bound.

#include <algorithm>
#include <cstdio>
#include <random>

#include "analysis/energy.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"

using namespace tca;

namespace {

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

}  // namespace

int main() {
  bench::banner(
      "LEM1",
      "Lemma 1: 1-D CA with r=1 and MAJORITY: (i) the parallel CA has finite "
      "temporal two-cycles; (ii) the sequential CA has no cycles for any "
      "update order.");

  bench::Verdict verdict;

  std::printf("\n(i) Parallel two-cycles (alternating configurations):\n");
  std::printf("%6s %22s %10s %10s\n", "n", "configuration", "period",
              "transient");
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u, 16u, 20u, 24u}) {
    const auto a = majority_ring(n);
    core::Configuration alt(n);
    for (std::size_t i = 1; i < n; i += 2) alt.set(i, 1);
    const auto orbit = core::find_orbit_synchronous(a, alt, 64);
    const bool ok = orbit && orbit->period == 2 && orbit->transient == 0;
    std::printf("%6zu %22s %10llu %10llu\n", n,
                n <= 20 ? alt.to_string().c_str() : "(0101...)",
                orbit ? static_cast<unsigned long long>(orbit->period) : 0ULL,
                orbit ? static_cast<unsigned long long>(orbit->transient)
                      : 0ULL);
    verdict.check("n=" + std::to_string(n) + ": (01)^* is a two-cycle", ok);
  }

  std::printf(
      "\n(ii.a) Exhaustive: SCC over the nondeterministic choice digraph\n");
  std::printf("%6s %14s %16s %20s\n", "n", "states", "SCCs",
              "proper-cycle states");
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u, 14u}) {
    const phasespace::ChoiceDigraph g(majority_ring(n));
    const auto analysis = phasespace::analyze(g);
    std::printf("%6zu %14llu %16llu %20llu\n", n,
                static_cast<unsigned long long>(g.num_states()),
                static_cast<unsigned long long>(analysis.num_sccs),
                static_cast<unsigned long long>(
                    analysis.num_proper_cycle_states));
    verdict.check("n=" + std::to_string(n) + ": choice digraph cycle-free",
                  !analysis.has_proper_cycle());
  }

  std::printf("\n(ii.b) All 5040 sweep permutations on n=7:\n");
  {
    const auto a = majority_ring(7);
    auto perm = core::identity_order(7);
    bool all_cycle_free = true;
    std::uint64_t count = 0;
    do {
      const auto cls =
          phasespace::classify(phasespace::FunctionalGraph::sweep(a, perm));
      if (cls.has_proper_cycle()) all_cycle_free = false;
      ++count;
    } while (std::next_permutation(perm.begin(), perm.end()));
    std::printf("  permutations checked: %llu\n",
                static_cast<unsigned long long>(count));
    verdict.check("every one of the 5040 sweep orders is cycle-free",
                  all_cycle_free && count == 5040);
  }

  std::printf(
      "\n(ii.c) Random fair schedules, n = 24, 50 trials: convergence and "
      "the Lyapunov change bound\n");
  {
    const std::size_t n = 24;
    const auto net = analysis::ThresholdNetwork::majority(graph::ring(n), true);
    const auto a = net.automaton();
    const auto bound = analysis::sequential_change_bound(net);
    std::mt19937_64 rng(12345);
    bool all_converged = true;
    std::uint64_t worst_updates = 0;
    for (int trial = 0; trial < 50; ++trial) {
      core::Configuration c(n);
      for (std::size_t i = 0; i < n; ++i) {
        c.set(i, static_cast<core::State>(rng() & 1u));
      }
      core::RandomSweepSchedule schedule(n, rng());
      const auto updates =
          core::run_schedule_to_fixed_point(a, c, schedule, 100000);
      if (!updates) {
        all_converged = false;
      } else {
        worst_updates = std::max(worst_updates, *updates);
      }
    }
    std::printf("  worst-case updates to fixed point: %llu (energy bound on "
                "state changes: %lld)\n",
                static_cast<unsigned long long>(worst_updates),
                static_cast<long long>(bound));
    verdict.check("all 50 random-schedule runs converge to a fixed point",
                  all_converged);
  }

  return verdict.finish("LEM1");
}
