// Experiment CHAOS — randomized multi-fault chaos sweep over the
// supervised execution layer (docs/robustness.md).
//
// Each seeded scenario composes a multi-knob runtime::FaultPlan (injected
// allocation failures with size floors, mid-build cancellation, checkpoint
// write failures and read corruption, forced transient attempt failures,
// thread-pool chunk exceptions and spawn failures) and runs a supervised
// workload under it:
//
//   * mode A — a segmented synchronous phase-space build that checkpoints
//     each segment into a generational CheckpointStore and resumes from
//     the newest checksum-valid generation on retry;
//   * mode B — a parallel phase-space build across a ThreadPool under the
//     Supervisor's retry/degradation ladder.
//
// THE invariant (ISSUE 7): every supervised run must end either
// bit-identical to the fault-free baseline, as a well-formed truncated
// partial (exact prefix / counts-only), or resumed-from-last-good and
// then bit-identical. Anything else — a mismatched table, a non-prefix
// partial, a terminal failure under a recoverable plan — is an invariant
// violation, printed with a one-line repro (`chaos_sweep --seed <s>`) and
// fatal to the sweep. CI runs >= 200 scenarios under ASan
// (scripts/chaos.py).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/supervised.hpp"
#include "runtime/ckpt_store.hpp"
#include "runtime/fault.hpp"
#include "runtime/supervisor.hpp"

using namespace tca;

namespace {

namespace fs = std::filesystem;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Tiny deterministic per-scenario RNG (bench code may not use <random>
/// conventions anyway; the schedule must be reproducible from the seed).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() { return state = splitmix64(state); }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  bool chance(std::uint64_t percent) { return below(100) < percent; }
};

struct Scenario {
  std::uint64_t seed = 0;
  std::size_t cells = 8;
  bool majority_rule = true;
  bool parallel_mode = false;  ///< false = mode A (segmented), true = B
  runtime::EngineRung start_rung = runtime::EngineRung::kWideSimd;
  runtime::FaultPlan plan;
};

Scenario make_scenario(std::uint64_t seed) {
  Rng rng{seed};
  Scenario s;
  s.seed = seed;
  s.cells = 8 + rng.below(4);  // 2^8 .. 2^11 states: fast but non-trivial
  s.majority_rule = rng.chance(50);
  s.parallel_mode = rng.chance(35);
  s.start_rung = static_cast<runtime::EngineRung>(
      rng.below(runtime::kEngineRungCount));
  const std::uint64_t count = std::uint64_t{1} << s.cells;

  // Compose 1-4 fault knobs. Every knob fires at most once, so the worst
  // case is bounded and the supervisor's attempt budget (8) always covers
  // the recoverable-failure count — a terminal outcome is therefore
  // always a bug, never bad luck.
  if (s.parallel_mode) {
    if (rng.chance(60)) s.plan.chunk_exception_at = 1 + rng.below(3);
    if (rng.chance(40)) s.plan.fail_thread_spawn = true;
    if (rng.chance(40)) s.plan.retry_transient_at = 1 + rng.below(2);
    if (rng.chance(25)) s.plan.cancel_at_visit = 1 + rng.below(count);
  } else {
    if (rng.chance(45)) {
      s.plan.alloc_failure_at = 1 + rng.below(2);
      // Sometimes target only big allocations: the segment table reserve
      // qualifies, small bookkeeping allocations do not.
      if (rng.chance(50)) s.plan.alloc_min_bytes = 1024;
    }
    if (rng.chance(45)) s.plan.checkpoint_write_at = 1 + rng.below(3);
    if (rng.chance(45)) s.plan.checkpoint_read_corrupt_at = 1;
    if (rng.chance(45)) s.plan.retry_transient_at = 1 + rng.below(2);
    if (rng.chance(30)) s.plan.cancel_at_visit = 1 + rng.below(2 * count);
  }
  return s;
}

core::Automaton make_ring(const Scenario& s) {
  return core::Automaton::line(s.cells, 1, core::Boundary::kRing,
                               s.majority_rule ? rules::majority()
                                               : rules::parity(),
                               core::Memory::kWith);
}

runtime::SupervisorOptions supervisor_options(const Scenario& s) {
  runtime::SupervisorOptions options;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.retry.max_backoff = std::chrono::milliseconds(2);
  options.retry.seed = s.seed;
  options.start_rung = s.start_rung;
  return options;
}

const char* describe_plan(const Scenario& s, std::string& storage) {
  storage.clear();
  const auto knob = [&storage](const char* name, std::uint64_t v) {
    if (v == 0) return;
    if (!storage.empty()) storage += ",";
    storage += name;
    storage += "=";
    storage += std::to_string(v);
  };
  knob("alloc", s.plan.alloc_failure_at);
  knob("alloc_min", s.plan.alloc_min_bytes);
  knob("chunk", s.plan.chunk_exception_at);
  knob("cancel", s.plan.cancel_at_visit);
  knob("ckpt_w", s.plan.checkpoint_write_at);
  knob("ckpt_r", s.plan.checkpoint_read_corrupt_at);
  knob("retry", s.plan.retry_transient_at);
  knob("spawn", s.plan.fail_thread_spawn ? 1 : 0);
  if (storage.empty()) storage = "none";
  return storage.c_str();
}

/// How one scenario resolved against the invariant.
enum class Leg { kIdentical, kTruncated, kResumed, kViolation };

struct ScenarioOutcome {
  Leg leg = Leg::kViolation;
  std::string note;
};

/// Mode A: build the successor table in 4 checkpointed segments under the
/// Supervisor; a retried attempt resumes from the newest checksum-valid
/// generation. Segment payload: "states=<k>\n" + raw table-prefix bytes.
ScenarioOutcome run_segmented(const Scenario& s, const core::Automaton& a,
                              const std::vector<phasespace::StateCode>& base,
                              const fs::path& workdir) {
  const std::uint64_t count = std::uint64_t{1} << s.cells;
  const std::uint64_t segment = count / 4;
  runtime::CheckpointStore store((workdir / "seg.ckpt").string(), {3});

  std::vector<phasespace::StateCode> table(count, 0);
  std::uint64_t built = 0;       // states valid in `table` (final attempt)
  bool resumed = false;          // any attempt started from a checkpoint

  runtime::Supervisor supervisor(supervisor_options(s));
  const auto report = supervisor.run(
      "chaos.segmented", [&](runtime::AttemptContext& ctx) {
        built = 0;
        if (const auto recovery = store.load_latest()) {
          const std::string& payload = recovery->checkpoint.payload;
          const auto nl = payload.find('\n');
          if (nl != std::string::npos &&
              payload.rfind("states=", 0) == 0) {
            const std::uint64_t done = std::strtoull(
                payload.substr(7, nl - 7).c_str(), nullptr, 10);
            const std::size_t bytes = payload.size() - nl - 1;
            if (done <= count && bytes == done * sizeof(table[0])) {
              std::memcpy(table.data(), payload.data() + nl + 1, bytes);
              built = done;
              if (ctx.attempt > 1) resumed = true;
            }
          }
        }
        phasespace::BatchCodeStepper stepper(a, ctx.rung);
        while (built < count) {
          const std::uint64_t target =
              std::min(count, (built / segment + 1) * segment);
          while (built < target) {
            const auto block = static_cast<std::size_t>(
                std::min<std::uint64_t>(256, target - built));
            if (ctx.control.note_states(block) !=
                runtime::StopReason::kNone) {
              return runtime::AttemptOutcome::kTruncated;
            }
            runtime::fault::check_alloc(block * sizeof(table[0]));
            stepper.step_range(built, block, table.data() + built);
            built += block;
          }
          runtime::Checkpoint ck;
          ck.payload = "states=" + std::to_string(built) + "\n";
          ck.payload.append(
              reinterpret_cast<const char*>(table.data()),
              built * sizeof(table[0]));
          store.save(ck);  // kIo / bad_alloc here is transient: retried
        }
        return runtime::AttemptOutcome::kCompleted;
      });

  ScenarioOutcome out;
  if (report.state == runtime::SupervisedState::kCompleted) {
    if (table != base) {
      out.note = "completed but table differs from fault-free baseline";
      return out;
    }
    out.leg = resumed ? Leg::kResumed : Leg::kIdentical;
    return out;
  }
  if (report.state == runtime::SupervisedState::kTruncated) {
    if (built > count ||
        !std::equal(table.begin(),
                    table.begin() + static_cast<std::ptrdiff_t>(built),
                    base.begin())) {
      out.note = "truncated result is not an exact baseline prefix";
      return out;
    }
    out.leg = Leg::kTruncated;
    return out;
  }
  out.note = "terminal failure under a recoverable plan: " +
             std::string(error_code_name(report.last_error)) + " (" +
             report.last_error_what + ")";
  return out;
}

/// Mode B: parallel build across a ThreadPool under the Supervisor. Chunk
/// exceptions and spawn failures are the faults; a truncated parallel
/// build is counts-only by contract.
ScenarioOutcome run_parallel(const Scenario& s, const core::Automaton& a,
                             const std::vector<phasespace::StateCode>& base) {
  const std::uint64_t count = std::uint64_t{1} << s.cells;
  std::vector<phasespace::StateCode> table;
  std::uint64_t states_built = 0;

  runtime::Supervisor supervisor(supervisor_options(s));
  const auto report = supervisor.run(
      "chaos.parallel", [&](runtime::AttemptContext& ctx) {
        core::ThreadPool pool(3);
        auto build = phasespace::FunctionalGraph::build_synchronous_parallel(
            a, pool, ctx.control);
        states_built = build.states_built;
        if (!build.complete()) return runtime::AttemptOutcome::kTruncated;
        table = build.graph->successors();
        return runtime::AttemptOutcome::kCompleted;
      });

  ScenarioOutcome out;
  if (report.state == runtime::SupervisedState::kCompleted) {
    if (table != base) {
      out.note = "completed but table differs from fault-free baseline";
      return out;
    }
    out.leg = report.attempts > 1 ? Leg::kResumed : Leg::kIdentical;
    return out;
  }
  if (report.state == runtime::SupervisedState::kTruncated) {
    if (states_built > count) {
      out.note = "truncated parallel build overcounts states";
      return out;
    }
    out.leg = Leg::kTruncated;
    return out;
  }
  out.note = "terminal failure under a recoverable plan: " +
             std::string(error_code_name(report.last_error)) + " (" +
             report.last_error_what + ")";
  return out;
}

ScenarioOutcome run_scenario(const Scenario& s, bool verbose) {
  const auto a = make_ring(s);
  // Fault-free baseline FIRST, before any plan is installed.
  const auto baseline = phasespace::FunctionalGraph::synchronous(a);
  const auto& base = baseline.successors();

  const fs::path workdir =
      fs::temp_directory_path() /
      ("tca_chaos_" + std::to_string(s.seed & 0xFFFFFFFFull));
  std::error_code ec;
  fs::remove_all(workdir, ec);
  fs::create_directories(workdir, ec);

  ScenarioOutcome out;
  {
    runtime::ScopedFaultPlan plan(s.plan);
    out = s.parallel_mode ? run_parallel(s, a, base)
                          : run_segmented(s, a, base, workdir);
  }
  fs::remove_all(workdir, ec);

  if (verbose) {
    std::string knobs;
    static const char* kLegNames[] = {"bit-identical", "truncated",
                                      "resumed-from-last-good",
                                      "VIOLATION"};
    std::printf("seed=%llu n=%zu rule=%s mode=%s rung=%s plan={%s} -> %s%s%s\n",
                static_cast<unsigned long long>(s.seed), s.cells,
                s.majority_rule ? "majority" : "parity",
                s.parallel_mode ? "parallel" : "segmented",
                runtime::rung_name(s.start_rung), describe_plan(s, knobs),
                kLegNames[static_cast<int>(out.leg)],
                out.note.empty() ? "" : ": ", out.note.c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 200;
  std::uint64_t base_seed = 0xC4A05;
  bool single = false;
  std::uint64_t single_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--base-seed" && i + 1 < argc) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      single = true;
      single_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds <n>] [--base-seed <s>] [--seed <s>]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::banner("CHAOS",
                "Chaos sweep: randomized multi-fault plans over supervised "
                "runs; every outcome must be bit-identical, well-formed "
                "truncated, or resumed-from-last-good.");

  static obs::Counter& c_scen = obs::counter("chaos.scenarios");
  static obs::Counter& c_ident = obs::counter("chaos.identical");
  static obs::Counter& c_trunc = obs::counter("chaos.truncated");
  static obs::Counter& c_res = obs::counter("chaos.resumed");
  static obs::Counter& c_viol = obs::counter("chaos.violations");

  std::vector<std::uint64_t> failing;
  const auto drive = [&](std::uint64_t seed, bool verbose) {
    const Scenario s = make_scenario(seed);
    const ScenarioOutcome out = run_scenario(s, verbose);
    c_scen.add();
    switch (out.leg) {
      case Leg::kIdentical: c_ident.add(); break;
      case Leg::kTruncated: c_trunc.add(); break;
      case Leg::kResumed: c_res.add(); break;
      case Leg::kViolation:
        c_viol.add();
        failing.push_back(seed);
        std::printf("CHAOS-REPRO: %s --seed %llu\n", argv[0],
                    static_cast<unsigned long long>(seed));
        std::printf("  violation: %s\n", out.note.c_str());
        break;
    }
  };

  if (single) {
    drive(single_seed, /*verbose=*/true);
  } else {
    for (std::uint64_t i = 0; i < seeds; ++i) {
      drive(splitmix64(base_seed + i), /*verbose=*/false);
    }
  }

  bench::Verdict verdict;
  verdict.set_argv(argc, argv);
  verdict.set_seed(base_seed);
  const std::uint64_t ran = single ? 1 : seeds;
  verdict.check("every-scenario-classified", true,
                std::to_string(ran) + " scenarios");
  verdict.check("zero-invariant-violations", failing.empty(),
                failing.empty()
                    ? "bit-identical/truncated/resumed only"
                    : std::to_string(failing.size()) + " violation(s)");
  return verdict.finish("CHAOS");
}
