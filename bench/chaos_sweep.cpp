// Experiment CHAOS — randomized multi-fault chaos sweep over the
// supervised execution layer (docs/robustness.md).
//
// Each seeded scenario composes a multi-knob runtime::FaultPlan (injected
// allocation failures with size floors, mid-build cancellation, checkpoint
// write failures and read corruption, forced transient attempt failures,
// thread-pool chunk exceptions and spawn failures) and runs a supervised
// workload under it:
//
//   * mode A — a segmented synchronous phase-space build that checkpoints
//     each segment into a generational CheckpointStore and resumes from
//     the newest checksum-valid generation on retry;
//   * mode B — a parallel phase-space build across a ThreadPool under the
//     Supervisor's retry/degradation ladder;
//   * mode C — a DISK-BACKED sharded build killed mid-spill (budget trip
//     between extents), with one spilled byte deliberately corrupted
//     before a resume=true rebuild: the digest revalidation must drop
//     exactly the poisoned extent and the rebuild must end bit-identical.
//
// THE invariant (ISSUE 7): every supervised run must end either
// bit-identical to the fault-free baseline, as a well-formed truncated
// partial (exact prefix / counts-only), or resumed-from-last-good and
// then bit-identical. Anything else — a mismatched table, a non-prefix
// partial, a terminal failure under a recoverable plan — is an invariant
// violation, printed with a one-line repro (`chaos_sweep --seed <s>`) and
// fatal to the sweep. CI runs >= 200 scenarios under ASan
// (scripts/chaos.py).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/sharded_build.hpp"
#include "phasespace/successor_store.hpp"
#include "phasespace/supervised.hpp"
#include "runtime/ckpt_store.hpp"
#include "runtime/fault.hpp"
#include "runtime/supervisor.hpp"

using namespace tca;

namespace {

namespace fs = std::filesystem;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Tiny deterministic per-scenario RNG (bench code may not use <random>
/// conventions anyway; the schedule must be reproducible from the seed).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() { return state = splitmix64(state); }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  bool chance(std::uint64_t percent) { return below(100) < percent; }
};

enum class Mode { kSegmented, kParallel, kDiskSharded };

struct Scenario {
  std::uint64_t seed = 0;
  std::size_t cells = 8;
  bool majority_rule = true;
  Mode mode = Mode::kSegmented;
  runtime::EngineRung start_rung = runtime::EngineRung::kWideSimd;
  runtime::FaultPlan plan;
  std::uint64_t corrupt_salt = 0;  ///< mode C: picks the poisoned byte
};

Scenario make_scenario(std::uint64_t seed) {
  Rng rng{seed};
  Scenario s;
  s.seed = seed;
  s.cells = 8 + rng.below(4);  // 2^8 .. 2^11 states: fast but non-trivial
  s.majority_rule = rng.chance(50);
  const std::uint64_t mode_draw = rng.below(100);
  s.mode = mode_draw < 25   ? Mode::kDiskSharded
           : mode_draw < 60 ? Mode::kParallel
                            : Mode::kSegmented;
  s.start_rung = static_cast<runtime::EngineRung>(
      rng.below(runtime::kEngineRungCount));
  const std::uint64_t count = std::uint64_t{1} << s.cells;

  // Compose 1-4 fault knobs. Every knob fires at most once, so the worst
  // case is bounded and the supervisor's attempt budget (8) always covers
  // the recoverable-failure count — a terminal outcome is therefore
  // always a bug, never bad luck.
  if (s.mode == Mode::kDiskSharded) {
    // The kill-mid-spill fault: cancel somewhere inside the build so some
    // extents are on disk and some are not; plus the usual transients.
    if (rng.chance(75)) s.plan.cancel_at_visit = 1 + rng.below(count);
    if (rng.chance(35)) s.plan.retry_transient_at = 1 + rng.below(2);
    if (rng.chance(25)) s.plan.fail_thread_spawn = true;
    s.corrupt_salt = rng.next();
    return s;
  }
  if (s.mode == Mode::kParallel) {
    if (rng.chance(60)) s.plan.chunk_exception_at = 1 + rng.below(3);
    if (rng.chance(40)) s.plan.fail_thread_spawn = true;
    if (rng.chance(40)) s.plan.retry_transient_at = 1 + rng.below(2);
    if (rng.chance(25)) s.plan.cancel_at_visit = 1 + rng.below(count);
  } else {
    if (rng.chance(45)) {
      s.plan.alloc_failure_at = 1 + rng.below(2);
      // Sometimes target only big allocations: the segment table reserve
      // qualifies, small bookkeeping allocations do not.
      if (rng.chance(50)) s.plan.alloc_min_bytes = 1024;
    }
    if (rng.chance(45)) s.plan.checkpoint_write_at = 1 + rng.below(3);
    if (rng.chance(45)) s.plan.checkpoint_read_corrupt_at = 1;
    if (rng.chance(45)) s.plan.retry_transient_at = 1 + rng.below(2);
    if (rng.chance(30)) s.plan.cancel_at_visit = 1 + rng.below(2 * count);
  }
  return s;
}

core::Automaton make_ring(const Scenario& s) {
  return core::Automaton::line(s.cells, 1, core::Boundary::kRing,
                               s.majority_rule ? rules::majority()
                                               : rules::parity(),
                               core::Memory::kWith);
}

runtime::SupervisorOptions supervisor_options(const Scenario& s) {
  runtime::SupervisorOptions options;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.retry.max_backoff = std::chrono::milliseconds(2);
  options.retry.seed = s.seed;
  options.start_rung = s.start_rung;
  return options;
}

const char* describe_plan(const Scenario& s, std::string& storage) {
  storage.clear();
  const auto knob = [&storage](const char* name, std::uint64_t v) {
    if (v == 0) return;
    if (!storage.empty()) storage += ",";
    storage += name;
    storage += "=";
    storage += std::to_string(v);
  };
  knob("alloc", s.plan.alloc_failure_at);
  knob("alloc_min", s.plan.alloc_min_bytes);
  knob("chunk", s.plan.chunk_exception_at);
  knob("cancel", s.plan.cancel_at_visit);
  knob("ckpt_w", s.plan.checkpoint_write_at);
  knob("ckpt_r", s.plan.checkpoint_read_corrupt_at);
  knob("retry", s.plan.retry_transient_at);
  knob("spawn", s.plan.fail_thread_spawn ? 1 : 0);
  if (storage.empty()) storage = "none";
  return storage.c_str();
}

/// How one scenario resolved against the invariant.
enum class Leg { kIdentical, kTruncated, kResumed, kViolation };

struct ScenarioOutcome {
  Leg leg = Leg::kViolation;
  std::string note;
};

/// Mode A: build the successor table in 4 checkpointed segments under the
/// Supervisor; a retried attempt resumes from the newest checksum-valid
/// generation. Segment payload: "states=<k>\n" + raw table-prefix bytes.
ScenarioOutcome run_segmented(const Scenario& s, const core::Automaton& a,
                              const std::vector<phasespace::StateCode>& base,
                              const fs::path& workdir) {
  const std::uint64_t count = std::uint64_t{1} << s.cells;
  const std::uint64_t segment = count / 4;
  runtime::CheckpointStore store((workdir / "seg.ckpt").string(), {3});

  std::vector<phasespace::StateCode> table(count, 0);
  std::uint64_t built = 0;       // states valid in `table` (final attempt)
  bool resumed = false;          // any attempt started from a checkpoint

  runtime::Supervisor supervisor(supervisor_options(s));
  const auto report = supervisor.run(
      "chaos.segmented", [&](runtime::AttemptContext& ctx) {
        built = 0;
        if (const auto recovery = store.load_latest()) {
          const std::string& payload = recovery->checkpoint.payload;
          const auto nl = payload.find('\n');
          if (nl != std::string::npos &&
              payload.rfind("states=", 0) == 0) {
            const std::uint64_t done = std::strtoull(
                payload.substr(7, nl - 7).c_str(), nullptr, 10);
            const std::size_t bytes = payload.size() - nl - 1;
            if (done <= count && bytes == done * sizeof(table[0])) {
              std::memcpy(table.data(), payload.data() + nl + 1, bytes);
              built = done;
              if (ctx.attempt > 1) resumed = true;
            }
          }
        }
        phasespace::BatchCodeStepper stepper(a, ctx.rung);
        while (built < count) {
          const std::uint64_t target =
              std::min(count, (built / segment + 1) * segment);
          while (built < target) {
            const auto block = static_cast<std::size_t>(
                std::min<std::uint64_t>(256, target - built));
            if (ctx.control.note_states(block) !=
                runtime::StopReason::kNone) {
              return runtime::AttemptOutcome::kTruncated;
            }
            runtime::fault::check_alloc(block * sizeof(table[0]));
            stepper.step_range(built, block, table.data() + built);
            built += block;
          }
          runtime::Checkpoint ck;
          ck.payload = "states=" + std::to_string(built) + "\n";
          ck.payload.append(
              reinterpret_cast<const char*>(table.data()),
              built * sizeof(table[0]));
          store.save(ck);  // kIo / bad_alloc here is transient: retried
        }
        return runtime::AttemptOutcome::kCompleted;
      });

  ScenarioOutcome out;
  if (report.state == runtime::SupervisedState::kCompleted) {
    if (table != base) {
      out.note = "completed but table differs from fault-free baseline";
      return out;
    }
    out.leg = resumed ? Leg::kResumed : Leg::kIdentical;
    return out;
  }
  if (report.state == runtime::SupervisedState::kTruncated) {
    if (built > count ||
        !std::equal(table.begin(),
                    table.begin() + static_cast<std::ptrdiff_t>(built),
                    base.begin())) {
      out.note = "truncated result is not an exact baseline prefix";
      return out;
    }
    out.leg = Leg::kTruncated;
    return out;
  }
  out.note = "terminal failure under a recoverable plan: " +
             std::string(error_code_name(report.last_error)) + " (" +
             report.last_error_what + ")";
  return out;
}

/// Mode B: parallel build across a ThreadPool under the Supervisor. Chunk
/// exceptions and spawn failures are the faults; a truncated parallel
/// build is counts-only by contract.
ScenarioOutcome run_parallel(const Scenario& s, const core::Automaton& a,
                             const std::vector<phasespace::StateCode>& base) {
  const std::uint64_t count = std::uint64_t{1} << s.cells;
  std::vector<phasespace::StateCode> table;
  std::uint64_t states_built = 0;

  runtime::Supervisor supervisor(supervisor_options(s));
  const auto report = supervisor.run(
      "chaos.parallel", [&](runtime::AttemptContext& ctx) {
        core::ThreadPool pool(3);
        auto build = phasespace::FunctionalGraph::build_synchronous_parallel(
            a, pool, ctx.control);
        states_built = build.states_built;
        if (!build.complete()) return runtime::AttemptOutcome::kTruncated;
        table = build.graph->successors();
        return runtime::AttemptOutcome::kCompleted;
      });

  ScenarioOutcome out;
  if (report.state == runtime::SupervisedState::kCompleted) {
    if (table != base) {
      out.note = "completed but table differs from fault-free baseline";
      return out;
    }
    out.leg = report.attempts > 1 ? Leg::kResumed : Leg::kIdentical;
    return out;
  }
  if (report.state == runtime::SupervisedState::kTruncated) {
    if (states_built > count) {
      out.note = "truncated parallel build overcounts states";
      return out;
    }
    out.leg = Leg::kTruncated;
    return out;
  }
  out.note = "terminal failure under a recoverable plan: " +
             std::string(error_code_name(report.last_error)) + " (" +
             report.last_error_what + ")";
  return out;
}

/// Mode C: a disk-backed sharded build is killed mid-spill (budget trip
/// between extents — the store holds only whole digest-recorded shards),
/// ONE byte of the spilled data is flipped, and a resume=true supervised
/// rebuild runs fault-free. Invariants: the truncated pass is counts-only
/// with a finalized manifest; resume drops the poisoned extent instead of
/// trusting it; the rebuild is bit-identical to the baseline.
ScenarioOutcome run_disk_sharded(const Scenario& s, const core::Automaton& a,
                                 const std::vector<phasespace::StateCode>& base,
                                 const fs::path& workdir) {
  const std::uint64_t count = std::uint64_t{1} << s.cells;
  phasespace::ShardedBuildOptions options;
  options.store = phasespace::StoreKind::kDisk;
  options.disk_dir = (workdir / "store").string();
  options.shard_states = phasespace::kPutAlign;
  options.workers = 2;
  options.rung = s.start_rung;

  ScenarioOutcome out;
  bool truncated_pass = false;

  // Pass 1 runs under the installed fault plan (the caller scopes it).
  try {
    runtime::RunControl control{runtime::RunBudget{}};
    const phasespace::ShardedBuild first =
        phasespace::build_synchronous_sharded(a, options, control);
    if (first.complete()) {
      std::vector<phasespace::StateCode> table(count);
      first.store->read_range(0, count, table.data());
      if (table != base) {
        out.note = "mode C pass 1 completed but differs from baseline";
        return out;
      }
    } else {
      truncated_pass = true;
      if (first.build.states_built > count) {
        out.note = "mode C truncated pass overcounts states";
        return out;
      }
    }
  } catch (const tca::Error&) {
    // An injected transient surfaced as an exception; the resume pass
    // below must still recover everything from the manifest.
    truncated_pass = true;
  }

  // Poison one spilled byte (bit rot / torn pwrite survivor). The resume
  // digest check must refuse the extent rather than serve bad data.
  const fs::path data = workdir / "store" / "succ.dat";
  std::error_code ec;
  const std::uint64_t data_size =
      fs::exists(data, ec) ? fs::file_size(data, ec) : 0;
  if (data_size > 0) {
    std::fstream f(data, std::ios::in | std::ios::out | std::ios::binary);
    const std::uint64_t byte = s.corrupt_salt % data_size;
    f.seekg(static_cast<std::streamoff>(byte));
    char c = 0;
    f.read(&c, 1);
    f.seekp(static_cast<std::streamoff>(byte));
    c = static_cast<char>(c ^ 0x20);
    f.write(&c, 1);
  }

  // Pass 2: resume rebuild under the Supervisor. Fault knobs that did
  // not fire in pass 1 (a late cancel, a second transient) may fire
  // here; a cancel makes THIS pass a well-formed truncation, which is a
  // legitimate leg, not a violation.
  options.resume = true;
  const phasespace::SupervisedShardedBuild second =
      phasespace::supervised_synchronous_sharded(a, options,
                                                 supervisor_options(s));
  if (second.report.state == runtime::SupervisedState::kTruncated) {
    if (second.build.build.states_built > count) {
      out.note = "mode C truncated resume pass overcounts states";
      return out;
    }
    out.leg = Leg::kTruncated;
    return out;
  }
  if (second.report.state != runtime::SupervisedState::kCompleted ||
      !second.build.complete()) {
    out.note = "mode C resume rebuild did not complete: " +
               std::string(error_code_name(second.report.last_error)) + " (" +
               second.report.last_error_what + ")";
    return out;
  }
  std::vector<phasespace::StateCode> table(count);
  second.build.store->read_range(0, count, table.data());
  if (table != base) {
    out.note = "mode C resumed table differs from fault-free baseline";
    return out;
  }
  out.leg = truncated_pass || second.build.stats.resumed_states > 0
                ? Leg::kResumed
                : Leg::kIdentical;
  return out;
}

ScenarioOutcome run_scenario(const Scenario& s, bool verbose) {
  const auto a = make_ring(s);
  // Fault-free baseline FIRST, before any plan is installed.
  const auto baseline = phasespace::FunctionalGraph::synchronous(a);
  const auto& base = baseline.successors();

  const fs::path workdir =
      fs::temp_directory_path() /
      ("tca_chaos_" + std::to_string(s.seed & 0xFFFFFFFFull));
  std::error_code ec;
  fs::remove_all(workdir, ec);
  fs::create_directories(workdir, ec);

  ScenarioOutcome out;
  {
    runtime::ScopedFaultPlan plan(s.plan);
    switch (s.mode) {
      case Mode::kSegmented: out = run_segmented(s, a, base, workdir); break;
      case Mode::kParallel: out = run_parallel(s, a, base); break;
      case Mode::kDiskSharded:
        out = run_disk_sharded(s, a, base, workdir);
        break;
    }
  }
  fs::remove_all(workdir, ec);

  if (verbose) {
    std::string knobs;
    static const char* kLegNames[] = {"bit-identical", "truncated",
                                      "resumed-from-last-good",
                                      "VIOLATION"};
    static const char* kModeNames[] = {"segmented", "parallel",
                                       "disk-sharded"};
    std::printf("seed=%llu n=%zu rule=%s mode=%s rung=%s plan={%s} -> %s%s%s\n",
                static_cast<unsigned long long>(s.seed), s.cells,
                s.majority_rule ? "majority" : "parity",
                kModeNames[static_cast<int>(s.mode)],
                runtime::rung_name(s.start_rung), describe_plan(s, knobs),
                kLegNames[static_cast<int>(out.leg)],
                out.note.empty() ? "" : ": ", out.note.c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 200;
  std::uint64_t base_seed = 0xC4A05;
  bool single = false;
  std::uint64_t single_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--base-seed" && i + 1 < argc) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      single = true;
      single_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds <n>] [--base-seed <s>] [--seed <s>]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::banner("CHAOS",
                "Chaos sweep: randomized multi-fault plans over supervised "
                "runs; every outcome must be bit-identical, well-formed "
                "truncated, or resumed-from-last-good.");

  static obs::Counter& c_scen = obs::counter("chaos.scenarios");
  static obs::Counter& c_ident = obs::counter("chaos.identical");
  static obs::Counter& c_trunc = obs::counter("chaos.truncated");
  static obs::Counter& c_res = obs::counter("chaos.resumed");
  static obs::Counter& c_viol = obs::counter("chaos.violations");

  std::vector<std::uint64_t> failing;
  const auto drive = [&](std::uint64_t seed, bool verbose) {
    const Scenario s = make_scenario(seed);
    const ScenarioOutcome out = run_scenario(s, verbose);
    c_scen.add();
    switch (out.leg) {
      case Leg::kIdentical: c_ident.add(); break;
      case Leg::kTruncated: c_trunc.add(); break;
      case Leg::kResumed: c_res.add(); break;
      case Leg::kViolation:
        c_viol.add();
        failing.push_back(seed);
        std::printf("CHAOS-REPRO: %s --seed %llu\n", argv[0],
                    static_cast<unsigned long long>(seed));
        std::printf("  violation: %s\n", out.note.c_str());
        break;
    }
  };

  if (single) {
    drive(single_seed, /*verbose=*/true);
  } else {
    for (std::uint64_t i = 0; i < seeds; ++i) {
      drive(splitmix64(base_seed + i), /*verbose=*/false);
    }
  }

  bench::Verdict verdict;
  verdict.set_argv(argc, argv);
  verdict.set_seed(base_seed);
  const std::uint64_t ran = single ? 1 : seeds;
  verdict.check("every-scenario-classified", true,
                std::to_string(ran) + " scenarios");
  verdict.check("zero-invariant-violations", failing.empty(),
                failing.empty()
                    ? "bit-identical/truncated/resumed only"
                    : std::to_string(failing.size()) + " violation(s)");
  return verdict.finish("CHAOS");
}
