// Experiment COR1 — Corollary 1: for every radius r >= 1 there is a
// monotone symmetric (threshold) CA with temporal two-cycles: the
// (0^r 1^r)^* block configuration blinks under radius-r MAJORITY; for odd
// r the single-cell alternating configuration (01)^* is a SECOND distinct
// two-cycle.

#include <cstdio>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/synchronous.hpp"
#include "core/trajectory.hpp"

using namespace tca;

int main() {
  bench::banner(
      "COR1",
      "Corollary 1: for all r >= 1, radius-r MAJORITY CA have a two-cycle "
      "(0^r 1^r)^*; odd r gives at least two distinct two-cycles.");

  bench::Verdict verdict;

  std::printf("\n%4s %6s %26s %8s %25s\n", "r", "n", "block config", "period",
              "(01)^* behaviour");
  for (std::uint32_t r = 1; r <= 6; ++r) {
    const std::size_t n = 4 * r >= 2 * r + 2 ? 4 * r : 2 * r + 2;
    const auto a = core::Automaton::line(n, r, core::Boundary::kRing,
                                         rules::majority(), core::Memory::kWith);
    // Block two-cycle.
    core::Configuration block(n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((i / r) % 2 == 1) block.set(i, 1);
    }
    const auto block_orbit = core::find_orbit_synchronous(a, block, 16);
    const bool block_ok =
        block_orbit && block_orbit->period == 2 && block_orbit->transient == 0;
    verdict.check("r=" + std::to_string(r) + ": block config is a two-cycle",
                  block_ok);

    // Alternating configuration: two-cycle iff r odd, fixed point iff even.
    core::Configuration alt(n);
    for (std::size_t i = 1; i < n; i += 2) alt.set(i, 1);
    const auto alt_orbit = core::find_orbit_synchronous(a, alt, 16);
    const char* alt_desc = "?";
    bool alt_ok = false;
    if (alt_orbit && alt_orbit->transient == 0) {
      if (r % 2 == 1 && alt_orbit->period == 2) {
        // For r >= 3 this is a cycle genuinely distinct from the block one
        // (for r = 1 the two patterns coincide).
        const bool distinct =
            r == 1 || (!(alt == block) &&
                       !(alt == core::step_synchronous(a, block)));
        alt_desc = r == 1 ? "two-cycle (same as block)"
                          : "two-cycle (2nd distinct cycle)";
        alt_ok = distinct;
      } else if (r % 2 == 0 && alt_orbit->period == 1) {
        alt_desc = "fixed point";
        alt_ok = true;
      }
    }
    verdict.check("r=" + std::to_string(r) +
                      (r % 2 == 1 ? (r == 1 ? ": (01)^* is a two-cycle"
                                            : ": (01)^* is a distinct second "
                                              "two-cycle")
                                  : ": (01)^* is a fixed point (even r)"),
                  alt_ok);
    std::printf("%4u %6zu %26s %8llu %25s\n", r, n,
                n <= 26 ? block.to_string().c_str() : "(0^r 1^r)*",
                block_orbit
                    ? static_cast<unsigned long long>(block_orbit->period)
                    : 0ULL,
                alt_desc);
  }

  std::printf("\nNote: the two cycles are distinct whenever both exist "
              "(different configurations), matching the paper's 'at least "
              "two distinct two-cycles' for odd r.\n");
  return verdict.finish("COR1");
}
