// Experiment OUTCOME — beyond the paper: the sequential nondeterminism is
// not just "converges somewhere"; WHERE it converges depends on the
// schedule. From the parallel blinker, different update disciplines
// scatter over many different fixed points — measuring the outcome
// distribution quantifies how much choice the scheduler actually has
// (the flip side of the choice-digraph picture).

#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <set>

#include "analysis/stats.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/ctl.hpp"

using namespace tca;

int main() {
  bench::banner(
      "OUTCOME",
      "Schedule choice selects the limit: from the alternating state, "
      "random sequential schedules reach MANY distinct fixed points; the "
      "reachable-fixed-point set is computed exactly from the choice "
      "digraph and the sampled outcomes stay inside it.");

  bench::Verdict verdict;
  const std::size_t n = 14;
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  phasespace::StateCode blinker = 0;
  for (std::size_t i = 0; i < n; i += 2) blinker |= std::uint64_t{1} << i;

  // Ground truth: fixed points reachable from the blinker, from the
  // choice digraph.
  const phasespace::ChoiceDigraph g(a);
  const auto reach = phasespace::reachable_from(g, blinker);
  std::set<phasespace::StateCode> reachable_fps;
  for (phasespace::StateCode s = 0; s < g.num_states(); ++s) {
    if (!reach[s]) continue;
    if (core::is_fixed_point_sequential(
            a, core::Configuration::from_bits(s, n))) {
      reachable_fps.insert(s);
    }
  }
  std::printf("\nchoice digraph: %zu distinct fixed points reachable from "
              "the blinker (of 2^%zu = %llu states)\n",
              reachable_fps.size(), n,
              static_cast<unsigned long long>(g.num_states()));
  verdict.check("multiple fixed points are reachable",
                reachable_fps.size() > 1);

  // Sampled outcome distributions per schedule family.
  struct Family {
    const char* name;
    bool deterministic;
  };
  const int trials = 2000;
  for (const Family family : {Family{"cyclic identity", true},
                              Family{"random sweeps", false},
                              Family{"iid uniform", false}}) {
    std::mt19937_64 rng(99);
    std::map<phasespace::StateCode, int> outcomes;
    analysis::Accumulator ones;
    bool all_reachable_fps = true;
    for (int trial = 0; trial < trials; ++trial) {
      auto c = core::Configuration::from_bits(blinker, n);
      std::unique_ptr<core::Schedule> schedule;
      if (family.deterministic) {
        schedule = std::make_unique<core::CyclicSchedule>(
            core::identity_order(n));
      } else if (std::string(family.name) == "random sweeps") {
        schedule = std::make_unique<core::RandomSweepSchedule>(n, rng());
      } else {
        schedule = std::make_unique<core::RandomUniformSchedule>(n, rng());
      }
      const auto steps =
          core::run_schedule_to_fixed_point(a, c, *schedule, 100000);
      if (!steps) {
        all_reachable_fps = false;
        continue;
      }
      const auto code = c.to_bits();
      ++outcomes[code];
      ones.add(static_cast<double>(c.popcount()));
      if (!reachable_fps.contains(code)) all_reachable_fps = false;
    }
    std::printf("%-16s -> %4zu distinct fixed points over %d runs "
                "(mean ones %.2f)\n",
                family.name, outcomes.size(), trials, ones.mean());
    verdict.check(std::string(family.name) +
                      ": every outcome is a digraph-reachable fixed point",
                  all_reachable_fps);
    if (family.deterministic) {
      verdict.check("deterministic schedule gives exactly one outcome",
                    outcomes.size() == 1);
    } else {
      verdict.check(std::string(family.name) +
                        ": nondeterminism spreads over many fixed points",
                    outcomes.size() > 5);
    }
  }

  std::printf("\nCTL cross-check: EF(reachable FP set) covers the blinker, "
              "AF does not (laziness can stall):\n");
  {
    const auto fps_set = phasespace::make_set(g, [&](phasespace::StateCode s) {
      return core::is_fixed_point_sequential(
          a, core::Configuration::from_bits(s, n));
    });
    const auto possible = phasespace::ef(g, fps_set);
    const auto inevitable = phasespace::af(g, fps_set);
    verdict.check("EF(fixed points) contains the blinker",
                  possible[blinker] != 0);
    verdict.check("AF(fixed points) does NOT contain the blinker",
                  inevitable[blinker] == 0);
  }

  return verdict.finish("OUTCOME");
}
