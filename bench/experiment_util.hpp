#pragma once
// Shared output helpers for the experiment harnesses: consistent banners,
// table rows, and a PASS/FAIL verdict accumulator so every binary ends with
// an unambiguous machine-greppable summary line — plus the fault-tolerant
// ExperimentDriver (docs/robustness.md): per-experiment watchdog +
// exception isolation + versioned checkpoint/resume, so a sweep killed
// halfway through restarts from the last completed experiment and still
// produces bit-identical final verdicts.
//
// Both Verdict and ExperimentDriver end a run by writing a RunManifest
// (obs/manifest.hpp) into results/ — the machine-readable artifact that
// scripts/check_bench.py diffs; the human-readable stdout summary is
// unchanged.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "runtime/budget.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/ckpt_store.hpp"
#include "runtime/error.hpp"

namespace tca::bench {

/// Prints the experiment banner (id + the paper claim being regenerated).
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("=============================================================\n");
  std::printf("Experiment %s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("=============================================================\n");
}

/// Accumulates named checks and prints the final verdict. finish() also
/// writes `<results_dir>/<id>.manifest.json` recording every check, so the
/// run leaves a machine-readable artifact alongside the stdout summary.
class Verdict {
 public:
  void check(const std::string& name, bool ok) {
    check(name, ok, "");
  }

  void check(const std::string& name, bool ok, const std::string& detail) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", name.c_str());
    checks_.push_back({name, ok ? "PASS" : "FAIL", detail});
    if (!ok) failed_ = true;
  }

  /// Records the invocation line and/or seed for the manifest (optional).
  void set_argv(int argc, char** argv) {
    argv_.assign(argv, argv + argc);
  }
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  /// Prints the summary line, writes the manifest, and returns the
  /// process exit code.
  int finish(const std::string& id) const {
    obs::RunManifest manifest;
    manifest.tool = id;
    manifest.status = failed_ ? "FAIL" : "PASS";
    manifest.seed = seed_;
    manifest.argv = argv_;
    manifest.checks = checks_;
    manifest.wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const std::string path = obs::manifest_path(id);
    if (manifest.try_write(path)) {
      std::printf("manifest: %s\n", path.c_str());
    }
    std::printf("-------------------------------------------------------------\n");
    std::printf("%s: %s\n", id.c_str(), failed_ ? "FAIL" : "PASS");
    return failed_ ? 1 : 0;
  }

 private:
  bool failed_ = false;
  std::vector<obs::ManifestCheck> checks_;
  std::vector<std::string> argv_;
  std::optional<std::uint64_t> seed_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// What one sub-experiment reports back to the driver.
struct ExperimentResult {
  bool ok = false;
  std::string detail;  ///< deterministic one-line summary (counts, sizes)
};

/// Command-line surface shared by driver-based sweeps.
struct DriverOptions {
  std::string checkpoint_path;        ///< empty = no checkpointing
  bool resume = false;                ///< load checkpoint_path before running
  std::chrono::seconds watchdog{30};  ///< per-experiment limit; 0 = none
  std::uint32_t generations = 3;      ///< checkpoint generations kept

  static DriverOptions parse(int argc, char** argv) {
    DriverOptions opts;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--checkpoint" && i + 1 < argc) {
        opts.checkpoint_path = argv[++i];
      } else if (arg == "--resume") {
        opts.resume = true;
        // Optional path operand: `--resume <ckpt>` both loads from and
        // keeps checkpointing to that file.
        if (i + 1 < argc && argv[i + 1][0] != '-') {
          opts.checkpoint_path = argv[++i];
        }
      } else if (arg == "--watchdog" && i + 1 < argc) {
        opts.watchdog = std::chrono::seconds(std::atol(argv[++i]));
      } else if (arg == "--generations" && i + 1 < argc) {
        opts.generations = static_cast<std::uint32_t>(
            std::max(1L, std::atol(argv[++i])));
      } else {
        std::fprintf(stderr,
                     "usage: %s [--checkpoint <path>] [--resume [<path>]] "
                     "[--watchdog <seconds>] [--generations <k>]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return opts;
  }
};

/// Runs a sweep of named sub-experiments with three layers of fault
/// tolerance:
///  * every body runs on a worker thread under a cooperative
///    runtime::RunControl whose deadline is the watchdog; if the body does
///    not return within the watchdog it is cancelled, given a grace
///    period, and — only if it ignores cancellation — abandoned (detached)
///    so the rest of the sweep still runs;
///  * exceptions from a body are caught and recorded as ERROR, never
///    propagate, and never stop the sweep;
///  * after every completed experiment the driver writes a checksummed
///    checkpoint (runtime/checkpoint.hpp); `--resume` skips completed
///    experiments and replays their recorded verdict lines, so the final
///    summary is bit-identical to an uninterrupted run.
class ExperimentDriver {
 public:
  using Body = std::function<ExperimentResult(runtime::RunControl&)>;

  ExperimentDriver(std::string sweep_name, DriverOptions opts)
      : name_(std::move(sweep_name)), opts_(std::move(opts)) {
    if (opts_.resume && !opts_.checkpoint_path.empty()) load_checkpoint();
  }

  /// Deterministic per-experiment seed (stable across runs and resumes).
  [[nodiscard]] std::uint64_t seed(const std::string& id) const {
    return runtime::fnv1a64(name_ + "/" + id);
  }

  /// Runs (or, on resume, replays) one sub-experiment.
  void run(const std::string& id, const Body& body) {
    if (const auto it = completed_.find(id); it != completed_.end()) {
      std::printf("\n--- %s [%s from checkpoint] ---\n", id.c_str(),
                  it->second.status.c_str());
      order_.push_back(id);
      return;
    }
    std::printf("\n--- %s ---\n", id.c_str());
    order_.push_back(id);
    completed_[id] = execute(body);
    if (!opts_.checkpoint_path.empty()) save_checkpoint();
  }

  /// Prints the machine-diffable summary section and the final verdict
  /// line, writes the sweep's RunManifest, and returns the process exit
  /// code.
  int finish() const {
    std::printf("\n== summary ==\n");
    bool failed = false;
    obs::RunManifest manifest;
    manifest.tool = name_;
    manifest.seed = runtime::fnv1a64(name_);
    if (opts_.watchdog.count() > 0) {
      manifest.budgets["watchdog_s"] = std::to_string(opts_.watchdog.count());
    }
    if (!opts_.checkpoint_path.empty()) {
      manifest.extra["checkpoint"] = opts_.checkpoint_path;
      manifest.extra["resumed"] = opts_.resume ? "true" : "false";
    }
    for (const std::string& id : order_) {
      const Entry& e = completed_.at(id);
      std::printf("  [%s] %s%s%s\n", e.status.c_str(), id.c_str(),
                  e.detail.empty() ? "" : " — ", e.detail.c_str());
      manifest.checks.push_back({id, e.status, e.detail});
      if (e.status != "PASS") failed = true;
    }
    manifest.status = failed ? "FAIL" : "PASS";
    manifest.wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const std::string path = obs::manifest_path(name_);
    if (manifest.try_write(path)) {
      std::printf("manifest: %s\n", path.c_str());
    }
    std::printf("%s: %s\n", name_.c_str(), failed ? "FAIL" : "PASS");
    return failed ? 1 : 0;
  }

 private:
  struct Entry {
    std::string status;  // PASS | FAIL | ERROR | TIMEOUT
    std::string detail;
  };

  /// Shared with the worker so an abandoned (hung) thread never touches
  /// driver stack frames after the watchdog gives up on it.
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Entry entry;
    runtime::RunControl control;
    explicit Slot(const runtime::RunBudget& budget, runtime::CancelToken token)
        : control(budget, std::move(token)) {}
  };

  Entry execute(const Body& body) const {
    runtime::CancelToken token;
    runtime::RunBudget budget;
    if (opts_.watchdog.count() > 0) budget.wall_limit = opts_.watchdog;
    auto slot = std::make_shared<Slot>(budget, token);
    std::thread worker([slot, body] {
      Entry entry;
      try {
        const ExperimentResult r = body(slot->control);
        entry = {r.ok ? "PASS" : "FAIL", r.detail};
      } catch (const std::exception& e) {
        entry = {"ERROR", e.what()};
      } catch (...) {
        entry = {"ERROR", "unknown exception"};
      }
      const std::lock_guard<std::mutex> lock(slot->mutex);
      slot->entry = std::move(entry);
      slot->done = true;
      slot->cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(slot->mutex);
    const auto finished = [&slot] { return slot->done; };
    if (opts_.watchdog.count() <= 0) {
      slot->cv.wait(lock, finished);
    } else if (!slot->cv.wait_for(lock, opts_.watchdog, finished)) {
      // Cooperative cancel, then a short grace period before giving up.
      token.cancel();
      if (!slot->cv.wait_for(lock, std::chrono::seconds(5), finished)) {
        lock.unlock();
        worker.detach();  // best effort: the body ignored cancellation
        return {"TIMEOUT", "watchdog expired and the body ignored "
                           "cancellation; worker abandoned"};
      }
    }
    lock.unlock();
    worker.join();
    return slot->entry;
  }

  // Checkpoint payload: "sweep=<name>" then one "done=<id>|<status>|<detail>"
  // line per completed experiment, in completion order.
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '\\') out += "\\\\";
      else if (c == '\n') out += "\\n";
      else if (c == '|') out += "\\p";
      else out += c;
    }
    return out;
  }

  static std::string unescape(const std::string& s) {
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '\\' || i + 1 == s.size()) {
        out += s[i];
        continue;
      }
      const char next = s[++i];
      out += next == 'n' ? '\n' : next == 'p' ? '|' : next;
    }
    return out;
  }

  void save_checkpoint() const {
    runtime::Checkpoint ck;
    ck.payload = "sweep=" + name_ + "\n";
    for (const std::string& id : order_) {
      const Entry& e = completed_.at(id);
      ck.payload += "done=" + escape(id) + "|" + e.status + "|" +
                    escape(e.detail) + "\n";
    }
    try {
      // Generational store (runtime/ckpt_store.hpp): the head stays at
      // checkpoint_path, older generations rotate to <path>.g<seq>, so a
      // checkpoint corrupted AFTER being written still leaves a last-good
      // generation to resume from.
      runtime::CheckpointStore store(opts_.checkpoint_path,
                                     {opts_.generations});
      store.save(ck);
    } catch (const tca::CheckpointError& e) {
      obs::log_event(obs::LogLevel::kWarn, "driver.checkpoint_write_failed",
                     {{"path", opts_.checkpoint_path}, {"error", e.what()}});
    }
  }

  void load_checkpoint() {
    runtime::CheckpointStore store(opts_.checkpoint_path,
                                   {opts_.generations});
    auto recovery = store.load_latest();
    if (!recovery) return;  // nothing valid on disk: start from scratch
    if (recovery->from_generation || recovery->quarantined > 0) {
      std::printf(
          "checkpoint head was missing or corrupt; recovered generation %s "
          "(%u file(s) quarantined)\n",
          recovery->path.c_str(), recovery->quarantined);
    }
    const std::optional<runtime::Checkpoint> ck =
        std::move(recovery->checkpoint);
    std::size_t pos = 0;
    bool sweep_ok = false;
    while (pos < ck->payload.size()) {
      std::size_t end = ck->payload.find('\n', pos);
      if (end == std::string::npos) end = ck->payload.size();
      const std::string line = ck->payload.substr(pos, end - pos);
      pos = end + 1;
      if (line.rfind("sweep=", 0) == 0) {
        sweep_ok = line.substr(6) == name_;
        if (!sweep_ok) {
          obs::log_event(obs::LogLevel::kWarn, "driver.checkpoint_mismatch",
                         {{"expected_sweep", name_},
                          {"found_sweep", line.substr(6)},
                          {"path", opts_.checkpoint_path}});
          return;
        }
      } else if (sweep_ok && line.rfind("done=", 0) == 0) {
        const std::string rest = line.substr(5);
        const std::size_t a = rest.find('|');
        const std::size_t b = rest.find('|', a + 1);
        if (a == std::string::npos || b == std::string::npos) continue;
        completed_[unescape(rest.substr(0, a))] =
            Entry{rest.substr(a + 1, b - a - 1), unescape(rest.substr(b + 1))};
      }
    }
    if (!completed_.empty()) {
      std::printf("resuming from %s: %zu experiment(s) already done\n",
                  opts_.checkpoint_path.c_str(), completed_.size());
    }
  }

  std::string name_;
  DriverOptions opts_;
  std::map<std::string, Entry> completed_;
  std::vector<std::string> order_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace tca::bench
