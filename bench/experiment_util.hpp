#pragma once
// Shared output helpers for the experiment harnesses: consistent banners,
// table rows, and a PASS/FAIL verdict accumulator so every binary ends with
// an unambiguous machine-greppable summary line.

#include <cstdio>
#include <string>

namespace tca::bench {

/// Prints the experiment banner (id + the paper claim being regenerated).
inline void banner(const std::string& id, const std::string& claim) {
  std::printf("=============================================================\n");
  std::printf("Experiment %s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("=============================================================\n");
}

/// Accumulates named checks and prints the final verdict.
class Verdict {
 public:
  void check(const std::string& name, bool ok) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", name.c_str());
    if (!ok) failed_ = true;
  }

  /// Prints the summary line and returns the process exit code.
  int finish(const std::string& id) const {
    std::printf("-------------------------------------------------------------\n");
    std::printf("%s: %s\n", id.c_str(), failed_ ? "FAIL" : "PASS");
    return failed_ ? 1 : 0;
  }

 private:
  bool failed_ = false;
};

}  // namespace tca::bench
