// Experiment THM1 — Theorem 1: EVERY monotone symmetric Boolean 1-D SCA
// (radius 1, with memory) is cycle-free for every sequential update order.
// Verified two independent ways per rule and ring size:
//  (a) exhaustive SCC decomposition of the nondeterministic choice digraph;
//  (b) the Goles–Martinez Lyapunov certificate (every changing update
//      strictly decreases an integer energy, exhaustively over states).
// A non-monotone control (parity/XOR) shows the hypothesis is necessary.

#include <cstdio>

#include "analysis/energy.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/sequential.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"
#include "rules/analyze.hpp"
#include "rules/enumerate.hpp"

using namespace tca;

int main() {
  bench::banner(
      "THM1",
      "Theorem 1: for any monotone symmetric Boolean 1-D sequential CA with "
      "r=1 and any update order, the phase space is cycle-free.");

  bench::Verdict verdict;

  std::printf("\n(a) SCC certificate over all monotone symmetric arity-3 "
              "rules x ring sizes:\n");
  std::printf("%-16s %4s %14s %20s\n", "rule", "n", "states",
              "proper-cycle states");
  const auto rules_ms = rules::all_monotone_symmetric(3);
  for (const auto& rule : rules_ms) {
    const auto name = rules::describe(rules::Rule{rule});
    for (const std::size_t n : {4u, 6u, 8u, 10u, 12u}) {
      const auto a = core::Automaton::line(
          n, 1, core::Boundary::kRing, rules::Rule{rule}, core::Memory::kWith);
      const phasespace::ChoiceDigraph g(a);
      const auto analysis = phasespace::analyze(g);
      std::printf("%-16s %4zu %14llu %20llu\n", name.c_str(), n,
                  static_cast<unsigned long long>(g.num_states()),
                  static_cast<unsigned long long>(
                      analysis.num_proper_cycle_states));
      verdict.check(name + " n=" + std::to_string(n) + " cycle-free",
                    !analysis.has_proper_cycle());
    }
  }

  std::printf("\n(b) Lyapunov certificate (k-of-3 thresholds, exhaustive "
              "states x nodes, n = 12):\n");
  for (std::uint32_t k = 1; k <= 3; ++k) {
    const std::size_t n = 12;
    const auto net =
        analysis::ThresholdNetwork::homogeneous(graph::ring(n), k, true);
    const auto a = net.automaton();
    bool strict = true;
    for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
      const auto c = core::Configuration::from_bits(bits, n);
      const auto before = analysis::sequential_energy(net, c);
      for (graph::NodeId v = 0; v < n; ++v) {
        auto d = c;
        if (core::update_node(a, d, v) &&
            analysis::sequential_energy(net, d) > before - 1) {
          strict = false;
        }
      }
    }
    std::printf("  k=%u-of-3: strict decrease on every changing update: %s\n",
                k, strict ? "yes" : "NO");
    verdict.check("Lyapunov strict decrease, k=" + std::to_string(k), strict);
  }

  std::printf("\n(c) Control: the non-monotone XOR rule DOES cycle "
              "sequentially (two-node CA):\n");
  {
    const auto a = core::Automaton::from_graph(
        graph::complete(2), rules::parity(), core::Memory::kWith);
    const auto analysis = phasespace::analyze(phasespace::ChoiceDigraph(a));
    std::printf("  proper-cycle states: %llu\n",
                static_cast<unsigned long long>(
                    analysis.num_proper_cycle_states));
    verdict.check("XOR control has sequential cycles (monotonicity matters)",
                  analysis.has_proper_cycle());
  }

  std::printf("\n(d) Class identity: monotone symmetric == k-of-n "
              "(threshold) rules:\n");
  {
    bool all_threshold = true;
    for (const auto& rule : rules_ms) {
      const auto table = rules::truth_table(rules::Rule{rule}, 3);
      if (!rules::threshold_representation(table)) all_threshold = false;
    }
    std::printf("  %zu monotone symmetric arity-3 rules, all threshold-"
                "representable: %s\n",
                rules_ms.size(), all_threshold ? "yes" : "NO");
    verdict.check("every monotone symmetric rule is a threshold rule",
                  all_threshold);
  }

  return verdict.finish("THM1");
}
