// PERF — 2-D engines: the bit-sliced packed Life kernel vs the generic
// graph engine on Moore tori (cells/second).

#include <benchmark/benchmark.h>

#include <random>

#include "core/automaton.hpp"
#include "core/packed2d.hpp"
#include "core/synchronous.hpp"
#include "core/synchronous_fast.hpp"
#include "graph/builders.hpp"

namespace {

using namespace tca;

core::Configuration random_config(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  core::Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<core::State>(rng() & 1u));
  }
  return c;
}

void BM_LifeGenericEngine(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto g = graph::grid2d(static_cast<graph::NodeId>(side),
                               static_cast<graph::NodeId>(side), true,
                               graph::GridNeighborhood::kMoore);
  const auto a = core::Automaton::from_graph(
      g, rules::Rule{rules::game_of_life()}, core::Memory::kWith);
  auto front = random_config(side * side, 1);
  core::Configuration back(side * side);
  for (auto _ : state) {
    core::step_synchronous_fast(a, front, back);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeGenericEngine)->Arg(64)->Arg(256);

void BM_LifePackedKernel(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto config = random_config(side * side, 2);
  auto front = core::TorusGrid::from_configuration(config, side, side);
  core::TorusGrid back(side, side);
  core::Packed2dScratch scratch(side, side);
  for (auto _ : state) {
    core::step_life_packed(front, back, scratch);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifePackedKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_HighLifePackedKernel(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const std::uint32_t born[] = {3, 6};
  const std::uint32_t survive[] = {2, 3};
  const auto rule = rules::life_like(born, survive, 8);
  const auto config = random_config(side * side, 3);
  auto front = core::TorusGrid::from_configuration(config, side, side);
  core::TorusGrid back(side, side);
  core::Packed2dScratch scratch(side, side);
  for (auto _ : state) {
    core::step_outer_totalistic_packed(rule, front, back, scratch);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_HighLifePackedKernel)->Arg(256);

}  // namespace
