// Experiment ACA — Section 4: communication-asynchronous CA (no global
// clock; node updates split into fetch/compute/publish via channels)
// subsume all classical-CA and SCA behaviours, and are strictly richer.
// Bounded-exhaustive exploration of the full ACA transition system on
// small rings, plus randomly scheduled runs.

#include <cstdio>

#include "aca/aca.hpp"
#include "aca/explorer.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "graph/builders.hpp"

using namespace tca;

namespace {

void report(const char* name, const core::Automaton& a,
            phasespace::StateCode start, bench::Verdict& verdict,
            bool expect_strict) {
  const auto verdict_row = aca::compare_reach_sets(a, start);
  std::printf("%-18s %10llu %10llu %10llu %10llu %8s %8s\n", name,
              static_cast<unsigned long long>(verdict_row.sync_total),
              static_cast<unsigned long long>(verdict_row.seq_total),
              static_cast<unsigned long long>(verdict_row.aca_total),
              static_cast<unsigned long long>(verdict_row.only_aca),
              verdict_row.contains_synchronous ? "yes" : "NO",
              verdict_row.contains_sequential ? "yes" : "NO");
  verdict.check(std::string(name) + ": reach(CA) subset of reach(ACA)",
                verdict_row.contains_synchronous);
  verdict.check(std::string(name) + ": reach(SCA) subset of reach(ACA)",
                verdict_row.contains_sequential);
  if (expect_strict) {
    verdict.check(std::string(name) + ": ACA reaches strictly more configs",
                  verdict_row.only_aca > 0);
  }
}

}  // namespace

int main() {
  bench::banner(
      "ACA",
      "Section 4: asynchronous CA (fetch/compute/publish with per-edge "
      "channels, no global clock) subsume classical and sequential CA "
      "behaviours; the containment is strict in general.");

  bench::Verdict verdict;

  std::printf("\n%-18s %10s %10s %10s %10s %8s %8s\n", "system",
              "reach(CA)", "reach(SCA)", "reach(ACA)", "only ACA",
              "CA sub", "SCA sub");

  // For the two-node system the union of classical and sequential reach
  // sets already covers all four states, so strictness only appears on the
  // larger systems below.
  report("XOR 2-node",
         core::Automaton::from_graph(graph::complete(2), rules::parity(),
                                     core::Memory::kWith),
         0b01, verdict, /*expect_strict=*/false);
  report("XOR ring n=4",
         core::Automaton::line(4, 1, core::Boundary::kRing, rules::parity(),
                               core::Memory::kWith),
         0b0001, verdict, true);
  report("XOR ring n=5",
         core::Automaton::line(5, 1, core::Boundary::kRing, rules::parity(),
                               core::Memory::kWith),
         0b00011, verdict, true);
  report("MAJ ring n=4",
         core::Automaton::line(4, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith),
         0b0101, verdict, true);
  report("MAJ ring n=6",
         core::Automaton::line(6, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith),
         0b010101, verdict, true);

  std::printf("\nWhy strict for MAJ ring from the blinker: sequentially the "
              "complementary alternating state is unreachable (Lemma 1), "
              "but an ACA schedule that computes every node from the stale "
              "consistent snapshot reproduces the parallel flip — and mixed "
              "stale/fresh schedules reach configurations neither classical "
              "model visits.\n");

  std::printf("\nRandomly scheduled ACA runs (majority ring n=10, 20 seeds, "
              "cap 200000 actions):\n");
  {
    const aca::AcaSystem sys(core::Automaton::line(
        10, 1, core::Boundary::kRing, rules::majority(), core::Memory::kWith));
    int quiesced = 0;
    std::uint64_t total_actions = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const auto run = aca::run_random(sys, 0b0101010101, seed, 200000);
      if (run.quiesced) {
        ++quiesced;
        total_actions += run.actions;
      }
    }
    std::printf("  quiesced: %d/20, mean actions %.0f\n", quiesced,
                quiesced ? static_cast<double>(total_actions) / quiesced : 0.0);
    verdict.check("all random ACA runs quiesce to an asynchronous fixed "
                  "point",
                  quiesced == 20);
  }

  return verdict.finish("ACA");
}
