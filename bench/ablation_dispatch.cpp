// ABLATION — DESIGN.md decision 1: variant dispatch per cell (generic
// engine) vs variant dispatch hoisted out of the cell loop (monomorphized
// engine) vs the word-parallel packed kernel. Same automaton, same states,
// three dispatch strategies.

#include <benchmark/benchmark.h>

#include <random>

#include "core/automaton.hpp"
#include "core/packed_kernels.hpp"
#include "core/synchronous.hpp"
#include "core/synchronous_fast.hpp"

namespace {

using namespace tca;

core::Configuration random_config(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  core::Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<core::State>(rng() & 1u));
  }
  return c;
}

void BM_DispatchPerCell(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  auto front = random_config(n, 1);
  core::Configuration back(n);
  for (auto _ : state) {
    core::step_synchronous(a, front, back);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DispatchPerCell)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DispatchHoisted(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  auto front = random_config(n, 2);
  core::Configuration back(n);
  for (auto _ : state) {
    core::step_synchronous_fast(a, front, back);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DispatchHoisted)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DispatchPacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto front = random_config(n, 3);
  core::Configuration back(n);
  core::PackedScratch scratch(n);
  for (auto _ : state) {
    core::step_ring_majority3_packed(front, back, scratch);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DispatchPacked)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
