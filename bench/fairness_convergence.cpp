// Experiment FAIR — footnote 2: the convergence guarantee for sequential
// threshold CA needs a fairness condition (a fixed bound on how long any
// node waits for its turn). Bounded-fair schedules always converge within
// the Lyapunov budget; a starving schedule can stall forever.

#include <cstdio>
#include <memory>
#include <random>
#include <string>

#include "analysis/energy.hpp"
#include "analysis/stats.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "graph/builders.hpp"

using namespace tca;

int main() {
  bench::banner(
      "FAIR",
      "Footnote 2: bounded-fair sequential schedules make threshold SCA "
      "converge to a fixed point; starving a needed node prevents "
      "convergence — fairness is necessary and (with boundedness) "
      "sufficient.");

  bench::Verdict verdict;

  const std::size_t n = 32;
  const auto net = analysis::ThresholdNetwork::majority(graph::ring(n), true);
  const auto a = net.automaton();
  const auto bound = analysis::sequential_change_bound(net);
  std::mt19937_64 rng(31337);

  std::printf("\nMajority ring n=%zu, Lyapunov bound on state changes: %lld\n",
              n, static_cast<long long>(bound));

  std::printf("\n(a) Bounded-fair schedules (50 random starts each):\n");
  std::printf("%-22s %12s %16s %16s\n", "schedule", "converged",
              "mean updates", "max updates");
  struct Case {
    const char* name;
    bool fair;
  };
  for (const Case c : {Case{"cyclic permutation", true},
                       Case{"random sweeps", true},
                       Case{"iid uniform", true}}) {
    analysis::Accumulator acc;
    int converged = 0;
    for (int trial = 0; trial < 50; ++trial) {
      core::Configuration config(n);
      for (std::size_t i = 0; i < n; ++i) {
        config.set(i, static_cast<core::State>(rng() & 1u));
      }
      std::unique_ptr<core::Schedule> schedule;
      if (std::string(c.name) == "cyclic permutation") {
        schedule = std::make_unique<core::CyclicSchedule>(
            core::identity_order(n));
      } else if (std::string(c.name) == "random sweeps") {
        schedule = std::make_unique<core::RandomSweepSchedule>(n, rng());
      } else {
        schedule = std::make_unique<core::RandomUniformSchedule>(n, rng());
      }
      const auto updates =
          core::run_schedule_to_fixed_point(a, config, *schedule, 1000000);
      if (updates) {
        ++converged;
        acc.add(static_cast<double>(*updates));
      }
    }
    std::printf("%-22s %9d/50 %16.1f %16.0f\n", c.name, converged, acc.mean(),
                acc.max());
    verdict.check(std::string(c.name) + ": all runs converge",
                  converged == 50);
  }

  std::printf("\n(b) Fairness checker on schedule prefixes:\n");
  {
    core::CyclicSchedule cyclic(core::identity_order(n));
    const auto cyc_seq = core::take(cyclic, 10 * n);
    core::RandomSweepSchedule sweeps(n, 99);
    const auto sweep_seq = core::take(sweeps, 10 * n);
    core::StarvingSchedule starving(n, 7);
    const auto starve_seq = core::take(starving, 10 * n);
    std::printf("  cyclic: bounded-fair with bound n: %s\n",
                core::is_bounded_fair(cyc_seq, n, n) ? "yes" : "no");
    std::printf("  random sweeps: bounded-fair with bound 2n-1: %s\n",
                core::is_bounded_fair(sweep_seq, n, 2 * n - 1) ? "yes" : "no");
    std::printf("  starving: bounded-fair with bound 10n: %s\n",
                core::is_bounded_fair(starve_seq, n, 10 * n) ? "yes" : "no");
    verdict.check("cyclic prefix is bounded-fair",
                  core::is_bounded_fair(cyc_seq, n, n));
    verdict.check("random-sweep prefix is bounded-fair",
                  core::is_bounded_fair(sweep_seq, n, 2 * n - 1));
    verdict.check("starving prefix is NOT bounded-fair for any window",
                  !core::is_bounded_fair(starve_seq, n, 10 * n));
  }

  std::printf("\n(c) Starvation counterexample: isolated 1 whose only "
              "enabled update is the starved node:\n");
  {
    core::Configuration c(n);
    c.set(7, 1);
    core::StarvingSchedule starving(n, 7);
    const auto updates =
        core::run_schedule_to_fixed_point(a, c, starving, 200000);
    std::printf("  converged: %s (state unchanged: %s)\n",
                updates ? "yes" : "no",
                c.get(7) == 1 && c.popcount() == 1 ? "yes" : "no");
    verdict.check("starving the needed node prevents convergence",
                  !updates.has_value());
  }

  return verdict.finish("FAIR");
}
