// Experiment XOR-ALG — the algebraic underside of the paper's Section 3.1
// XOR discussion: linear CA phase-space structure computed by GF(2) rank /
// kernel and cross-checked against the combinatorial machinery. Explains
// WHY the XOR examples behave so differently from threshold rules: their
// phase spaces are cosets of a linear map, with uniform in-degrees and
// period structure given by the matrix order — nothing like the
// gradient-descent structure of threshold CA.

#include <cstdio>

#include "analysis/linear_ca.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/preimage.hpp"

using namespace tca;

int main() {
  bench::banner(
      "XOR-ALG",
      "Section 3.1 context: XOR CA are linear over GF(2); rank/kernel of "
      "the circulant global map predicts Gardens of Eden, uniform preimage "
      "counts, and reversibility — all cross-checked combinatorially.");

  bench::Verdict verdict;

  std::printf("\nRule 150 (parity of the full neighborhood) on rings:\n");
  std::printf("%4s %6s %8s %12s %14s %12s\n", "n", "rank", "nullity",
              "reversible", "GoE (algebra)", "GoE (census)");
  for (const std::size_t n : {5u, 6u, 8u, 9u, 10u, 12u}) {
    const auto linear = analysis::LinearRingCA::from_rule(rules::parity(), 1, n);
    const phasespace::RingPreimageSolver solver(rules::parity(), 1,
                                                core::Memory::kWith);
    const auto census = phasespace::count_gardens_of_eden_ring(solver, n);
    std::printf("%4zu %6zu %8zu %12s %14llu %12llu\n", n, linear.rank(),
                linear.nullity(), linear.is_reversible() ? "yes" : "no",
                static_cast<unsigned long long>(linear.garden_of_eden_count()),
                static_cast<unsigned long long>(census));
    verdict.check("n=" + std::to_string(n) + ": GoE algebra == census",
                  linear.garden_of_eden_count() == census);
    verdict.check("n=" + std::to_string(n) + ": rule-150 reversible iff 3!|n",
                  linear.is_reversible() == (n % 3 != 0));
  }

  std::printf("\nRule 90 (XOR of the two neighbors): never reversible on a "
              "ring (1 + x divides its circulant polynomial):\n");
  std::printf("%4s %6s %14s %22s\n", "n", "rank", "GoE count",
              "preimages per state");
  for (const std::size_t n : {6u, 9u, 12u}) {
    const auto linear = analysis::LinearRingCA::from_rule(
        rules::Rule{rules::wolfram(90)}, 1, n);
    std::printf("%4zu %6zu %14llu %22llu\n", n, linear.rank(),
                static_cast<unsigned long long>(linear.garden_of_eden_count()),
                static_cast<unsigned long long>(
                    linear.preimages_per_reachable_state()));
    verdict.check("n=" + std::to_string(n) + ": rule 90 not reversible",
                  !linear.is_reversible());
    // Uniform in-degree: every reachable state has exactly 2^nullity
    // preimages (checked for all states).
    const phasespace::RingPreimageSolver solver(
        rules::Rule{rules::wolfram(90)}, 1, core::Memory::kWith);
    bool uniform = true;
    const std::uint64_t expected = linear.preimages_per_reachable_state();
    for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
      const auto count =
          solver.count(core::Configuration::from_bits(bits, n));
      if (count != 0 && count != expected) uniform = false;
    }
    verdict.check("n=" + std::to_string(n) +
                      ": preimage counts uniform at 2^nullity",
                  uniform);
  }

  std::printf("\nFast trajectory jumps (matrix powers): rule 150, n = 48, "
              "t = 10^12 steps in ~40 squarings:\n");
  {
    const std::size_t n = 48;
    const auto linear = analysis::LinearRingCA::from_rule(rules::parity(), 1, n);
    core::Configuration x(n);
    x.set(0, 1);
    x.set(17, 1);
    const auto far = linear.step_many(x, 1'000'000'000'000ULL);
    std::printf("  x(10^12) = %s\n", far.to_string().c_str());
    // Consistency: A^(2t) x == A^t (A^t x).
    const auto half = linear.step_many(x, 500'000'000'000ULL);
    verdict.check("A^(2t) x == A^t(A^t x)",
                  linear.step_many(half, 500'000'000'000ULL) == far);
  }

  std::printf("\nContrast with threshold CA: majority is NOT linear, and "
              "its in-degrees are wildly non-uniform (gradient flow toward "
              "fixed points rather than measure-preserving cosets).\n");
  {
    verdict.check("majority has no linear representation",
                  !analysis::linear_coefficients(rules::majority(), 3)
                       .has_value());
  }

  return verdict.finish("XOR-ALG");
}
