// Custom google-benchmark entry point for the perf_* / ablation_*
// binaries: identical console output to benchmark_main, plus a
// RunManifest (obs/manifest.hpp) written into results/ capturing every
// per-iteration timing — the artifact scripts/check_bench.py diffs for
// regressions, so CI never scrapes benchmark stdout.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hpp"

namespace {

/// ConsoleReporter that additionally collects per-run timings for the
/// manifest. Aggregate rows (mean/median/stddev of repetitions) are
/// skipped: check_bench.py compares raw iteration rows.
class ManifestReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Aggregate) continue;
      if (run.error_occurred) {
        errors_ = true;
        continue;
      }
      tca::obs::BenchmarkTiming t;
      t.name = run.benchmark_name();
      t.real_time = run.GetAdjustedRealTime();
      t.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) t.items_per_second = it->second.value;
      t.iterations = static_cast<std::uint64_t>(run.iterations);
      timings_.push_back(std::move(t));
    }
  }

  [[nodiscard]] const std::vector<tca::obs::BenchmarkTiming>& timings() const {
    return timings_;
  }
  [[nodiscard]] bool errors() const { return errors_; }

 private:
  std::vector<tca::obs::BenchmarkTiming> timings_;
  bool errors_ = false;
};

std::string tool_name(const char* argv0) {
  const std::string path = argv0;
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  tca::obs::RunManifest manifest;
  manifest.tool = tool_name(argv[0]);
  manifest.argv.assign(argv, argv + argc);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ManifestReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  manifest.status = reporter.errors() ? "ERROR" : "PASS";
  manifest.benchmarks = reporter.timings();
  manifest.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  const std::string path = tca::obs::manifest_path(manifest.tool);
  if (manifest.try_write(path)) {
    std::printf("manifest: %s\n", path.c_str());
  }
  return reporter.errors() ? 1 : 0;
}
