// ABLATION — DESIGN.md trajectory decision: Brent's O(1)-memory cycle
// detector vs the hash-map tracer. Brent re-applies the step map ~3x more
// but allocates nothing; the tracer stores every visited configuration.
// Parity rings give orbits with long transients+periods to chase.

#include <benchmark/benchmark.h>

#include "core/automaton.hpp"
#include "core/trajectory.hpp"

namespace {

using namespace tca;

core::Automaton parity_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::parity(),
                               core::Memory::kWith);
}

void BM_BrentOrbit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = parity_ring(n);
  const auto step = core::synchronous_step_fn(a);
  const auto start = core::Configuration::from_bits(0b1011, n);
  for (auto _ : state) {
    auto orbit = core::find_orbit(step, start, 1u << 22);
    benchmark::DoNotOptimize(orbit);
  }
}
BENCHMARK(BM_BrentOrbit)->Arg(11)->Arg(13)->Arg(17)->Arg(19);

void BM_HashTraceOrbit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = parity_ring(n);
  const auto step = core::synchronous_step_fn(a);
  const auto start = core::Configuration::from_bits(0b1011, n);
  for (auto _ : state) {
    auto trace = core::trace_orbit(step, start, 1u << 22);
    benchmark::DoNotOptimize(trace);
  }
}
BENCHMARK(BM_HashTraceOrbit)->Arg(11)->Arg(13)->Arg(17)->Arg(19);

}  // namespace
