// Experiment ISO — Section 4: "It is not surprising that one can find a
// (classical, concurrent) CA such that no sequential CA with the same
// underlying cellular space and the same node update rule can reproduce
// identical or even ISOMORPHIC computation." Made exhaustive: canonical
// forms of functional graphs (AHU tree encodings + minimal cycle
// rotations) separate the parallel phase space from EVERY sweep-order
// phase space.

#include <cstdio>
#include <set>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "graph/builders.hpp"
#include "phasespace/isomorphism.hpp"

using namespace tca;

int main() {
  bench::banner(
      "ISO",
      "Section 3.1/4: no sequential update order yields a phase space "
      "isomorphic (as a digraph) to the parallel one — for the XOR "
      "two-node CA and for majority rings, over ALL permutations.");

  bench::Verdict verdict;

  std::printf("\nXOR two-node CA (the paper's explicit example):\n");
  {
    const auto a = core::Automaton::from_graph(
        graph::complete(2), rules::parity(), core::Memory::kWith);
    const auto parallel = phasespace::FunctionalGraph::synchronous(a);
    const auto pform = phasespace::canonical_form(parallel);
    std::printf("  parallel canonical form: %s\n", pform.c_str());
    bool none_isomorphic = true;
    for (const auto& order : {std::vector<core::NodeId>{0, 1},
                              std::vector<core::NodeId>{1, 0}}) {
      const auto sweep = phasespace::FunctionalGraph::sweep(a, order);
      const auto sform = phasespace::canonical_form(sweep);
      std::printf("  sweep (%u,%u) canonical form: %s\n", order[0] + 1,
                  order[1] + 1, sform.c_str());
      if (sform == pform) none_isomorphic = false;
    }
    verdict.check("XOR 2-node: no sweep order isomorphic to parallel",
                  none_isomorphic);
  }

  std::printf("\nMajority rings, all n! sweep orders vs parallel:\n");
  std::printf("%4s %14s %22s %22s\n", "n", "orders", "distinct sweep forms",
              "any isomorphic to par?");
  for (const std::size_t n : {4u, 5u, 6u, 7u}) {
    const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                         rules::majority(), core::Memory::kWith);
    const auto parallel = phasespace::FunctionalGraph::synchronous(a);
    const auto pform = phasespace::canonical_form(parallel);
    auto perm = core::identity_order(n);
    std::set<std::string> forms;
    bool any_isomorphic = false;
    std::uint64_t orders = 0;
    do {
      const auto sweep = phasespace::FunctionalGraph::sweep(a, perm);
      const auto sform = phasespace::canonical_form(sweep);
      forms.insert(sform);
      if (sform == pform) any_isomorphic = true;
      ++orders;
    } while (std::next_permutation(perm.begin(), perm.end()));
    std::printf("%4zu %14llu %22zu %22s\n", n,
                static_cast<unsigned long long>(orders), forms.size(),
                any_isomorphic ? "YES" : "no");
    // For even n the parallel space has a two-cycle and sweeps cannot; for
    // odd n both are cycle-free but the tree shapes still differ.
    verdict.check("n=" + std::to_string(n) +
                      ": no sweep order isomorphic to parallel",
                  !any_isomorphic);
  }

  std::printf("\nNote: for even n the refutation is forced by Lemma 1 "
              "(cycle vs no cycle); for odd n both phase spaces are "
              "cycle-free and the refutation needs the full canonical-form "
              "comparison — the basin TREES differ, not just the cycles.\n");
  return verdict.finish("ISO");
}
