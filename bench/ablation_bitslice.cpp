// ABLATION — docs/performance.md: phase-space construction throughput of
// the three engines on the Lemma-1 workload (majority, radius-1 ring,
// with memory). The scalar engine decodes/steps/encodes one state code at
// a time; the packed kernel vectorizes WITHIN one configuration (64 cells
// per op — pure overhead at phase-space sizes, measured here to prove
// it); the bit-sliced batch engine steps 64 configurations per circuit
// pass and is the default fast path of FunctionalGraph::synchronous.
//
// BM_BitsliceSpeedupGate publishes the scalar/batch throughput ratio as
// the deterministic counters `bench.bitslice.speedup_pct` and
// `bench.bitslice.speedup_ge10`, which CI compares against
// bench/baselines/ablation_bitslice.manifest.json via
// scripts/check_bench.py — machine-independent gating of the >= 10x
// acceptance bar, immune to hosted-runner timing noise.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/automaton.hpp"
#include "core/packed_kernels.hpp"
#include "core/synchronous.hpp"
#include "obs/metrics.hpp"
#include "phasespace/functional_graph.hpp"

namespace {

using namespace tca;
using phasespace::StateCode;

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

// Scalar reference: decode, generic gather/eval step, encode — what every
// full-table enumeration paid before the batch engine.
void scalar_table(const core::Automaton& a, std::vector<StateCode>& table) {
  const std::size_t n = a.size();
  core::Configuration front(n);
  core::Configuration back(n);
  for (StateCode s = 0; s < table.size(); ++s) {
    front = core::Configuration::from_bits(s, n);
    core::step_synchronous(a, front, back);
    table[s] = back.to_bits();
  }
}

void BM_PhaseSpaceScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  std::vector<StateCode> table(StateCode{1} << n);
  for (auto _ : state) {
    scalar_table(a, table);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_PhaseSpaceScalar)->Arg(12)->Arg(16)->Arg(20);

// Packed kernel per code: within-configuration word parallelism only —
// the transpose-free strawman (64 cells per op, but n <= 24 cells means
// one word, so it degenerates to fixed overhead per state).
void BM_PhaseSpacePacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<StateCode> table(StateCode{1} << n);
  core::Configuration front(n);
  core::Configuration back(n);
  core::PackedScratch scratch(n);
  for (auto _ : state) {
    for (StateCode s = 0; s < table.size(); ++s) {
      front = core::Configuration::from_bits(s, n);
      core::step_ring_majority3_packed(front, back, scratch);
      table[s] = back.to_bits();
    }
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_PhaseSpacePacked)->Arg(12)->Arg(16)->Arg(20);

void BM_PhaseSpaceBitsliced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  std::vector<StateCode> table(StateCode{1} << n);
  phasespace::BatchCodeStepper stepper(a);
  for (auto _ : state) {
    stepper.step_range(0, table.size(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_PhaseSpaceBitsliced)->Arg(12)->Arg(16)->Arg(20)->Arg(24);

// One-shot acceptance gate: times both engines on the n=20 Lemma-1 ring
// and publishes the ratio as deterministic counters for check_bench.
void BM_BitsliceSpeedupGate(benchmark::State& state) {
  static std::once_flag once;
  for (auto _ : state) {
    std::call_once(once, [] {
      using Clock = std::chrono::steady_clock;
      const std::size_t n = 20;
      const auto a = majority_ring(n);
      std::vector<StateCode> table(StateCode{1} << n);

      const auto t0 = Clock::now();
      scalar_table(a, table);
      const auto scalar_ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t0).count();

      phasespace::BatchCodeStepper stepper(a);
      const auto t1 = Clock::now();
      stepper.step_range(0, table.size(), table.data());
      const auto batch_ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t1).count();

      const double ratio = batch_ns > 0 ? scalar_ns / batch_ns : 0.0;
      obs::counter("bench.bitslice.speedup_pct")
          .add(static_cast<std::uint64_t>(ratio * 100.0));
      if (ratio >= 10.0) obs::counter("bench.bitslice.speedup_ge10").add();
    });
  }
}
BENCHMARK(BM_BitsliceSpeedupGate)->Iterations(1);

}  // namespace
