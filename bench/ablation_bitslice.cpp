// ABLATION — docs/performance.md: phase-space construction throughput of
// the three engines on the Lemma-1 workload (majority, radius-1 ring,
// with memory). The scalar engine decodes/steps/encodes one state code at
// a time; the packed kernel vectorizes WITHIN one configuration (64 cells
// per op — pure overhead at phase-space sizes, measured here to prove
// it); the bit-sliced batch engine steps 64 configurations per circuit
// pass and is the default fast path of FunctionalGraph::synchronous.
//
// BM_BitsliceSpeedupGate publishes the scalar/batch throughput ratio as
// the deterministic counters `bench.bitslice.speedup_pct` and
// `bench.bitslice.speedup_ge10`, which CI compares against
// bench/baselines/ablation_bitslice.manifest.json via
// scripts/check_bench.py — machine-independent gating of the >= 10x
// acceptance bar, immune to hosted-runner timing noise.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "core/batch_isa.hpp"
#include "core/packed_kernels.hpp"
#include "core/synchronous.hpp"
#include "obs/metrics.hpp"
#include "phasespace/functional_graph.hpp"

namespace {

using namespace tca;
using phasespace::StateCode;

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

// Scalar reference: decode, generic gather/eval step, encode — what every
// full-table enumeration paid before the batch engine.
void scalar_table(const core::Automaton& a, std::vector<StateCode>& table) {
  const std::size_t n = a.size();
  core::Configuration front(n);
  core::Configuration back(n);
  for (StateCode s = 0; s < table.size(); ++s) {
    front = core::Configuration::from_bits(s, n);
    core::step_synchronous(a, front, back);
    table[s] = back.to_bits();
  }
}

void BM_PhaseSpaceScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  std::vector<StateCode> table(StateCode{1} << n);
  for (auto _ : state) {
    scalar_table(a, table);
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_PhaseSpaceScalar)->Arg(12)->Arg(16)->Arg(20);

// Packed kernel per code: within-configuration word parallelism only —
// the transpose-free strawman (64 cells per op, but n <= 24 cells means
// one word, so it degenerates to fixed overhead per state).
void BM_PhaseSpacePacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<StateCode> table(StateCode{1} << n);
  core::Configuration front(n);
  core::Configuration back(n);
  core::PackedScratch scratch(n);
  for (auto _ : state) {
    for (StateCode s = 0; s < table.size(); ++s) {
      front = core::Configuration::from_bits(s, n);
      core::step_ring_majority3_packed(front, back, scratch);
      table[s] = back.to_bits();
    }
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_PhaseSpacePacked)->Arg(12)->Arg(16)->Arg(20);

void BM_PhaseSpaceBitsliced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  std::vector<StateCode> table(StateCode{1} << n);
  phasespace::BatchCodeStepper stepper(a);
  for (auto _ : state) {
    stepper.step_range(0, table.size(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}
BENCHMARK(BM_PhaseSpaceBitsliced)->Arg(12)->Arg(16)->Arg(20)->Arg(24);

// One-shot acceptance gate: times both engines on the n=20 Lemma-1 ring
// and publishes the ratio as deterministic counters for check_bench.
void BM_BitsliceSpeedupGate(benchmark::State& state) {
  static std::once_flag once;
  for (auto _ : state) {
    std::call_once(once, [] {
      using Clock = std::chrono::steady_clock;
      const std::size_t n = 20;
      const auto a = majority_ring(n);
      std::vector<StateCode> table(StateCode{1} << n);

      const auto t0 = Clock::now();
      scalar_table(a, table);
      const auto scalar_ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t0).count();

      phasespace::BatchCodeStepper stepper(a);
      const auto t1 = Clock::now();
      stepper.step_range(0, table.size(), table.data());
      const auto batch_ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t1).count();

      const double ratio = batch_ns > 0 ? scalar_ns / batch_ns : 0.0;
      obs::counter("bench.bitslice.speedup_pct")
          .add(static_cast<std::uint64_t>(ratio * 100.0));
      if (ratio >= 10.0) obs::counter("bench.bitslice.speedup_ge10").add();
    });
  }
}
BENCHMARK(BM_BitsliceSpeedupGate)->Iterations(1);

// Per-ISA sweep: the same full-table build, once per SIMD tier this host
// can run (forced via the BatchCodeStepper tier override, never the env
// knob). Tiers the host lacks are simply not registered — a missing row
// is "not measurable here", not a failure, so the manifest stays PASS on
// plain scalar machines.
void BM_PhaseSpaceWide(benchmark::State& state, core::BatchIsa isa) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  std::vector<StateCode> table(StateCode{1} << n);
  phasespace::BatchCodeStepper stepper(a, isa);
  for (auto _ : state) {
    stepper.step_range(0, table.size(), table.data());
    benchmark::DoNotOptimize(table.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.size()));
}

const int kRegisterWideTiers = [] {
  for (unsigned i = 0; i < core::kNumBatchIsa; ++i) {
    const auto isa = static_cast<core::BatchIsa>(i);
    if (!core::isa_available(isa)) continue;
    const std::string name =
        std::string("BM_PhaseSpaceWide/") + core::isa_name(isa);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [isa](benchmark::State& s) { BM_PhaseSpaceWide(s, isa); })
        ->Arg(16)
        ->Arg(20);
  }
  return 0;
}();

// Widening acceptance gate: the widest tier this host supports must build
// the n=20 table >= 2.5x faster than the 64-lane scalar bit-slice engine.
// Published as deterministic-shaped counters:
//   bench.bitslice.widen.speedup_pct — ratio x100 (informational);
//   bench.bitslice.widen.ge250       — 1 iff ratio >= 2.5;
//   bench.bitslice.widen.skip        — 1 iff the host has no SIMD tier,
//                                      in which case the gate is vacuous
//                                      (SKIP, never FAIL, on scalar-only
//                                      hosts; docs/performance.md).
void BM_WideningSpeedupGate(benchmark::State& state) {
  static std::once_flag once;
  for (auto _ : state) {
    std::call_once(once, [] {
      const auto best = core::best_supported_isa();
      if (best == core::BatchIsa::kScalar) {
        obs::counter("bench.bitslice.widen.skip").add();
        return;
      }
      using Clock = std::chrono::steady_clock;
      const std::size_t n = 20;
      const auto a = majority_ring(n);
      std::vector<StateCode> table(StateCode{1} << n);

      phasespace::BatchCodeStepper narrow(a, core::BatchIsa::kScalar);
      const auto t0 = Clock::now();
      narrow.step_range(0, table.size(), table.data());
      const auto narrow_ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t0).count();

      phasespace::BatchCodeStepper wide(a, best);
      const auto t1 = Clock::now();
      wide.step_range(0, table.size(), table.data());
      const auto wide_ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t1).count();

      const double ratio = wide_ns > 0 ? narrow_ns / wide_ns : 0.0;
      obs::counter("bench.bitslice.widen.speedup_pct")
          .add(static_cast<std::uint64_t>(ratio * 100.0));
      if (ratio >= 2.5) obs::counter("bench.bitslice.widen.ge250").add();
    });
  }
}
BENCHMARK(BM_WideningSpeedupGate)->Iterations(1);

}  // namespace
