// PERF — engine throughput (cells/second) for the paper's framing of CA as
// a model of fine-grain parallelism: generic gather/eval engine vs the
// word-parallel packed kernels vs the tiled multithreaded engine, across
// ring sizes and radii. (Absolute numbers are machine-dependent; the SHAPE
// — packed >> generic, threaded scaling bounded by core count — is the
// result.)

#include <benchmark/benchmark.h>

#include <random>

#include "core/automaton.hpp"
#include "core/packed_kernels.hpp"
#include "core/sequential.hpp"
#include "core/schedule.hpp"
#include "core/synchronous.hpp"
#include "core/thread_pool.hpp"
#include "core/threaded.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace tca;

core::Configuration random_config(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  core::Configuration c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.set(i, static_cast<core::State>(rng() & 1u));
  }
  return c;
}

void BM_SynchronousGeneric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  auto front = random_config(n, 1);
  core::Configuration back(n);
  for (auto _ : state) {
    core::step_synchronous(a, front, back);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SynchronousGeneric)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SynchronousPackedMajority3(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto front = random_config(n, 2);
  core::Configuration back(n);
  core::PackedScratch scratch(n);
  for (auto _ : state) {
    core::step_ring_majority3_packed(front, back, scratch);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SynchronousPackedMajority3)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 22);

void BM_SynchronousPackedMajority5(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto front = random_config(n, 3);
  core::Configuration back(n);
  core::PackedScratch scratch(n);
  for (auto _ : state) {
    core::step_ring_majority5_packed(front, back, scratch);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SynchronousPackedMajority5)->Arg(1 << 14)->Arg(1 << 18);

void BM_SynchronousPackedWolfram110(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rule = rules::wolfram(110);
  auto front = random_config(n, 4);
  core::Configuration back(n);
  core::PackedScratch scratch(n);
  for (auto _ : state) {
    core::step_ring_table3_packed(rule, front, back, scratch);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SynchronousPackedWolfram110)->Arg(1 << 14)->Arg(1 << 18);

void BM_SynchronousThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  core::ThreadPool pool(threads);
  auto front = random_config(n, 5);
  core::Configuration back(n);
  for (auto _ : state) {
    core::step_synchronous_threaded(a, front, back, pool);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SynchronousThreaded)
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 2})
    ->Args({1 << 18, 4});

void BM_SequentialSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  auto c = random_config(n, 6);
  const auto order = core::identity_order(n);
  for (auto _ : state) {
    core::apply_sequence(a, c, order);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SequentialSweep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

// Metrics-on vs metrics-off ablation for the observability acceptance
// criterion: the generic synchronous engine with metering enabled must be
// within 5% of the same engine with metering disabled (two relaxed
// fetch_adds per step is the entire delta). Compare
// BM_SynchronousMetrics/<n>/1 against .../0 with scripts/check_bench.py.
void BM_SynchronousMetrics(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool enabled = state.range(1) != 0;
  const bool was_enabled = tca::obs::metrics_enabled();
  tca::obs::set_metrics_enabled(enabled);
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  auto front = random_config(n, 8);
  core::Configuration back(n);
  for (auto _ : state) {
    core::step_synchronous(a, front, back);
    std::swap(front, back);
  }
  tca::obs::set_metrics_enabled(was_enabled);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SynchronousMetrics)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1});

void BM_RadiusScaling(benchmark::State& state) {
  const std::size_t n = 1 << 14;
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto a = core::Automaton::line(n, r, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  auto front = random_config(n, 7);
  core::Configuration back(n);
  for (auto _ : state) {
    core::step_synchronous(a, front, back);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadiusScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
