// Experiment SVC-LOAD — closed-loop saturation bench for the tcad daemon
// (docs/service.md).
//
// Drives a tcad instance (spawned as a child with --spawn-style defaults,
// or an external one via --socket) through three fixed phases:
//
//   1. MISS    — a canned set of distinct queries, every one cold: each
//                must come back "source":"computed" and bit-identical to
//                the direct library answer computed in-process;
//   2. HIT     — the same set twice more: all "memory-cache";
//   3. COALESCE— 8 connections fire the SAME cold query through a start
//                barrier: exactly ONE response may be "computed", the
//                rest are "coalesced" (attached to the in-flight build)
//                or "memory-cache" (arrived after publication).
//
// The workload is FIXED so its counters are deterministic:
// loadgen.{requests,ok,errors,mismatch,coalesce_ok,server_counters_ok,
// server_clean_shutdown} — committed in
// bench/baselines/loadgen_tcad.manifest.json and diffed exactly by the
// service-smoke CI job via scripts/check_bench.py. Timing (qps, p50/p99
// request latency) is published as manifest benchmarks for trend
// tracking but never gated — only counters gate.
//
// The baseline values assume spawn mode (the default): the bench forks
// its own tcad, SIGTERMs it at the end, and requires a zero exit status
// plus a PASS clean-shutdown check in the daemon's own manifest.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/engine.hpp"
#include "service/json_parse.hpp"
#include "service/query.hpp"

using namespace tca;

namespace {

namespace fs = std::filesystem;

struct CannedQuery {
  const char* name;
  const char* request_query;  ///< the "query" object, verbatim JSON
};

// The MISS/HIT set: all four kinds, both topologies, both schemes, and
// every rule family. Small n keeps the bench under a second; coalesce
// uses a larger build below so the in-flight window is real.
constexpr CannedQuery kCanned[] = {
    {"attr-maj-ring", R"({"kind":"attractor-summary","n":8,"radius":1,"rule":"majority","topology":"ring"})"},
    {"attr-parity-line", R"({"kind":"attractor-summary","n":8,"radius":1,"rule":"parity","topology":"line"})"},
    {"attr-wolfram110", R"({"kind":"attractor-summary","n":9,"radius":1,"rule":{"type":"wolfram","code":110},"topology":"ring"})"},
    {"attr-sweep-rev", R"({"kind":"attractor-summary","n":7,"radius":1,"rule":"majority","scheme":"sweep","order":[6,5,4,3,2,1,0]})"},
    {"trans-kofn", R"({"kind":"transient-depth","n":9,"radius":1,"rule":{"type":"kofn","k":2},"topology":"ring"})"},
    {"trans-maj1-r2", R"({"kind":"transient-depth","n":9,"radius":2,"rule":"majority1","topology":"ring"})"},
    {"goe-maj-ring", R"({"kind":"goe-census","n":8,"radius":1,"rule":"majority","topology":"ring"})"},
    {"goe-sym-line", R"({"kind":"goe-census","n":8,"radius":1,"rule":{"type":"symmetric","mask":11},"topology":"line"})"},
    {"goe-sweep", R"({"kind":"goe-census","n":7,"radius":1,"rule":"parity","scheme":"sweep"})"},
    {"pre-tm-ring", R"({"kind":"preimage-count","n":12,"radius":1,"rule":"majority","topology":"ring","target":0})"},
    {"pre-explicit-line", R"({"kind":"preimage-count","n":8,"radius":1,"rule":"parity","topology":"line","target":17})"},
    {"pre-sweep", R"({"kind":"preimage-count","n":8,"radius":1,"rule":"majority","scheme":"sweep","order":[1,0,3,2,5,4,7,6],"target":255})"},
};
constexpr std::size_t kCannedCount = sizeof kCanned / sizeof kCanned[0];
constexpr int kHitRounds = 2;
constexpr std::size_t kCoalesceClients = 8;
// The coalesce-phase cold query: a 2^14-state supervised build, big
// enough that followers genuinely arrive mid-build on any machine.
constexpr const char* kCoalesceQuery =
    R"({"kind":"attractor-summary","n":14,"radius":1,"rule":"majority1","topology":"ring"})";

/// The daemon's "result" object from a response body (it is the last
/// member by construction; see handler.cpp query_response).
std::string extract_result(const std::string& response) {
  const std::size_t pos = response.find("\"result\":");
  if (pos == std::string::npos) return "";
  return response.substr(pos + 9, response.size() - pos - 10);
}

std::string extract_source(const std::string& response) {
  const service::JsonValue v = service::parse_json(response);
  return v.string_or("source", "");
}

/// Direct library answer for a canned query — the same code path the
/// daemon uses, executed in-process. Bit-identical JSON is the check.
std::string library_answer(const char* query_json,
                           service::QueryEngine& engine) {
  const service::ServiceQuery q =
      service::ServiceQuery::from_json(service::parse_json(query_json));
  const service::QueryOutcome out =
      engine.execute(q, service::RequestBudget{}, {});
  return out.ok() ? out.result.to_json() : "";
}

std::string request_body(std::uint64_t id, const char* query_json) {
  std::ostringstream os;
  os << R"({"op":"query","id":)" << id << R"(,"query":)" << query_json << "}";
  return os.str();
}

struct Latencies {
  std::mutex mu;
  std::vector<std::uint64_t> us;

  void record(std::chrono::steady_clock::time_point t0) {
    const auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::lock_guard<std::mutex> lock(mu);
    us.push_back(static_cast<std::uint64_t>(dt));
  }

  std::uint64_t percentile(double p) {
    std::lock_guard<std::mutex> lock(mu);
    if (us.empty()) return 0;
    std::vector<std::uint64_t> sorted = us;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;   // external server; empty = spawn our own
  std::string tcad_bin;      // spawn mode: path to the tcad binary
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcad" && i + 1 < argc) {
      tcad_bin = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--socket PATH | --tcad TCAD_BIN]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::Counter& c_requests = obs::counter("loadgen.requests");
  obs::Counter& c_ok = obs::counter("loadgen.ok");
  obs::Counter& c_errors = obs::counter("loadgen.errors");
  obs::Counter& c_mismatch = obs::counter("loadgen.mismatch");
  obs::Counter& c_coalesce_ok = obs::counter("loadgen.coalesce_ok");
  obs::Counter& c_counters_ok = obs::counter("loadgen.server_counters_ok");
  obs::Counter& c_clean = obs::counter("loadgen.server_clean_shutdown");

  // --- spawn the daemon (default mode) -------------------------------
  pid_t child = -1;
  std::string workdir;
  std::string server_manifest;
  const bool spawn = socket_path.empty();
  if (spawn) {
    if (tcad_bin.empty()) {
      // Bare invocation (the reproduce.sh bench sweep): the daemon lives
      // at a fixed spot relative to this binary in the build tree.
      const fs::path sibling =
          fs::path(argv[0]).parent_path() / ".." / "src" / "service" / "tcad";
      std::error_code ec;
      if (fs::exists(sibling, ec)) tcad_bin = sibling.string();
    }
    if (tcad_bin.empty()) {
      std::fprintf(stderr, "loadgen_tcad: need --tcad (or --socket)\n");
      return 2;
    }
    char tmpl[] = "loadgen_tcad.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      return 2;
    }
    workdir = tmpl;
    socket_path = workdir + "/tcad.sock";
    server_manifest = workdir + "/tcad.manifest.json";
    const std::string ready = workdir + "/ready";
    child = ::fork();
    if (child == 0) {
      ::execl(tcad_bin.c_str(), tcad_bin.c_str(),
              "--socket", socket_path.c_str(),
              "--cache-dir", (workdir + "/cache").c_str(),
              "--ckpt-dir", (workdir + "/ckpt").c_str(),
              "--ready-file", ready.c_str(),
              "--manifest", server_manifest.c_str(),
              static_cast<char*>(nullptr));
      std::perror("execl tcad");
      _exit(127);
    }
    bool up = false;
    for (int i = 0; i < 300; ++i) {  // 15 s startup allowance
      if (fs::exists(ready)) {
        up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!up) {
      std::fprintf(stderr, "loadgen_tcad: daemon never became ready\n");
      ::kill(child, SIGKILL);
      return 1;
    }
  }

  // Library-side engine for expected answers (no cache, no checkpoints:
  // pure compute).
  service::QueryEngine lib_engine{service::EngineOptions{}};

  Latencies latencies;
  const auto bench_t0 = std::chrono::steady_clock::now();
  std::uint64_t next_id = 1;

  const auto issue = [&](service::TcadClient& client, const char* query_json,
                         const std::string& expected) -> std::string {
    const std::string req = request_body(next_id++, query_json);
    const auto t0 = std::chrono::steady_clock::now();
    const std::string response = client.call(req);
    latencies.record(t0);
    c_requests.add();
    const service::JsonValue v = service::parse_json(response);
    if (v.string_or("status", "") != "ok") {
      c_errors.add();
      return response;
    }
    c_ok.add();
    if (!expected.empty() && extract_result(response) != expected) {
      c_mismatch.add();
      std::fprintf(stderr, "MISMATCH for %s\n  server: %s\n  library: %s\n",
                   query_json, extract_result(response).c_str(),
                   expected.c_str());
    }
    return response;
  };

  // Phase 1+2: miss then hit rounds, single connection (the protocol is
  // one-outstanding-per-connection; phase 3 exercises concurrency).
  {
    service::TcadClient client = service::TcadClient::connect_uds(socket_path);
    std::vector<std::string> expected(kCannedCount);
    for (std::size_t i = 0; i < kCannedCount; ++i) {
      expected[i] = library_answer(kCanned[i].request_query, lib_engine);
    }
    for (int round = 0; round <= kHitRounds; ++round) {
      for (std::size_t i = 0; i < kCannedCount; ++i) {
        const std::string response =
            issue(client, kCanned[i].request_query, expected[i]);
        const std::string source = extract_source(response);
        const char* want = round == 0 ? "computed" : "memory-cache";
        if (source != want) {
          c_errors.add();
          std::fprintf(stderr, "phase %d: %s: expected source %s, got %s\n",
                       round, kCanned[i].name, want, source.c_str());
        }
      }
    }
  }

  // Phase 3: coalesce — kCoalesceClients connections, one cold query,
  // released together.
  {
    const std::string expected = library_answer(kCoalesceQuery, lib_engine);
    std::mutex mu;
    std::condition_variable cv;
    bool go = false;
    std::atomic<std::uint64_t> computed{0}, attached{0}, bad{0};
    std::vector<std::thread> threads;
    threads.reserve(kCoalesceClients);
    for (std::size_t i = 0; i < kCoalesceClients; ++i) {
      threads.emplace_back([&] {
        service::TcadClient client =
            service::TcadClient::connect_uds(socket_path);
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return go; });
        }
        const std::string response = issue(client, kCoalesceQuery, expected);
        const std::string source = extract_source(response);
        if (source == "computed") {
          computed.fetch_add(1);
        } else if (source == "coalesced" || source == "memory-cache") {
          attached.fetch_add(1);
        } else {
          bad.fetch_add(1);
        }
      });
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      go = true;
    }
    cv.notify_all();
    for (std::thread& t : threads) t.join();
    // Conservation law: exactly one build, everyone else rode along.
    if (computed.load() == 1 &&
        attached.load() == kCoalesceClients - 1 && bad.load() == 0) {
      c_coalesce_ok.add();
    } else {
      std::fprintf(stderr,
                   "coalesce: computed=%llu attached=%llu bad=%llu\n",
                   static_cast<unsigned long long>(computed.load()),
                   static_cast<unsigned long long>(attached.load()),
                   static_cast<unsigned long long>(bad.load()));
    }
  }

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_t0)
          .count();

  // Server-side counter audit over the protocol.
  std::uint64_t server_requests = 0;
  {
    service::TcadClient client = service::TcadClient::connect_uds(socket_path);
    const std::string response =
        client.call(R"({"op":"counters","id":999999})");
    const service::JsonValue v = service::parse_json(response);
    if (const service::JsonValue* counters = v.find("counters")) {
      server_requests = counters->u64_or("service.requests", 0);
      const std::uint64_t server_ok =
          counters->u64_or("service.requests.ok", 0);
      const std::uint64_t mem_hits = counters->u64_or("service.cache.hit", 0);
      const std::uint64_t coalesced =
          counters->u64_or("service.coalesced", 0);
      // The counters op itself is request #(sent+1) and is counted by the
      // time the snapshot is taken.
      const std::uint64_t sent = c_requests.value();
      const bool requests_match = server_requests == sent + 1;
      const bool ok_match = server_ok == c_ok.value();
      // Every HIT-round response was served from memory; coalesce-phase
      // followers may land as coalesced or late cache hits.
      const bool hits_plausible =
          mem_hits + coalesced >=
          kCannedCount * static_cast<std::uint64_t>(kHitRounds);
      if (requests_match && ok_match && hits_plausible) {
        c_counters_ok.add();
      } else {
        std::fprintf(stderr,
                     "server counters: requests=%llu (sent %llu) ok=%llu "
                     "(want %llu) hits=%llu coalesced=%llu\n",
                     static_cast<unsigned long long>(server_requests),
                     static_cast<unsigned long long>(sent),
                     static_cast<unsigned long long>(server_ok),
                     static_cast<unsigned long long>(c_ok.value()),
                     static_cast<unsigned long long>(mem_hits),
                     static_cast<unsigned long long>(coalesced));
      }
    }
  }

  // Shut the daemon down and audit the shutdown.
  if (spawn) {
    ::kill(child, SIGTERM);
    int status = 0;
    ::waitpid(child, &status, 0);
    bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (clean) {
      // The daemon's own manifest must carry a PASS clean-shutdown check
      // (zero leaked requests after drain).
      std::ifstream in(server_manifest);
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string doc = ss.str();
      clean = doc.find("\"clean-shutdown\"") != std::string::npos &&
              doc.find("\"status\":\"FAIL\"") == std::string::npos;
    }
    if (clean) {
      c_clean.add();
    } else {
      std::fprintf(stderr, "loadgen_tcad: daemon shutdown was not clean\n");
    }
  } else {
    c_clean.add();  // external server: shutdown is out of scope
  }

  const std::uint64_t total = c_requests.value();
  const double qps = wall_s > 0 ? static_cast<double>(total) / wall_s : 0;
  const std::uint64_t p50 = latencies.percentile(0.50);
  const std::uint64_t p99 = latencies.percentile(0.99);

  std::printf("loadgen_tcad: %llu requests in %.3f s (%.0f qps), "
              "p50 %llu us, p99 %llu us\n",
              static_cast<unsigned long long>(total), wall_s, qps,
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99));

  const bool pass = c_errors.value() == 0 && c_mismatch.value() == 0 &&
                    c_coalesce_ok.value() == 1 &&
                    c_counters_ok.value() == 1 && c_clean.value() == 1;

  obs::RunManifest manifest;
  manifest.tool = "loadgen_tcad";
  manifest.argv.assign(argv, argv + argc);
  manifest.status = pass ? "PASS" : "FAIL";
  manifest.wall_ms = wall_s * 1000.0;
  manifest.checks.push_back(
      {"no-errors", c_errors.value() == 0 ? "PASS" : "FAIL", ""});
  manifest.checks.push_back(
      {"service-vs-library", c_mismatch.value() == 0 ? "PASS" : "FAIL",
       "every response bit-identical to the direct library answer"});
  manifest.checks.push_back(
      {"coalesce-conservation", c_coalesce_ok.value() == 1 ? "PASS" : "FAIL",
       "one build, N-1 riders"});
  manifest.checks.push_back(
      {"server-counters", c_counters_ok.value() == 1 ? "PASS" : "FAIL", ""});
  manifest.checks.push_back(
      {"clean-shutdown", c_clean.value() == 1 ? "PASS" : "FAIL", ""});
  manifest.benchmarks.push_back(
      {"loadgen.request.p50", static_cast<double>(p50), "us", 0, total});
  manifest.benchmarks.push_back(
      {"loadgen.request.p99", static_cast<double>(p99), "us", 0, total});
  manifest.benchmarks.push_back({"loadgen.qps", 0, "s", qps, total});
  manifest.try_write(obs::manifest_path("loadgen_tcad"));

  if (pass && !workdir.empty()) {
    std::error_code ec;  // best effort; a leftover dir is not a failure
    fs::remove_all(workdir, ec);
  }
  std::printf("loadgen_tcad: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
