// Experiment SEQ-RICH — Section 3.1 observations: the sequential
// configuration space is "richer" than the parallel one. Quantified over
// XOR and MAJORITY systems: pseudo-fixed points, SCC structure,
// reachability differences, and the instability of pseudo-FPs.

#include <cstdio>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/dot.hpp"

using namespace tca;

namespace {

void census_row(const char* name, const core::Automaton& a,
                bench::Verdict& verdict, bool expect_seq_cycles) {
  const auto fg = phasespace::FunctionalGraph::synchronous(a);
  const auto par = phasespace::classify(fg);
  const phasespace::ChoiceDigraph cd(a);
  const auto seq = phasespace::analyze(cd);
  std::printf("%-18s %8llu %8llu %10llu %10llu %10llu %12llu\n", name,
              static_cast<unsigned long long>(fg.num_states()),
              static_cast<unsigned long long>(par.num_fixed_points),
              static_cast<unsigned long long>(par.num_cycle_states),
              static_cast<unsigned long long>(seq.num_fixed_points),
              static_cast<unsigned long long>(seq.num_pseudo_fixed_points),
              static_cast<unsigned long long>(seq.num_proper_cycle_states));
  verdict.check(std::string(name) + ": parallel and sequential fixed points "
                "coincide in number",
                par.num_fixed_points == seq.num_fixed_points);
  verdict.check(std::string(name) + (expect_seq_cycles
                    ? ": sequential proper cycles exist"
                    : ": sequential space is cycle-free"),
                seq.has_proper_cycle() == expect_seq_cycles);
}

}  // namespace

int main() {
  bench::banner(
      "SEQ-RICH",
      "Section 3.1: the sequential phase space is richer — pseudo-fixed "
      "points (unstable), extra cycles for XOR; yet for MAJORITY the "
      "sequential space is strictly poorer in cycles.");

  bench::Verdict verdict;

  std::printf("\n%-18s %8s %8s %10s %10s %10s %12s\n", "system", "states",
              "par FPs", "par cyc", "seq FPs", "pseudo-FP", "seq cyc");

  census_row("XOR 2-node",
             core::Automaton::from_graph(graph::complete(2), rules::parity(),
                                         core::Memory::kWith),
             verdict, /*expect_seq_cycles=*/true);
  census_row("XOR ring n=4",
             core::Automaton::line(4, 1, core::Boundary::kRing,
                                   rules::parity(), core::Memory::kWith),
             verdict, true);
  census_row("XOR ring n=6",
             core::Automaton::line(6, 1, core::Boundary::kRing,
                                   rules::parity(), core::Memory::kWith),
             verdict, true);
  census_row("MAJ ring n=6",
             core::Automaton::line(6, 1, core::Boundary::kRing,
                                   rules::majority(), core::Memory::kWith),
             verdict, false);
  census_row("MAJ ring n=10",
             core::Automaton::line(10, 1, core::Boundary::kRing,
                                   rules::majority(), core::Memory::kWith),
             verdict, false);

  std::printf("\nPseudo-fixed-point instability (XOR 2-node): each pseudo-FP "
              "has an escaping choice:\n");
  {
    const auto a = core::Automaton::from_graph(
        graph::complete(2), rules::parity(), core::Memory::kWith);
    const phasespace::ChoiceDigraph cd(a);
    const auto seq = phasespace::analyze(cd);
    bool all_unstable = !seq.pseudo_fixed_points.empty();
    for (const auto s : seq.pseudo_fixed_points) {
      bool escapes = false;
      for (std::uint32_t v = 0; v < cd.num_choices(); ++v) {
        if (cd.succ(s, v) != s) escapes = true;
      }
      std::printf("  state %s: escaping update exists: %s\n",
                  phasespace::state_label(s, cd.bits()).c_str(),
                  escapes ? "yes" : "no");
      if (!escapes) all_unstable = false;
    }
    verdict.check("every pseudo-FP is unstable (has an escaping update)",
                  all_unstable);
  }

  std::printf("\nReachability asymmetry (XOR 2-node): parallel reaches 00 "
              "from everywhere; sequential never does (except from 00):\n");
  {
    const auto a = core::Automaton::from_graph(
        graph::complete(2), rules::parity(), core::Memory::kWith);
    const phasespace::ChoiceDigraph cd(a);
    const auto reach = phasespace::can_reach(cd, 0);
    std::uint64_t reachers = 0;
    for (const auto r : reach) reachers += r;
    std::printf("  sequential: %llu of 4 states can reach 00\n",
                static_cast<unsigned long long>(reachers));
    verdict.check("only 00 itself reaches 00 sequentially", reachers == 1);
  }

  return verdict.finish("SEQ-RICH");
}
