// Experiment FIG1 — regenerates the paper's Figure 1: the configuration
// spaces of the two-node XOR CA, (a) parallel and (b) sequential (all node
// choices), plus the observations the paper draws from them.

#include <cstdio>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "graph/builders.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/dot.hpp"

using namespace tca;

int main() {
  bench::banner(
      "FIG1",
      "Fig. 1(a,b): two-node XOR CA phase spaces. Parallel: 00 is a sink "
      "reached in <= 2 steps. Sequential: 00 unreachable, pseudo-FPs 01/10, "
      "two temporal two-cycles; neither semantics subsumes the other.");

  const auto a = core::Automaton::from_graph(
      graph::complete(2), rules::parity(), core::Memory::kWith);

  std::printf("\n--- Fig. 1(a): parallel (classical CA) phase space ---\n");
  const auto fg = phasespace::FunctionalGraph::synchronous(a);
  std::printf("%s", phasespace::to_text(fg).c_str());
  std::printf("\nDOT:\n%s", phasespace::to_dot(fg, "fig1a").c_str());

  std::printf("\n--- Fig. 1(b): sequential (SCA) phase space ---\n");
  const phasespace::ChoiceDigraph cd(a);
  std::printf("%s", phasespace::to_text(cd).c_str());
  std::printf("\nDOT:\n%s", phasespace::to_dot(cd, "fig1b").c_str());

  bench::Verdict verdict;
  const auto cls = phasespace::classify(fg);
  verdict.check("parallel: 00 is the unique fixed point",
                cls.num_fixed_points == 1 &&
                    cls.kind[0] == phasespace::StateKind::kFixedPoint);
  verdict.check("parallel: no proper cycles", !cls.has_proper_cycle());
  verdict.check("parallel: sink reached in at most two steps",
                cls.max_transient == 2);
  verdict.check("parallel: basin of 00 is the whole space",
                cls.attractors.size() == 1 && cls.attractors[0].basin_size == 4);

  const auto analysis = phasespace::analyze(cd);
  verdict.check("sequential: 00 is still a fixed point",
                analysis.fixed_points == std::vector<phasespace::StateCode>{0});
  verdict.check("sequential: two pseudo-fixed points (01 and 10)",
                analysis.num_pseudo_fixed_points == 2);
  verdict.check("sequential: proper temporal cycles exist",
                analysis.has_proper_cycle());
  verdict.check("sequential: exactly 01, 10, 11 lie on proper cycles",
                analysis.num_proper_cycle_states == 3);
  const auto reach00 = phasespace::can_reach(cd, 0);
  verdict.check("sequential: 00 unreachable from every other state",
                !reach00[1] && !reach00[2] && !reach00[3]);
  return verdict.finish("FIG1");
}
