// Experiment PROP1 — Proposition 1 (Goles–Martinez): for finite symmetric
// threshold CA under parallel updates, every orbit reaches F^{t+2} = F^t —
// only fixed points and two-cycles exist. Regenerated as:
//  (a) exhaustive attractor censuses for n up to 20 (max period == 2);
//  (b) transient-length distributions (how fast F^{t+2} = F^t is reached);
//  (c) sampled verification on large rings (n up to 4096);
//  (d) a non-threshold control (XOR) with period > 2.

#include <cstdio>
#include <random>

#include "analysis/basin_sampling.hpp"
#include "analysis/census.hpp"
#include "analysis/stats.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/trajectory.hpp"
#include "phasespace/classify.hpp"

using namespace tca;

namespace {

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

}  // namespace

int main() {
  bench::banner(
      "PROP1",
      "Proposition 1: finite symmetric-threshold parallel CA satisfy "
      "F^{t+2}(x) = F^t(x) for some finite t — orbits end in fixed points "
      "or two-cycles, never longer periods.");

  bench::Verdict verdict;

  std::printf("\n(a) Exhaustive attractor census, radius-1 MAJORITY rings:\n");
  std::printf("%4s %10s %8s %14s %12s %12s\n", "n", "states", "FPs",
              "2-cycle states", "max period", "max transient");
  for (const std::size_t n : {8u, 12u, 16u, 18u, 20u}) {
    const auto c = analysis::census_synchronous(majority_ring(n));
    std::printf("%4zu %10llu %8llu %14llu %12llu %12llu\n", n,
                static_cast<unsigned long long>(c.states),
                static_cast<unsigned long long>(c.fixed_points),
                static_cast<unsigned long long>(c.cycle_states),
                static_cast<unsigned long long>(c.max_period),
                static_cast<unsigned long long>(c.max_transient));
    verdict.check("n=" + std::to_string(n) + ": max period <= 2",
                  c.max_period <= 2);
  }

  std::printf("\n(b) Transient-length distribution (n = 18, exhaustive):\n");
  {
    const std::size_t n = 18;
    const auto fg =
        phasespace::FunctionalGraph::synchronous(majority_ring(n));
    const auto cls = phasespace::classify(fg);
    // Walk each state to its attractor counting steps (bounded by n).
    analysis::Histogram hist;
    for (phasespace::StateCode s = 0; s < fg.num_states(); ++s) {
      std::uint64_t t = 0;
      phasespace::StateCode cur = s;
      while (cls.kind[cur] == phasespace::StateKind::kTransient) {
        cur = fg.succ(cur);
        ++t;
      }
      hist.add(static_cast<std::int64_t>(t));
    }
    std::printf("steps-to-attractor histogram:\n%s", hist.to_string().c_str());
    verdict.check("every state reaches its attractor (finite t)",
                  hist.total() == fg.num_states());
  }

  std::printf("\n(c) Sampled verification on large rings (trajectory "
              "F^{t+2} = F^t):\n");
  std::printf("%8s %10s %14s %14s\n", "n", "samples", "mean transient",
              "max transient");
  std::mt19937_64 rng(4242);
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto a = majority_ring(n);
    analysis::Accumulator acc;
    bool all_period_le2 = true;
    const int samples = n <= 1024 ? 50 : 20;
    for (int trial = 0; trial < samples; ++trial) {
      core::Configuration c(n);
      for (std::size_t i = 0; i < n; ++i) {
        c.set(i, static_cast<core::State>(rng() & 1u));
      }
      const auto orbit = core::find_orbit_synchronous(a, c, 10 * n);
      if (!orbit || orbit->period > 2) {
        all_period_le2 = false;
      } else {
        acc.add(static_cast<double>(orbit->transient));
      }
    }
    std::printf("%8zu %10d %14.2f %14.0f\n", n, samples, acc.mean(),
                acc.max());
    verdict.check("n=" + std::to_string(n) +
                      ": every sampled orbit has period <= 2",
                  all_period_le2);
  }

  std::printf("\n(c') Basin portraits (sampled attractor statistics on "
              "large rings):\n");
  std::printf("%8s %9s %8s %10s %12s %16s\n", "n", "samples", "-> FP",
              "-> 2-cyc", "attractors", "dominant share");
  for (const std::size_t n : {128u, 512u, 2048u}) {
    const auto portrait =
        analysis::sample_basins(majority_ring(n), 200, 31337, 100 * n);
    std::printf("%8zu %9llu %8llu %10llu %12zu %15.1f%%\n", n,
                static_cast<unsigned long long>(portrait.samples),
                static_cast<unsigned long long>(portrait.to_fixed_point),
                static_cast<unsigned long long>(portrait.to_two_cycle),
                portrait.distinct_attractors(),
                100.0 * portrait.dominant_share());
    verdict.check("n=" + std::to_string(n) +
                      ": no sampled orbit exceeds period 2",
                  portrait.to_longer_cycle == 0 && portrait.unresolved == 0);
    verdict.check("n=" + std::to_string(n) +
                      ": random starts never hit the two-cycle basin",
                  portrait.to_two_cycle == 0);
  }

  std::printf("\n(d) Control: XOR (not a threshold rule) exceeds period 2:\n");
  {
    const auto a = core::Automaton::line(7, 1, core::Boundary::kRing,
                                         rules::parity(), core::Memory::kWith);
    const auto c = analysis::census_synchronous(a);
    std::printf("  XOR ring n=7: max period = %llu\n",
                static_cast<unsigned long long>(c.max_period));
    verdict.check("XOR control violates the period-2 bound",
                  c.max_period > 2);
  }

  return verdict.finish("PROP1");
}
