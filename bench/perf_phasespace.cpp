// PERF — phase-space machinery scaling: explicit functional-graph
// construction, Definition-3 classification, choice-digraph construction
// and SCC analysis, as functions of the cell count (state spaces double
// per added cell — the practical limit of explicit methods the paper's
// style of exhaustive argument runs into).

#include <benchmark/benchmark.h>

#include "core/automaton.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"

namespace {

using namespace tca;

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

void BM_FunctionalGraphBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  for (auto _ : state) {
    auto fg = phasespace::FunctionalGraph::synchronous(a);
    benchmark::DoNotOptimize(fg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (std::int64_t{1} << n));
}
BENCHMARK(BM_FunctionalGraphBuild)->DenseRange(10, 18, 4);

void BM_Classify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto fg = phasespace::FunctionalGraph::synchronous(majority_ring(n));
  for (auto _ : state) {
    auto cls = phasespace::classify(fg);
    benchmark::DoNotOptimize(cls);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (std::int64_t{1} << n));
}
BENCHMARK(BM_Classify)->DenseRange(10, 18, 4);

void BM_ChoiceDigraphBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  for (auto _ : state) {
    phasespace::ChoiceDigraph g(a);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (std::int64_t{1} << n) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChoiceDigraphBuild)->DenseRange(8, 14, 3);

void BM_ChoiceDigraphScc(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const phasespace::ChoiceDigraph g(majority_ring(n));
  for (auto _ : state) {
    auto analysis = phasespace::analyze(g);
    benchmark::DoNotOptimize(analysis);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (std::int64_t{1} << n) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChoiceDigraphScc)->DenseRange(8, 14, 3);

}  // namespace
