// PERF — preimage counting: transfer-matrix trace (O(n) in ring size)
// versus the explicit-phase-space alternative (O(2^n)); also the Garden-
// of-Eden census. Shows why the de Bruijn method is the only way to ask
// predecessor questions on large rings.

#include <benchmark/benchmark.h>

#include "core/automaton.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/preimage.hpp"

namespace {

using namespace tca;

void BM_PreimageTransferMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                              core::Memory::kWith);
  core::Configuration target(n);
  for (std::size_t i = 0; i < n; i += 3) target.set(i, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.count(target));
  }
}
BENCHMARK(BM_PreimageTransferMatrix)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536);

void BM_PreimageViaExplicitPhaseSpace(benchmark::State& state) {
  // The contrast: computing ONE in-degree requires the whole 2^n table.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  for (auto _ : state) {
    const auto fg = phasespace::FunctionalGraph::synchronous(a);
    benchmark::DoNotOptimize(phasespace::in_degrees(fg));
  }
}
BENCHMARK(BM_PreimageViaExplicitPhaseSpace)->Arg(12)->Arg(16);

void BM_GardenOfEdenCensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                              core::Memory::kWith);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phasespace::count_gardens_of_eden_ring(solver, n));
  }
}
BENCHMARK(BM_GardenOfEdenCensus)->Arg(8)->Arg(10)->Arg(12);

void BM_PreimageEnumerate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                              core::Memory::kWith);
  core::Configuration target(n);  // all-zero: many preimages
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.enumerate(target, 256));
  }
}
BENCHMARK(BM_PreimageEnumerate)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
