// Experiment SPEED — Section 4's bounded-asynchrony picture, quantified:
// "if nodes are d apart and the radius is r, a change in the state of one
// can affect the other no sooner ... than after about d/r computational
// steps". Damage-spreading runs verify the light cone (upper bound on
// information speed) for every rule, show XOR rules SATURATE it (exactly
// r cells/step), and show threshold rules usually stay far inside it
// (damage heals) — which is precisely why their long-range behaviour is
// so orderly.

#include <cstdio>
#include <random>

#include "analysis/damage.hpp"
#include "analysis/stats.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"

using namespace tca;

int main() {
  bench::banner(
      "SPEED",
      "Section 4: information travels at most r cells per synchronous "
      "step (the light cone); XOR rules achieve the bound exactly, "
      "threshold rules damp perturbations.");

  bench::Verdict verdict;
  const std::size_t n = 128;
  const std::uint64_t steps = 20;
  std::mt19937_64 rng(20260705);

  std::printf("\nLight-cone compliance (100 random perturbation runs per "
              "rule, n = %zu, %llu steps):\n", n,
              static_cast<unsigned long long>(steps));
  std::printf("%-16s %-8s %12s %18s %20s\n", "rule", "radius", "cone ok",
              "mean damage @t20", "cone saturated runs");
  struct Case {
    const char* name;
    rules::Rule rule;
    std::uint32_t radius;
  };
  const Case cases[] = {
      {"majority", rules::majority(), 1},
      {"majority r=2", rules::majority(), 2},
      {"parity (150)", rules::parity(), 1},
      {"wolfram 90", rules::Rule{rules::wolfram(90)}, 1},
      {"wolfram 110", rules::Rule{rules::wolfram(110)}, 1},
      {"wolfram 30", rules::Rule{rules::wolfram(30)}, 1},
  };
  for (const Case& c : cases) {
    const auto a = core::Automaton::line(n, c.radius, core::Boundary::kRing,
                                         c.rule, core::Memory::kWith);
    bool all_in_cone = true;
    int saturated = 0;
    analysis::Accumulator final_damage;
    for (int trial = 0; trial < 100; ++trial) {
      core::Configuration x(n);
      for (std::size_t i = 0; i < n; ++i) {
        x.set(i, static_cast<core::State>(rng() & 1u));
      }
      const std::size_t cell = rng() % n;
      const auto trace = analysis::damage_synchronous(a, x, cell, steps);
      if (!analysis::trace_within_light_cone(trace, cell, c.radius)) {
        all_in_cone = false;
      }
      if (analysis::steps_until_cone_boundary(trace, cell, c.radius) == 1) {
        ++saturated;
      }
      final_damage.add(static_cast<double>(trace.diffs.back().popcount()));
    }
    std::printf("%-16s %-8u %12s %18.2f %17d/100\n", c.name, c.radius,
                all_in_cone ? "100/100" : "VIOLATED", final_damage.mean(),
                saturated);
    verdict.check(std::string(c.name) + ": damage never escapes the cone",
                  all_in_cone);
  }

  std::printf("\nXOR saturates the cone (damage front at exactly +-t for "
              "all backgrounds), majority heals:\n");
  {
    const auto parity = core::Automaton::line(n, 1, core::Boundary::kRing,
                                              rules::parity(),
                                              core::Memory::kWith);
    core::Configuration x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x.set(i, static_cast<core::State>(rng() & 1u));
    }
    const auto trace = analysis::damage_synchronous(parity, x, 64, steps);
    bool front_exact = true;
    for (std::uint64_t t = 0; t <= steps; ++t) {
      if (trace.diffs[t].get(64 + t) == 0 || trace.diffs[t].get(64 - t) == 0) {
        front_exact = false;
      }
    }
    verdict.check("parity: both cone edges damaged at every step",
                  front_exact);

    const auto majority = core::Automaton::line(n, 1, core::Boundary::kRing,
                                                rules::majority(),
                                                core::Memory::kWith);
    const auto healed =
        analysis::damage_synchronous(majority, core::Configuration(n), 64, 3);
    verdict.check("majority on quiescent background: damage heals in 1 step",
                  healed.diffs[1].popcount() == 0);
  }

  std::printf("\nReading: the classical CA *is* a bounded-asynchrony model "
              "— r cells/step is a hard information-speed limit — and the "
              "threshold rules' damping is the dynamical face of their "
              "guaranteed sequential convergence.\n");
  return verdict.finish("SPEED");
}
