// Experiment RBST — fault-tolerant sweep over the repo's main engines,
// driven by bench::ExperimentDriver (docs/robustness.md). Demonstrates the
// whole robustness surface in one binary: per-experiment watchdog +
// exception isolation, budget truncation with well-formed partial results,
// cooperative cancellation, deterministic fault injection, and checksummed
// checkpoint/resume (`--checkpoint f --resume`): kill this binary halfway
// through and resume — the final summary is bit-identical (the
// kill-and-resume demo in scripts/resume_demo.sh asserts exactly that).

#include <cstdio>
#include <new>
#include <set>
#include <vector>

#include "aca/explorer.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/thread_pool.hpp"
#include "interleave/explorer.hpp"
#include "interleave/vm.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/preimage.hpp"
#include "runtime/budget.hpp"
#include "runtime/fault.hpp"

using namespace tca;

namespace {

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

core::Automaton xor_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::parity(),
                               core::Memory::kWith);
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

/// Serial, sweep, parallel, and budgeted phase-space builds of the same
/// automaton must agree bit-for-bit.
bench::ExperimentResult phase_space_engines(runtime::RunControl& control) {
  const auto a = xor_ring(20);
  const auto serial = phasespace::FunctionalGraph::synchronous(a);
  core::ThreadPool pool(0);
  const auto parallel = phasespace::FunctionalGraph::synchronous_parallel(
      a, pool);
  const auto budgeted =
      phasespace::FunctionalGraph::build_synchronous(a, control);
  const bool ok = budgeted.complete() &&
                  serial.successors() == parallel.successors() &&
                  serial.successors() == budgeted.graph->successors();
  return {ok, "2^20 states; serial == parallel == budgeted"};
}

/// Transfer-matrix Garden-of-Eden census vs. explicit in-degree count.
bench::ExperimentResult goe_census(runtime::RunControl& control) {
  const std::size_t n = 16;
  const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                              core::Memory::kWith);
  const auto census = phasespace::count_gardens_of_eden_ring(solver, n,
                                                             control);
  const auto graph = phasespace::FunctionalGraph::synchronous(
      majority_ring(n));
  std::vector<std::uint32_t> indegree(graph.num_states(), 0);
  for (const phasespace::StateCode s : graph.successors()) ++indegree[s];
  std::uint64_t orphans = 0;
  for (const std::uint32_t d : indegree) orphans += d == 0;
  const bool ok = !census.truncated && census.gardens == orphans;
  return {ok, "n=" + u64(n) + ": transfer-matrix gardens=" +
                  u64(census.gardens) + ", in-degree-0 states=" +
                  u64(orphans)};
}

/// Section 4 subsumption on a small ring, legacy and budgeted explorers.
bench::ExperimentResult aca_subsumption(runtime::RunControl& control) {
  const auto a = xor_ring(5);
  const auto legacy = aca::compare_reach_sets(a, 0b00011);
  const auto budgeted = aca::compare_reach_sets(a, 0b00011, control);
  const bool ok = !legacy.truncated && !budgeted.truncated &&
                  legacy.contains_synchronous && legacy.contains_sequential &&
                  legacy.only_aca > 0 &&
                  budgeted.aca_total == legacy.aca_total &&
                  budgeted.only_aca == legacy.only_aca;
  return {ok, "XOR n=5: reach(ACA)=" + u64(legacy.aca_total) +
                  ", only-ACA=" + u64(legacy.only_aca)};
}

/// Section 1.1 granularity: statement {3}, parallel {1,2}, machine
/// {1,2,3}.
bench::ExperimentResult interleave_granularity(runtime::RunControl& control) {
  using Outcomes = std::set<std::vector<std::int64_t>>;
  const auto stmt = interleave::statement_level_example(1, 2);
  const auto mach = interleave::machine_level_example(1, 2);
  const auto stmt_out =
      interleave::interleaving_outcomes(stmt, stmt.initial({0}), control);
  const auto par_out = interleave::parallel_outcomes(stmt, stmt.initial({0}));
  const auto mach_out =
      interleave::interleaving_outcomes(mach, mach.initial({0}), control);
  const bool ok = !stmt_out.truncated && !mach_out.truncated &&
                  stmt_out.outcomes == Outcomes{{3}} &&
                  par_out == Outcomes{{1}, {2}} &&
                  mach_out.outcomes == Outcomes{{1}, {2}, {3}};
  return {ok, "statement {3}; parallel {1,2}; machine {1,2,3}"};
}

/// A max_states budget truncates the ACA exploration into a well-formed
/// SUBSET of the full reach set, with the stop reason reported.
bench::ExperimentResult budget_truncation(runtime::RunControl&) {
  const auto a = majority_ring(5);
  const aca::AcaSystem sys(a);
  const auto full = aca::explore(sys, 0b00101);
  runtime::RunBudget budget;
  budget.max_states = 64;
  runtime::RunControl small(budget);
  const auto partial = aca::explore(sys, 0b00101, small);
  bool subset = true;
  for (const auto c : partial.configs) subset &= full.configs.count(c) > 0;
  const bool ok = !full.truncated && partial.truncated &&
                  partial.stop_reason == runtime::StopReason::kMaxStates &&
                  partial.global_states <= 64 && subset;
  return {ok, "full reach " + u64(full.global_states) +
                  " global states; budget 64 stopped at " +
                  u64(partial.global_states) + " (" +
                  runtime::stop_reason_name(partial.stop_reason) +
                  "), subset of full"};
}

/// Pre-cancelled tokens stop work before it starts; wall-clock deadlines
/// stop an exponential census mid-scan with a clean partial result.
bench::ExperimentResult deadline_and_cancel(runtime::RunControl&) {
  const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                              core::Memory::kWith);
  runtime::CancelToken token;
  token.cancel();
  runtime::RunControl cancelled(runtime::RunBudget::unlimited(), token);
  const auto none = phasespace::count_gardens_of_eden_ring(solver, 20,
                                                           cancelled);
  runtime::RunBudget budget;
  budget.wall_limit = std::chrono::milliseconds(50);
  runtime::RunControl deadline(budget);
  const auto partial = phasespace::count_gardens_of_eden_ring(solver, 22,
                                                              deadline);
  const bool ok =
      none.truncated && none.scanned == 0 &&
      none.stop_reason == runtime::StopReason::kCancelled &&
      partial.truncated && partial.scanned > 0 &&
      partial.scanned < (std::uint64_t{1} << 22) &&
      partial.stop_reason == runtime::StopReason::kDeadline;
  // The deadline's scanned count is timing-dependent: keep it out of the
  // detail string so resumed summaries stay bit-identical.
  return {ok, "pre-cancel scanned 0 (cancelled); 50ms deadline returned a "
              "clean partial census (deadline)"};
}

/// Transfer matrices count fixed points on rings far past explicit
/// enumeration; cross-checked against the explicit phase space at n=12.
bench::ExperimentResult transfer_matrix_scaling(runtime::RunControl&) {
  const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                              core::Memory::kWith);
  const std::uint64_t small = phasespace::count_fixed_points_ring(solver, 12);
  const auto graph = phasespace::FunctionalGraph::synchronous(
      majority_ring(12));
  std::uint64_t explicit_fixed = 0;
  for (phasespace::StateCode s = 0; s < graph.num_states(); ++s) {
    explicit_fixed += graph.succ(s) == s;
  }
  const std::uint64_t huge = phasespace::count_fixed_points_ring(solver,
                                                                 10000);
  const bool ok = small == explicit_fixed && huge > 0;
  return {ok, "n=12 fixed points " + u64(small) + " == explicit count; " +
                  "n=10000 counted without enumeration"};
}

/// Deterministic fault injection: every graceful-degradation path fires.
bench::ExperimentResult fault_injection_drill(runtime::RunControl&) {
  const auto a = xor_ring(10);
  bool alloc_caught = false;
  {
    runtime::ScopedFaultPlan plan({.alloc_failure_at = 1});
    try {
      (void)phasespace::FunctionalGraph::synchronous(a);
    } catch (const std::bad_alloc&) {
      alloc_caught = true;
    }
  }
  bool chunk_caught = false;
  {
    runtime::ScopedFaultPlan plan({.chunk_exception_at = 1});
    core::ThreadPool pool(2);
    try {
      (void)phasespace::FunctionalGraph::synchronous_parallel(a, pool);
    } catch (const tca::InjectedFaultError&) {
      chunk_caught = true;
    }
  }
  bool degraded_ok = false;
  {
    runtime::ScopedFaultPlan plan({.fail_thread_spawn = true});
    core::ThreadPool pool(4);  // spawn fails; pool degrades to serial
    const auto serial = phasespace::FunctionalGraph::synchronous(a);
    const auto fallback = phasespace::FunctionalGraph::synchronous_parallel(
        a, pool);
    degraded_ok = pool.size() == 1 &&  // caller only: every spawn failed
                  serial.successors() == fallback.successors();
  }
  const bool ok = alloc_caught && chunk_caught && degraded_ok;
  return {ok, std::string("alloc fault -> bad_alloc: ") +
                  (alloc_caught ? "yes" : "NO") +
                  "; chunk fault rethrown at join: " +
                  (chunk_caught ? "yes" : "NO") +
                  "; spawn failure degraded to serial: " +
                  (degraded_ok ? "yes" : "NO")};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::DriverOptions::parse(argc, argv);
  bench::banner(
      "RBST",
      "Fault-tolerant experiment runtime: budgets, cancellation, "
      "checkpoint/resume, and fault injection over the paper's engines.");

  // The cheap granularity check runs first so the first checkpoint lands
  // within milliseconds — scripts/resume_demo.sh kills the process as soon
  // as that checkpoint appears, while the heavy experiments are still
  // pending.
  bench::ExperimentDriver driver("RBST", opts);
  driver.run("interleave-granularity", interleave_granularity);
  driver.run("phase-space-engines", phase_space_engines);
  driver.run("goe-census", goe_census);
  driver.run("aca-subsumption", aca_subsumption);
  driver.run("budget-truncation", budget_truncation);
  driver.run("deadline-and-cancel", deadline_and_cancel);
  driver.run("transfer-matrix-scaling", transfer_matrix_scaling);
  driver.run("fault-injection-drill", fault_injection_drill);
  return driver.finish();
}
