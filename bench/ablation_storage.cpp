// ABLATION — docs/performance.md "successor storage hierarchy": phase
// space build + classify cost of the three SuccessorStore backends (flat
// 8 B/state, packed n bits/state, disk-spilled extents) under the
// sharded work-stealing builder, at n in {20, 24}.
//
// Three one-shot gates publish deterministic-shaped counters:
//
//  * BM_StorageCountersGate — workers=1 builds of all three backends at
//    n=20, cross-checked entry-for-entry and through the store-generic
//    Garden-of-Eden census. Emits the exact-valued counters CI diffs
//    against bench/baselines/ablation_storage.manifest.json
//    (store.packed_bits, store.spill_bytes, phasespace.shard.claimed/
//    stolen, bench.storage.*). store.readback_us also lands in the
//    manifest but is timing and therefore never baseline-gated.
//
//  * BM_ShardedSpeedupGate — the acceptance bar: the sharded
//    work-stealing build must beat the chunked
//    FunctionalGraph::build_synchronous_parallel by >= 1.5x at n=24.
//    Published as bench.storage.sharded.{speedup_pct,ge150}; on hosts
//    with fewer than 4 CPUs the comparison is vacuous and the gate
//    declares bench.storage.sharded.skip instead (SKIP, never FAIL).
//
//  * BM_DiskCensusGate — a disk-backed n=28 build plus streamed GoE
//    census must finish under a 1 GiB RSS ceiling
//    (bench.storage.disk.{rss_peak_mib,rss_ok_1gib,gardens_lo}).
//
// CI runs the counters gate and the acceptance gates as separate
// filtered invocations so speedup-dependent work never pollutes the
// deterministic-counter manifest (.github/workflows/ci.yml, perf-smoke).

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/automaton.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/functional_graph.hpp"
#include "phasespace/preimage.hpp"
#include "phasespace/sharded_build.hpp"
#include "phasespace/successor_store.hpp"
#include "runtime/budget.hpp"

namespace {

namespace fs = std::filesystem;
using namespace tca;
using phasespace::ShardedBuild;
using phasespace::ShardedBuildOptions;
using phasespace::StateCode;
using phasespace::StoreKind;

core::Automaton majority_ring(std::size_t n) {
  return core::Automaton::line(n, 1, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

// Fresh scratch directory for a disk-backed build; removed by the caller
// once the store has been read back.
fs::path scratch_dir(const char* tag) {
  const fs::path dir = fs::temp_directory_path() /
                       (std::string("tca-ablation-storage-") + tag);
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

ShardedBuild build_with(const core::Automaton& a, StoreKind kind,
                        unsigned workers, const fs::path& disk_dir) {
  ShardedBuildOptions options;
  options.store = kind;
  options.workers = workers;
  if (kind == StoreKind::kDisk) options.disk_dir = disk_dir.string();
  runtime::RunControl unlimited{runtime::RunBudget{}};
  return phasespace::build_synchronous_sharded(a, options, unlimited);
}

// Per-backend build + full classification (cycle/transient/GoE walk) —
// the end-to-end cost a census pays on each storage tier.
void BM_StorageBuildClassify(benchmark::State& state, StoreKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = majority_ring(n);
  const fs::path dir = scratch_dir("bm");
  for (auto _ : state) {
    const ShardedBuild out = build_with(a, kind, /*workers=*/0, dir);
    const phasespace::Classification c = phasespace::classify(*out.build.graph);
    benchmark::DoNotOptimize(c.num_gardens_of_eden);
    if (kind == StoreKind::kDisk) {
      state.PauseTiming();
      std::error_code ec;
      fs::remove_all(dir, ec);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(StateCode{1} << n));
}
BENCHMARK_CAPTURE(BM_StorageBuildClassify, flat, StoreKind::kFlat)
    ->Arg(20)
    ->Arg(24);
BENCHMARK_CAPTURE(BM_StorageBuildClassify, packed, StoreKind::kPacked)
    ->Arg(20)
    ->Arg(24);
BENCHMARK_CAPTURE(BM_StorageBuildClassify, disk, StoreKind::kDisk)
    ->Arg(20)
    ->Arg(24);

// Deterministic-counter gate: single-worker builds of the same n=20
// phase space on every backend. Exact expected values (majority ring,
// n=20, shard_states=2^16 -> 16 shards per build):
//   phasespace.shard.claimed   48 (16 x 3 backends; workers=1 => 0 stolen)
//   store.packed_bits          20 * 2^20 = 20971520
//   store.spill_bytes          2^20 * 20 / 8 = 2621440
//   bench.storage.agree        1 iff all three tables are bit-identical
//   bench.storage.goe.n20      the (backend-independent) GoE count
void BM_StorageCountersGate(benchmark::State& state) {
  static std::once_flag once;
  for (auto _ : state) {
    std::call_once(once, [] {
      const std::size_t n = 20;
      const auto a = majority_ring(n);
      const fs::path dir = scratch_dir("gate");

      std::vector<std::vector<StateCode>> tables;
      std::uint64_t gardens = 0;
      bool census_agree = true;
      for (const StoreKind kind :
           {StoreKind::kFlat, StoreKind::kPacked, StoreKind::kDisk}) {
        const ShardedBuild out = build_with(a, kind, /*workers=*/1, dir);
        std::vector<StateCode> table(
            static_cast<std::size_t>(out.store->num_entries()));
        out.store->read_range(0, table.size(), table.data());
        tables.push_back(std::move(table));

        runtime::RunControl unlimited{runtime::RunBudget{}};
        const phasespace::GoeCensus census =
            phasespace::count_gardens_of_eden(*out.store, unlimited);
        if (gardens == 0) gardens = census.gardens;
        census_agree = census_agree && census.gardens == gardens;
      }
      std::error_code ec;
      fs::remove_all(dir, ec);

      const bool agree = census_agree && tables[0] == tables[1] &&
                         tables[0] == tables[2];
      if (agree) obs::counter("bench.storage.agree").add();
      obs::counter("bench.storage.goe.n20").add(gardens);
    });
  }
}
BENCHMARK(BM_StorageCountersGate)->Iterations(1);

// Acceptance gate: sharded work-stealing build >= 1.5x the chunked
// build_synchronous_parallel at n=24, best-of-3 per side to damp runner
// noise. Both sides produce the identical flat table at the dispatched
// SIMD tier with one participant per CPU; the sharded side differs only
// in shard handout (per-group cursors + stealing) and in reusing one
// thread-local stepper per worker instead of one per pool chunk.
void BM_ShardedSpeedupGate(benchmark::State& state) {
  static std::once_flag once;
  for (auto _ : state) {
    std::call_once(once, [] {
      const unsigned cpus = std::thread::hardware_concurrency();
      if (cpus < 4) {
        // Too few cores for the parallel-vs-parallel bar to mean
        // anything (docs/performance.md); declare the skip explicitly.
        obs::counter("bench.storage.sharded.skip").add();
        return;
      }
      using Clock = std::chrono::steady_clock;
      const std::size_t n = 24;
      const auto a = majority_ring(n);

      double chunked_ns = 0.0;
      double sharded_ns = 0.0;
      core::ThreadPool pool(cpus);
      for (int rep = 0; rep < 3; ++rep) {
        runtime::RunControl unlimited{runtime::RunBudget{}};
        const auto t0 = Clock::now();
        auto chunked = phasespace::FunctionalGraph::build_synchronous_parallel(
            a, pool, unlimited);
        const auto ns =
            std::chrono::duration<double, std::nano>(Clock::now() - t0)
                .count();
        benchmark::DoNotOptimize(chunked.graph->succ(0));
        chunked_ns = rep == 0 ? ns : std::min(chunked_ns, ns);
      }
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = Clock::now();
        const ShardedBuild sharded =
            build_with(a, StoreKind::kFlat, /*workers=*/0, {});
        const auto ns =
            std::chrono::duration<double, std::nano>(Clock::now() - t0)
                .count();
        benchmark::DoNotOptimize(sharded.store->get(0));
        sharded_ns = rep == 0 ? ns : std::min(sharded_ns, ns);
      }

      const double ratio = sharded_ns > 0 ? chunked_ns / sharded_ns : 0.0;
      obs::counter("bench.storage.sharded.speedup_pct")
          .add(static_cast<std::uint64_t>(ratio * 100.0));
      if (ratio >= 1.5) obs::counter("bench.storage.sharded.ge150").add();
    });
  }
}
BENCHMARK(BM_ShardedSpeedupGate)->Iterations(1);

// Acceptance gate: a disk-backed n=28 build plus the store-generic GoE
// census must run in bounded RAM — under 1 GiB peak RSS. The spill is
// 2^28 * 28 bits = 896 MiB ON DISK; resident state is per-worker shard
// staging plus the 32 MiB census bitmap. gardens_lo publishes the low 32
// bits of the (deterministic) n=28 garden count so a census regression
// is visible in the manifest even where timing is not.
void BM_DiskCensusGate(benchmark::State& state) {
  static std::once_flag once;
  for (auto _ : state) {
    std::call_once(once, [] {
      const std::size_t n = 28;
      const auto a = majority_ring(n);
      const fs::path dir = scratch_dir("n28");

      const ShardedBuild out = build_with(a, StoreKind::kDisk,
                                          /*workers=*/0, dir);
      runtime::RunControl unlimited{runtime::RunBudget{}};
      const phasespace::GoeCensus census =
          phasespace::count_gardens_of_eden(*out.store, unlimited);
      std::error_code ec;
      fs::remove_all(dir, ec);

      struct rusage ru {};
      getrusage(RUSAGE_SELF, &ru);
      // Linux reports ru_maxrss in KiB.
      const auto rss_mib = static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
      obs::counter("bench.storage.disk.rss_peak_mib").add(rss_mib);
      if (rss_mib < 1024) obs::counter("bench.storage.disk.rss_ok_1gib").add();
      obs::counter("bench.storage.disk.gardens_lo")
          .add(census.gardens & 0xffffffffu);
    });
  }
}
BENCHMARK(BM_DiskCensusGate)->Iterations(1);

}  // namespace
