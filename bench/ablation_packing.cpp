// ABLATION — DESIGN.md decision 2: bit-packed configurations + word-
// parallel kernels vs a byte-per-cell representation vs the generic
// gather/eval engine. The byte-dense stepper below is what a naive
// implementation would use; the packed kernel processes 64 cells per
// boolean op.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/automaton.hpp"
#include "core/packed_kernels.hpp"
#include "core/synchronous.hpp"

namespace {

using namespace tca;

// Baseline: byte-per-cell majority-of-3 ring step.
void step_bytes_majority3(const std::vector<std::uint8_t>& in,
                          std::vector<std::uint8_t>& out) {
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t l = in[(i + n - 1) % n];
    const std::uint8_t s = in[i];
    const std::uint8_t r = in[(i + 1) % n];
    out[i] = static_cast<std::uint8_t>((l + s + r) >= 2);
  }
}

void BM_BytesMajority3(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(1);
  std::vector<std::uint8_t> front(n), back(n);
  for (auto& b : front) b = static_cast<std::uint8_t>(rng() & 1u);
  for (auto _ : state) {
    step_bytes_majority3(front, back);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BytesMajority3)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_PackedMajority3(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(2);
  core::Configuration front(n);
  for (std::size_t i = 0; i < n; ++i) {
    front.set(i, static_cast<core::State>(rng() & 1u));
  }
  core::Configuration back(n);
  core::PackedScratch scratch(n);
  for (auto _ : state) {
    core::step_ring_majority3_packed(front, back, scratch);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PackedMajority3)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_GenericEngineMajority3(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  std::mt19937_64 rng(3);
  core::Configuration front(n);
  for (std::size_t i = 0; i < n; ++i) {
    front.set(i, static_cast<core::State>(rng() & 1u));
  }
  core::Configuration back(n);
  for (auto _ : state) {
    core::step_synchronous(a, front, back);
    std::swap(front, back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenericEngineMajority3)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace
