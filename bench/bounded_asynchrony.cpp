// Experiment BOUND — Section 4's closing picture: classical CA are models
// of BOUNDED asynchrony (information moves at most r cells per step), and
// physically realistic CA have network delays. The stochastic channel
// simulator sweeps the delivery rate: convergence survives arbitrarily
// slow links (fixed points are schedule-independent), but the time to
// converge grows as communication slows — and perfect synchrony is the
// singular point where the blinker never converges at all.

#include <cstdio>

#include "aca/delayed.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/sequential.hpp"

using namespace tca;

int main() {
  bench::banner(
      "BOUND",
      "Section 4: dropping perfect synchrony (random compute subsets, "
      "delayed deliveries) destroys the two-cycles and yields convergence "
      "to fixed points; slower links converge more slowly but to equally "
      "valid fixed points.");

  bench::Verdict verdict;
  const std::size_t n = 12;
  const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                       rules::majority(), core::Memory::kWith);
  const aca::AcaSystem sys(a);
  const phasespace::StateCode blinker = 0b010101010101;

  std::printf("\nMajority ring n=%zu from the alternating (blinker) state, "
              "30 trials per row:\n", n);
  std::printf("%14s %14s %12s %14s %14s\n", "compute rate", "deliver rate",
              "quiesced", "mean ticks", "max ticks");

  struct Row {
    double compute;
    double deliver;
    bool expect_quiesce;
  };
  const Row rows[] = {
      {1.0, 1.0, false},  // perfect synchrony: the blinker never dies
      {0.9, 1.0, true},
      {0.5, 1.0, true},
      {0.5, 0.5, true},
      {0.5, 0.1, true},
      {0.2, 0.05, true},
  };

  double prev_mean = 0.0;
  bool slowdown_monotone_tail = true;
  for (const Row& row : rows) {
    aca::DelayedParams params;
    params.compute_rate = row.compute;
    params.deliver_rate = row.deliver;
    params.max_ticks = row.expect_quiesce ? (1u << 18) : 4096;
    const auto stats = aca::measure_delayed(sys, blinker, params, 30, 555);
    std::printf("%14.2f %14.2f %9llu/30 %14.1f %14.0f\n", row.compute,
                row.deliver,
                static_cast<unsigned long long>(stats.quiesced),
                stats.mean_ticks, stats.max_ticks);
    if (row.expect_quiesce) {
      verdict.check("compute=" + std::to_string(row.compute) +
                        " deliver=" + std::to_string(row.deliver) +
                        ": all trials converge",
                    stats.quiesced == 30);
      // Fixed points reached are genuine automaton fixed points.
      aca::DelayedParams one = params;
      const auto probe = aca::run_delayed(sys, blinker, one, 999);
      const auto c = core::Configuration::from_bits(probe.final_config, n);
      verdict.check("  ...final configuration is a fixed point",
                    core::is_fixed_point_sequential(a, c));
      if (row.compute == 0.5 && row.deliver < 1.0) {
        if (stats.mean_ticks < prev_mean) slowdown_monotone_tail = false;
      }
      if (row.compute == 0.5) prev_mean = stats.mean_ticks;
    } else {
      verdict.check("perfect synchrony: the blinker never quiesces",
                    stats.quiesced == 0);
    }
  }
  verdict.check(
      "at fixed compute rate, slower delivery never speeds convergence",
      slowdown_monotone_tail);

  std::printf("\nReading: the two-cycle is an artifact of the singular "
              "fully-synchronous schedule; ANY amount of update or "
              "communication asynchrony collapses the dynamics onto the "
              "fixed points, at a cost in convergence time that grows as "
              "links slow down.\n");
  return verdict.finish("BOUND");
}
