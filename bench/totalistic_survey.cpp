// Experiment SURVEY — the full totalistic rule space at radius 1 (the
// class the paper's Definition 4 lives in): all 16 symmetric arity-3
// rules, each classified by the paper's dividing lines — monotone?
// threshold-representable? parallel max period? sequential cycles? — plus
// Garden-of-Eden fractions. The dichotomy lands exactly on the monotone
// boundary, rule by rule.

#include <cstdio>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"
#include "phasespace/preimage.hpp"
#include "rules/analyze.hpp"
#include "rules/enumerate.hpp"

using namespace tca;

int main() {
  bench::banner(
      "SURVEY",
      "All 16 totalistic (symmetric) radius-1 rules, classified against "
      "the paper's boundary: monotone symmetric rules (== thresholds) are "
      "exactly the ones with parallel period <= 2 AND sequentially "
      "cycle-free phase spaces.");

  bench::Verdict verdict;
  const std::size_t n = 10;

  std::printf("\n(ring n = %zu, with memory; 'seq cyc' from the full choice "
              "digraph)\n", n);
  std::printf("%-16s %-9s %-10s %-8s %-8s %-10s %-8s\n", "accept vector",
              "monotone", "threshold", "par per", "seq cyc", "GoE", "FPs");

  std::uint64_t monotone_count = 0;
  bool boundary_exact_sequential = true;
  bool monotone_implies_period2 = true;
  for (const auto& rule : rules::all_symmetric(3)) {
    const auto table = rules::truth_table(rules::Rule{rule}, 3);
    const bool monotone = rules::is_monotone(table);
    const bool threshold =
        rules::threshold_representation(table).has_value();
    monotone_count += monotone ? 1 : 0;

    const auto a = core::Automaton::line(n, 1, core::Boundary::kRing,
                                         rules::Rule{rule}, core::Memory::kWith);
    const auto cls =
        phasespace::classify(phasespace::FunctionalGraph::synchronous(a));
    const auto seq = phasespace::analyze(phasespace::ChoiceDigraph(a));

    const phasespace::RingPreimageSolver solver(rules::Rule{rule}, 1,
                                                core::Memory::kWith);
    const auto goe = phasespace::count_gardens_of_eden_ring(solver, n);

    std::string accept = "[";
    for (const auto s : rule.accept) accept += static_cast<char>('0' + s);
    accept += "]";
    std::printf("%-16s %-9s %-10s %-8llu %-8s %9.2f%% %-8llu\n",
                accept.c_str(), monotone ? "yes" : "no",
                threshold ? "yes" : "no",
                static_cast<unsigned long long>(cls.max_period()),
                seq.has_proper_cycle() ? "YES" : "no",
                100.0 * static_cast<double>(goe) /
                    static_cast<double>(std::uint64_t{1} << n),
                static_cast<unsigned long long>(cls.num_fixed_points));

    // Monotone symmetric rules are exactly the NONNEGATIVE-weight
    // thresholds (k-of-n); with signed weights more rules are threshold-
    // representable (e.g. NOR = [1000]), so only one direction holds here.
    verdict.check(accept + ": monotone => threshold-representable",
                  !monotone || threshold);
    if (monotone) {
      verdict.check(accept + ": monotone symmetric is k-of-n or constant",
                    rules::as_k_of_n(table).has_value() ||
                        rules::is_constant(table));
    }
    // Theorem 1 direction: monotone => sequentially cycle-free.
    if (monotone && seq.has_proper_cycle()) boundary_exact_sequential = false;
    // Proposition 1 direction: monotone => parallel period <= 2.
    if (monotone && cls.max_period() > 2) monotone_implies_period2 = false;
  }

  verdict.check("exactly 5 of 16 totalistic rules are monotone",
                monotone_count == 5);
  verdict.check("every monotone rule is sequentially cycle-free (Thm 1)",
                boundary_exact_sequential);
  verdict.check("every monotone rule has parallel period <= 2 (Prop 1)",
                monotone_implies_period2);

  std::printf("\nNote the converse directions fail: some non-monotone "
              "rules (e.g. constants composed oddly) can also be tame — "
              "monotonicity is sufficient, not necessary, which is why the "
              "paper asks 'at what point do sequential computations catch "
              "up' as an open question.\n");
  return verdict.finish("SURVEY");
}
