// Experiment LEM2 — Lemma 2: the same dichotomy at radius 2 (MAJORITY of
// 5 inputs): parallel two-cycles exist, sequential CA are cycle-free for
// every update order.

#include <cstdio>
#include <random>

#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "core/schedule.hpp"
#include "core/sequential.hpp"
#include "core/trajectory.hpp"
#include "phasespace/choice_digraph.hpp"
#include "phasespace/classify.hpp"

using namespace tca;

namespace {

core::Automaton majority_ring_r2(std::size_t n) {
  return core::Automaton::line(n, 2, core::Boundary::kRing, rules::majority(),
                               core::Memory::kWith);
}

}  // namespace

int main() {
  bench::banner(
      "LEM2",
      "Lemma 2: 1-D CA with r=2 and MAJORITY: (i) parallel CA have finite "
      "cycles; (ii) sequential CA are cycle-free for every update order.");

  bench::Verdict verdict;

  std::printf("\n(i) Parallel two-cycles ((0^2 1^2)^* block pattern):\n");
  std::printf("%6s %22s %10s\n", "n", "configuration", "period");
  for (const std::size_t n : {8u, 12u, 16u, 20u}) {
    const auto a = majority_ring_r2(n);
    core::Configuration c(n);
    for (std::size_t i = 0; i < n; ++i) {
      if ((i / 2) % 2 == 1) c.set(i, 1);
    }
    const auto orbit = core::find_orbit_synchronous(a, c, 64);
    std::printf("%6zu %22s %10llu\n", n, c.to_string().c_str(),
                orbit ? static_cast<unsigned long long>(orbit->period) : 0ULL);
    verdict.check("n=" + std::to_string(n) + ": (0011)^* is a two-cycle",
                  orbit && orbit->period == 2 && orbit->transient == 0);
  }

  std::printf("\n(ii) Exhaustive SCC over the choice digraph, radius 2:\n");
  std::printf("%6s %14s %20s\n", "n", "states", "proper-cycle states");
  for (const std::size_t n : {5u, 6u, 8u, 10u, 12u, 13u}) {
    const phasespace::ChoiceDigraph g(majority_ring_r2(n));
    const auto analysis = phasespace::analyze(g);
    std::printf("%6zu %14llu %20llu\n", n,
                static_cast<unsigned long long>(g.num_states()),
                static_cast<unsigned long long>(
                    analysis.num_proper_cycle_states));
    verdict.check("n=" + std::to_string(n) + ": cycle-free for all orders",
                  !analysis.has_proper_cycle());
  }

  std::printf("\n(iii) Random fair schedules on n = 20, 30 trials:\n");
  {
    const std::size_t n = 20;
    const auto a = majority_ring_r2(n);
    std::mt19937_64 rng(777);
    bool all_converged = true;
    for (int trial = 0; trial < 30; ++trial) {
      core::Configuration c(n);
      for (std::size_t i = 0; i < n; ++i) {
        c.set(i, static_cast<core::State>(rng() & 1u));
      }
      core::RandomUniformSchedule schedule(n, rng());
      if (!core::run_schedule_to_fixed_point(a, c, schedule, 200000)) {
        all_converged = false;
      }
    }
    verdict.check("all 30 random-schedule runs converge to a fixed point",
                  all_converged);
    std::printf("  done.\n");
  }

  return verdict.finish("LEM2");
}
