// Experiment RARE — the paper's Section 4 remark (citing [19]): the non-FP
// temporal cycles of parallel threshold CA are statistically very few and
// have NO incoming transients — the two-cycles exist but are dynamically
// irrelevant, so the sequential/parallel difference is attributable
// entirely to the perfect-synchrony assumption.

#include <cstdio>

#include "analysis/census.hpp"
#include "bench/experiment_util.hpp"
#include "core/automaton.hpp"
#include "phasespace/preimage.hpp"

using namespace tca;

int main() {
  bench::banner(
      "RARE",
      "Section 4 remark [19]: non-FP cycles of parallel threshold CA are "
      "very few (vanishing fraction of the state space) and have no "
      "incoming transients (unreachable from outside).");

  bench::Verdict verdict;

  std::printf("\nRadius-1 MAJORITY rings, exhaustive censuses:\n");
  std::printf("%4s %10s %8s %14s %16s %12s\n", "n", "states", "FPs",
              "2-cycle states", "cycle fraction", "fed by TCs?");
  for (const std::size_t n : {4u, 6u, 8u, 10u, 12u, 14u, 16u, 18u}) {
    const auto a = core::Automaton::line(
        n, 1, core::Boundary::kRing, rules::majority(), core::Memory::kWith);
    const auto c = analysis::census_synchronous(a);
    std::printf("%4zu %10llu %8llu %14llu %15.6f%% %12s\n", n,
                static_cast<unsigned long long>(c.states),
                static_cast<unsigned long long>(c.fixed_points),
                static_cast<unsigned long long>(c.cycle_states),
                100.0 * c.cycle_state_fraction(),
                c.cycles_have_no_incoming_transients ? "no" : "YES");
    verdict.check("n=" + std::to_string(n) + ": exactly two cycle states",
                  c.cycle_states == 2);
    verdict.check("n=" + std::to_string(n) + ": cycles have no incoming "
                  "transients",
                  c.cycles_have_no_incoming_transients);
  }

  std::printf("\nRadius-2 MAJORITY rings:\n");
  std::printf("%4s %10s %14s %16s %12s\n", "n", "states", "2-cycle states",
              "cycle fraction", "fed by TCs?");
  for (const std::size_t n : {8u, 12u, 16u}) {
    const auto a = core::Automaton::line(
        n, 2, core::Boundary::kRing, rules::majority(), core::Memory::kWith);
    const auto c = analysis::census_synchronous(a);
    std::printf("%4zu %10llu %14llu %15.6f%% %12s\n", n,
                static_cast<unsigned long long>(c.states),
                static_cast<unsigned long long>(c.cycle_states),
                100.0 * c.cycle_state_fraction(),
                c.cycles_have_no_incoming_transients ? "no" : "YES");
    verdict.check("r=2 n=" + std::to_string(n) +
                      ": cycle fraction below 2% and shrinking",
                  c.cycle_state_fraction() < 0.02);
    verdict.check("r=2 n=" + std::to_string(n) +
                      ": cycles have no incoming transients",
                  c.cycles_have_no_incoming_transients);
  }

  std::printf("\nBeyond explicit enumeration — paired transfer matrices "
              "count period-<=2 states exactly on huge rings:\n");
  std::printf("%6s %22s %22s %16s\n", "n", "fixed points",
              "period <= 2 states", "2-cycle states");
  {
    const phasespace::RingPreimageSolver solver(rules::majority(), 1,
                                                core::Memory::kWith);
    for (const std::size_t n : {32u, 64u, 90u, 91u}) {
      const auto fixed = phasespace::count_fixed_points_ring(solver, n);
      const auto period2 =
          phasespace::count_period_two_states_ring(solver, n);
      const auto cycle_states = period2 - fixed;
      std::printf("%6zu %22llu %22llu %16llu\n", n,
                  static_cast<unsigned long long>(fixed),
                  static_cast<unsigned long long>(period2),
                  static_cast<unsigned long long>(cycle_states));
      verdict.check(
          "n=" + std::to_string(n) + ": exactly " +
              (n % 2 == 0 ? std::string("two") : std::string("zero")) +
              " proper-cycle states (transfer matrix)",
          cycle_states == (n % 2 == 0 ? 2u : 0u));
    }
  }

  std::printf("\nThe cycle-state fraction 2/2^n vanishes exponentially: the "
              "two-cycles are real but statistically negligible, and no "
              "transient ever falls into them — verified explicitly to "
              "n = 18 and by transfer matrices to n = 91 (2^91 states).\n");
  return verdict.finish("RARE");
}
